"""Cost-based routing of slice queries to materialized views.

The paper hand-validated "the best way that each query should be written in
SQL" per query type (Sec. 3.3) — e.g. discovering that the indexed apex
view beats the seemingly-better-matching smaller view for query Q1.  The
router automates that choice with a page-level cost model:

* a **scan** reads the view's pages sequentially;
* an **ordered access** (B-tree search key / Cubetree sort order) whose key
  prefix lies inside the bound attributes narrows the matches by the
  prefix's selectivity; fetching the matches is *sequential* when the
  order agrees with the view's physical clustering (the Cubetree case, or
  the one B-tree whose key matches the heap's insertion order) and one
  *random* page per match otherwise (the unclustered-index case that makes
  two of the conventional configuration's three composite indexes
  expensive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.constants import RANDOM_IO_MS, SEQUENTIAL_IO_MS
from repro.cube.lattice import CubeLattice
from repro.errors import QueryError
from repro.obs import get_registry
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition

#: Pages touched descending an index to its first qualifying entry.
_DESCENT_PAGES = 3


def run_scan_cost(
    run_pages: float,
    random_ms: float = RANDOM_IO_MS,
    sequential_ms: float = SEQUENTIAL_IO_MS,
) -> float:
    """Cost of scanning a packed leaf run end to end: one positioning
    seek, then purely sequential reads."""
    return random_ms + max(0.0, run_pages - 1.0) * sequential_ms


def run_seek_probes(run_pages: float) -> float:
    """Leaf pages a binary seek over a run's first-keys touches."""
    return max(1.0, math.ceil(math.log2(max(2.0, run_pages))))

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_DECISIONS = _REG.counter("router.decisions")
_OBS_SCANS = _REG.counter("router.plans.scan")
_OBS_ORDERED = _REG.counter("router.plans.ordered")
_OBS_REAGG = _REG.counter("router.plans.reaggregated")
_OBS_EST_COST = _REG.histogram("router.est_cost_ms")


@dataclass(frozen=True)
class AccessPath:
    """One candidate physical path to a view's tuples.

    Parameters
    ----------
    view:
        The view definition (a replica is its own view).
    size:
        Tuple count of the materialized view.
    orders:
        Physical orders usable for prefix access: B-tree keys on the view
        (conventional), or the view's Cubetree sort order(s).
    rows_per_page:
        Tuples per data page (for page-cost estimates).
    clustered:
        The attribute order the view's *data* is physically sorted by, or
        None when unknown.  Matches fetched through an order that agrees
        with this clustering are read sequentially.
    """

    view: ViewDefinition
    size: float
    orders: Tuple[Tuple[str, ...], ...] = ()
    rows_per_page: int = 100
    clustered: Optional[Tuple[str, ...]] = None
    #: Leaves in the view's packed Cubetree run, when a leaf-run extent
    #: is recorded (None for conventional paths and legacy trees).  Lets
    #: a fast-scan-aware router price run scans and binary-seek prefix
    #: access instead of the generic descent.
    run_leaves: Optional[int] = None


@dataclass(frozen=True)
class RoutingDecision:
    """The chosen plan for a query."""

    path: AccessPath
    order: Optional[Tuple[str, ...]]  # the order whose prefix is used
    prefix: Tuple[str, ...]           # bound attrs usable as access prefix
    est_cost: float                   # estimated milliseconds of I/O
    needs_reaggregation: bool         # view is finer than the query node
    #: Execute through the packed leaf run (binary seek / run scan)
    #: instead of the classic interior descent.  Only set on plans the
    #: fast cost model generated *and* priced cheaper than the descent.
    use_run: bool = False

    def describe(self) -> str:
        """Human-readable one-line rendering."""
        via = f" via {self.order}" if self.order else " (scan)"
        run = " [run]" if self.use_run else ""
        return f"{self.view_name}{via}{run} ~{self.est_cost:.1f} ms"

    @property
    def view_name(self) -> str:
        """Name of the routed view."""
        return self.path.view.name


class QueryRouter:
    """Picks the cheapest access path for each slice query."""

    def __init__(
        self,
        lattice: CubeLattice,
        distinct_counts: Mapping[str, float],
        random_ms: float = RANDOM_IO_MS,
        sequential_ms: float = SEQUENTIAL_IO_MS,
        fast_scans: bool = False,
    ) -> None:
        """``fast_scans=True`` makes the cost model price paths with a
        recorded leaf-run extent (:attr:`AccessPath.run_leaves`) as the
        packed-run fast path executes them: an unbound access is one
        positioning seek plus a sequential run scan, and a prefix access
        is a binary seek over the run's leaves instead of a fixed-depth
        interior descent.  Off by default so existing single-query plans
        (and their simulated-I/O estimates) are unchanged."""
        self.lattice = lattice
        self.distinct = dict(distinct_counts)
        self.random_ms = random_ms
        self.sequential_ms = sequential_ms
        self.fast_scans = fast_scans

    def route(
        self,
        query: SliceQuery,
        paths: Sequence[AccessPath],
        fast_scans: Optional[bool] = None,
    ) -> RoutingDecision:
        """Choose the cheapest plan, or raise QueryError if nothing answers.

        ``fast_scans`` overrides the router's default for this one call —
        the engine passes its per-query ``fast`` flag through so a fast
        execution is planned with the fast cost model even on a router
        constructed with ``fast_scans=False``.
        """
        best: Optional[RoutingDecision] = None
        node = tuple(query.node)
        for path in paths:
            if not self.lattice.derives_from(node, path.view.group_by):
                continue
            decision = self._best_plan_for(path, query, fast_scans)
            if best is None or self._better(decision, best):
                best = decision
        if best is None:
            raise QueryError(
                f"no materialized view answers query over {sorted(node)}"
            )
        _OBS_DECISIONS.value += 1
        if best.order is None:
            _OBS_SCANS.value += 1
        else:
            _OBS_ORDERED.value += 1
        if best.needs_reaggregation:
            _OBS_REAGG.value += 1
        _OBS_EST_COST.observe(best.est_cost)
        return best

    # ------------------------------------------------------------------
    def _attr_selectivity(self, attr: str, query: SliceQuery) -> float:
        """Matching-fraction denominator of one bound attribute."""
        if attr in query.binding_map:
            return self.distinct.get(attr, 1.0)
        low, high = query.range_map[attr]
        width = high - low + 1
        return max(1.0, self.distinct.get(attr, 1.0) / width)

    def candidate_plans(
        self,
        path: AccessPath,
        query: SliceQuery,
        fast_scans: Optional[bool] = None,
    ) -> List[RoutingDecision]:
        """Every plan the cost model considers for one path.

        The scan plan comes first, then one plan per order with a usable
        prefix — the enumeration :meth:`route` minimizes over, exposed so
        tests can check the choice against the brute-force minimum.  With
        the fast cost model engaged (``fast_scans``, defaulting to the
        router's flag) and a recorded run extent, each physical
        alternative appears as its own candidate — classic descent *and*
        run seek/scan — so minimizing picks the cheaper execution, not
        just the cheaper view.
        """
        needs_reagg = frozenset(path.view.group_by) != query.node
        data_pages = max(1.0, path.size / max(path.rows_per_page, 1))
        equality = set(query.binding_map)
        ranged = set(query.range_map)
        use_fast = self.fast_scans if fast_scans is None else fast_scans
        fast_run = use_fast and path.run_leaves is not None
        run_pages = float(path.run_leaves or 0)

        # Plan 0: sequential scan (classic: descend, then walk every
        # leaf; pages estimated from the view size).
        scan_cost = self.random_ms + data_pages * self.sequential_ms
        plans = [RoutingDecision(path, None, (), scan_cost, needs_reagg)]
        if fast_run:
            # Fast alternative: the recorded extent bounds the scan to
            # exactly the view's own leaves, read sequentially.
            plans.append(
                RoutingDecision(
                    path, None, (),
                    run_scan_cost(
                        run_pages, self.random_ms, self.sequential_ms
                    ),
                    needs_reagg, use_run=True,
                )
            )

        # Ordered accesses: a usable prefix is any run of equality-bound
        # attributes, optionally ending with one range-bound attribute
        # (entries stop being contiguous past a range component).
        for order in path.orders:
            prefix: List[str] = []
            for attr in order:
                if attr in equality:
                    prefix.append(attr)
                elif attr in ranged:
                    prefix.append(attr)
                    break
                else:
                    break
            if not prefix:
                continue
            selectivity = 1.0
            for attr in prefix:
                selectivity *= self._attr_selectivity(attr, query)
            matches = max(1.0, path.size / selectivity)
            match_pages = max(1.0, matches / max(path.rows_per_page, 1))
            clustered = path.clustered is not None and tuple(
                path.clustered[: len(prefix)]
            ) == tuple(prefix)
            if clustered:
                # Matches are physically contiguous.
                cost = _DESCENT_PAGES * self.random_ms
                cost += self.random_ms + (match_pages - 1) * self.sequential_ms
            else:
                # One random data page per match (capped by the view size).
                cost = _DESCENT_PAGES * self.random_ms
                cost += min(matches, data_pages) * self.random_ms
            plans.append(
                RoutingDecision(
                    path, order, tuple(prefix), cost, needs_reagg
                )
            )
            if fast_run and clustered:
                # Fast alternative: binary seek over the run's leaf
                # first-keys replaces the fixed-depth interior descent;
                # the matches then stream sequentially from the first
                # qualifying leaf.  Enumerated *after* the descent plan,
                # so an exact cost tie keeps the classic execution.
                probes = run_seek_probes(run_pages)
                cost = probes * self.random_ms
                cost += self.random_ms + (match_pages - 1) * self.sequential_ms
                plans.append(
                    RoutingDecision(
                        path, order, tuple(prefix), cost, needs_reagg,
                        use_run=True,
                    )
                )
        return plans

    def _best_plan_for(
        self,
        path: AccessPath,
        query: SliceQuery,
        fast_scans: Optional[bool] = None,
    ) -> RoutingDecision:
        plans = self.candidate_plans(path, query, fast_scans)
        # First strictly-cheaper plan wins, so ties keep the scan plan —
        # the enumeration order candidate_plans guarantees.
        best = plans[0]
        for plan in plans[1:]:
            if plan.est_cost < best.est_cost:
                best = plan
        return best

    @staticmethod
    def _better(a: RoutingDecision, b: RoutingDecision) -> bool:
        # Cheaper wins; ties prefer the view that needs no reaggregation,
        # then the smaller view.
        if not math.isclose(a.est_cost, b.est_cost, rel_tol=1e-9):
            return a.est_cost < b.est_cost
        return (a.needs_reaggregation, a.path.size) < (
            b.needs_reaggregation, b.path.size,
        )
