"""Cost-based routing of slice queries to materialized views.

The paper hand-validated "the best way that each query should be written in
SQL" per query type (Sec. 3.3) — e.g. discovering that the indexed apex
view beats the seemingly-better-matching smaller view for query Q1.  The
router automates that choice with a page-level cost model:

* a **scan** reads the view's pages sequentially;
* an **ordered access** (B-tree search key / Cubetree sort order) whose key
  prefix lies inside the bound attributes narrows the matches by the
  prefix's selectivity; fetching the matches is *sequential* when the
  order agrees with the view's physical clustering (the Cubetree case, or
  the one B-tree whose key matches the heap's insertion order) and one
  *random* page per match otherwise (the unclustered-index case that makes
  two of the conventional configuration's three composite indexes
  expensive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.constants import RANDOM_IO_MS, SEQUENTIAL_IO_MS
from repro.cube.lattice import CubeLattice
from repro.errors import QueryError
from repro.obs import get_registry
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition

#: Pages touched descending an index to its first qualifying entry.
_DESCENT_PAGES = 3

_REG = get_registry()
_OBS_DECISIONS = _REG.counter("router.decisions")
_OBS_SCANS = _REG.counter("router.plans.scan")
_OBS_ORDERED = _REG.counter("router.plans.ordered")
_OBS_REAGG = _REG.counter("router.plans.reaggregated")
_OBS_EST_COST = _REG.histogram("router.est_cost_ms")


@dataclass(frozen=True)
class AccessPath:
    """One candidate physical path to a view's tuples.

    Parameters
    ----------
    view:
        The view definition (a replica is its own view).
    size:
        Tuple count of the materialized view.
    orders:
        Physical orders usable for prefix access: B-tree keys on the view
        (conventional), or the view's Cubetree sort order(s).
    rows_per_page:
        Tuples per data page (for page-cost estimates).
    clustered:
        The attribute order the view's *data* is physically sorted by, or
        None when unknown.  Matches fetched through an order that agrees
        with this clustering are read sequentially.
    """

    view: ViewDefinition
    size: float
    orders: Tuple[Tuple[str, ...], ...] = ()
    rows_per_page: int = 100
    clustered: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class RoutingDecision:
    """The chosen plan for a query."""

    path: AccessPath
    order: Optional[Tuple[str, ...]]  # the order whose prefix is used
    prefix: Tuple[str, ...]           # bound attrs usable as access prefix
    est_cost: float                   # estimated milliseconds of I/O
    needs_reaggregation: bool         # view is finer than the query node

    def describe(self) -> str:
        """Human-readable one-line rendering."""
        via = f" via {self.order}" if self.order else " (scan)"
        return f"{self.view_name}{via} ~{self.est_cost:.1f} ms"

    @property
    def view_name(self) -> str:
        """Name of the routed view."""
        return self.path.view.name


class QueryRouter:
    """Picks the cheapest access path for each slice query."""

    def __init__(
        self,
        lattice: CubeLattice,
        distinct_counts: Mapping[str, float],
        random_ms: float = RANDOM_IO_MS,
        sequential_ms: float = SEQUENTIAL_IO_MS,
    ) -> None:
        self.lattice = lattice
        self.distinct = dict(distinct_counts)
        self.random_ms = random_ms
        self.sequential_ms = sequential_ms

    def route(
        self, query: SliceQuery, paths: Sequence[AccessPath]
    ) -> RoutingDecision:
        """Choose the cheapest plan, or raise QueryError if nothing answers."""
        best: Optional[RoutingDecision] = None
        node = tuple(query.node)
        for path in paths:
            if not self.lattice.derives_from(node, path.view.group_by):
                continue
            decision = self._best_plan_for(path, query)
            if best is None or self._better(decision, best):
                best = decision
        if best is None:
            raise QueryError(
                f"no materialized view answers query over {sorted(node)}"
            )
        _OBS_DECISIONS.value += 1
        if best.order is None:
            _OBS_SCANS.value += 1
        else:
            _OBS_ORDERED.value += 1
        if best.needs_reaggregation:
            _OBS_REAGG.value += 1
        _OBS_EST_COST.observe(best.est_cost)
        return best

    # ------------------------------------------------------------------
    def _attr_selectivity(self, attr: str, query: SliceQuery) -> float:
        """Matching-fraction denominator of one bound attribute."""
        if attr in query.binding_map:
            return self.distinct.get(attr, 1.0)
        low, high = query.range_map[attr]
        width = high - low + 1
        return max(1.0, self.distinct.get(attr, 1.0) / width)

    def _best_plan_for(
        self, path: AccessPath, query: SliceQuery
    ) -> RoutingDecision:
        needs_reagg = frozenset(path.view.group_by) != query.node
        data_pages = max(1.0, path.size / max(path.rows_per_page, 1))
        equality = set(query.binding_map)
        ranged = set(query.range_map)

        # Plan 0: sequential scan.
        best_cost = self.random_ms + data_pages * self.sequential_ms
        best_order: Optional[Tuple[str, ...]] = None
        best_prefix: Tuple[str, ...] = ()

        # Ordered accesses: a usable prefix is any run of equality-bound
        # attributes, optionally ending with one range-bound attribute
        # (entries stop being contiguous past a range component).
        for order in path.orders:
            prefix: List[str] = []
            for attr in order:
                if attr in equality:
                    prefix.append(attr)
                elif attr in ranged:
                    prefix.append(attr)
                    break
                else:
                    break
            if not prefix:
                continue
            selectivity = 1.0
            for attr in prefix:
                selectivity *= self._attr_selectivity(attr, query)
            matches = max(1.0, path.size / selectivity)
            match_pages = max(1.0, matches / max(path.rows_per_page, 1))
            cost = _DESCENT_PAGES * self.random_ms
            if path.clustered is not None and tuple(
                path.clustered[: len(prefix)]
            ) == tuple(prefix):
                # Matches are physically contiguous.
                cost += self.random_ms + (match_pages - 1) * self.sequential_ms
            else:
                # One random data page per match (capped by the view size).
                cost += min(matches, data_pages) * self.random_ms
            if cost < best_cost:
                best_cost = cost
                best_order = order
                best_prefix = tuple(prefix)

        return RoutingDecision(
            path, best_order, best_prefix, best_cost, needs_reagg
        )

    @staticmethod
    def _better(a: RoutingDecision, b: RoutingDecision) -> bool:
        # Cheaper wins; ties prefer the view that needs no reaggregation,
        # then the smaller view.
        if not math.isclose(a.est_cost, b.est_cost, rel_tol=1e-9):
            return a.est_cost < b.est_cost
        return (a.needs_reaggregation, a.path.size) < (
            b.needs_reaggregation, b.path.size,
        )
