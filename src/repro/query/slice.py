"""Slice queries: equality predicates + disjoint group-by attributes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple

from repro.errors import QueryError


@dataclass(frozen=True)
class SliceQuery:
    """One OLAP slice query.

    Parameters
    ----------
    group_by:
        Attributes the aggregate is grouped by (may be empty).
    bindings:
        ``(attribute, value)`` equality predicates, disjoint from
        ``group_by``.
    ranges:
        ``(attribute, low, high)`` closed-range predicates — the paper's
        "more general experiment where arbitrary range queries are
        allowed" (Sec. 3.1).  Disjoint from both other attribute sets.

    The query's *node* — the lattice element it belongs to — is the union
    of all three attribute sets: "Give me the total sales per part for a
    given customer C" has ``group_by = (partkey,)``, ``bindings =
    ((custkey, C),)``, node ``{partkey, custkey}``.
    """

    group_by: Tuple[str, ...]
    bindings: Tuple[Tuple[str, int], ...] = ()
    ranges: Tuple[Tuple[str, int, int], ...] = ()

    def __post_init__(self) -> None:
        bound = [attr for attr, _ in self.bindings]
        bound += [attr for attr, _lo, _hi in self.ranges]
        if len(set(bound)) != len(bound):
            raise QueryError("duplicate bound attribute")
        overlap = set(self.group_by) & set(bound)
        if overlap:
            raise QueryError(
                f"attributes {sorted(overlap)} both bound and grouped"
            )
        if len(set(self.group_by)) != len(self.group_by):
            raise QueryError("duplicate group-by attribute")
        for attr, low, high in self.ranges:
            if low > high:
                raise QueryError(
                    f"empty range [{low}, {high}] on {attr!r}"
                )

    @property
    def bound_attrs(self) -> Tuple[str, ...]:
        """Every attribute carrying a predicate (equality first)."""
        return tuple(attr for attr, _ in self.bindings) + tuple(
            attr for attr, _lo, _hi in self.ranges
        )

    @property
    def node(self) -> FrozenSet[str]:
        """The lattice node this query slices."""
        return frozenset(self.group_by) | frozenset(self.bound_attrs)

    @property
    def binding_map(self) -> dict:
        """Equality predicates as a dict."""
        return dict(self.bindings)

    @property
    def range_map(self) -> dict:
        """Range predicates as attr -> (low, high)."""
        return {attr: (low, high) for attr, low, high in self.ranges}

    @property
    def bounds(self) -> dict:
        """Every predicate as a closed interval: attr -> (low, high)."""
        out = {attr: (value, value) for attr, value in self.bindings}
        out.update(self.range_map)
        return out

    def describe(
        self,
        aggregates: Sequence[object] = (),
        measure: str = "quantity",
    ) -> str:
        """SQL-ish rendering for logs and experiment output.

        A slice query carries no aggregate of its own — the view it is
        routed to does — so callers that know the answering view pass its
        ``aggregates`` (:class:`~repro.relational.executor.AggSpec`
        objects, rendered via ``str()``), or at least the schema's
        ``measure``.  Without either, the TPC-D default ``sum(quantity)``
        is rendered, as before.
        """
        if aggregates:
            agg_text = ", ".join(str(spec) for spec in aggregates)
        else:
            agg_text = f"sum({measure})"
        select = ", ".join(self.group_by) if self.group_by else ""
        predicates = [f"{a} = {v}" for a, v in self.bindings]
        predicates += [
            f"{a} between {lo} and {hi}" for a, lo, hi in self.ranges
        ]
        where = " and ".join(predicates)
        parts = ["select"]
        parts.append(f"{select}, {agg_text}" if select else agg_text)
        parts.append("from F")
        if where:
            parts.append(f"where {where}")
        if self.group_by:
            parts.append(f"group by {select}")
        return " ".join(parts)
