"""Batched multi-query execution over shared leaf-run passes.

The paper's Fig. 13 throughput experiment fires many slice queries at the
same small set of materialized views.  Executed one at a time, every query
pays its own descent (or run seek) over a view whose leaves its neighbours
are about to read again.  This module instead:

1. routes every query of a batch exactly as single-query execution would
   (same router, same cost model — so each query is answered by the same
   view either way);
2. groups the queries by the view the router assigned them to, then
   merges groups whose views are sort-order replicas of the same data —
   single-query routing picks the replica whose clustering matches each
   query's bound prefix, but a shared scan reads every leaf regardless
   of order, so one pass over one replica's run answers them all; and
3. answers each merged group in **one shared pass** over that view's
   packed leaf run (:meth:`repro.rtree.tree.RTree.search_run_group`),
   with the group sorted into run order so the pass reads each leaf at
   most once, sequentially — *when the cost model prices that pass below
   the cost of the group's individual plans run back to back*.  A few
   highly selective queries scattered over a large run are cheaper
   answered one by one (each reads two or three leaves; a shared pass
   would walk the whole span between them), so such groups fall back to
   per-query execution using each query's own cheapest plan.

Per-query answers are byte-identical to serial execution: the shared pass
yields every query its own matches in run order — the same points, in the
same order, that a solo :meth:`search`/:meth:`search_run` produces — and
:func:`finalize_matches` folds and sorts them per query as usual.  Views
without a recorded leaf-run extent (dynamic trees, checkpoints predating
the field) fall back to per-query execution inside the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.answer import finalize_fold, finalize_matches, split_bindings
from repro.core.cubetree import FoldedSlice
from repro.obs import get_registry
from repro.query.result import QueryResult
from repro.query.router import (
    _DESCENT_PAGES,
    QueryRouter,
    RoutingDecision,
    run_scan_cost,
    run_seek_probes,
)
from repro.query.slice import SliceQuery
from repro.rtree.kernels import vector_kernels_enabled
from repro.storage.iomodel import IOStats

_OBS_PUSHDOWNS = get_registry().counter("query.cubetree.pushdowns")


@dataclass
class BatchResult:
    """Answers for one query batch plus batch-level execution totals.

    ``results`` line up with the input queries.  Individual results carry
    empty ``io``/``wall_ms`` — a shared pass cannot honestly attribute
    page reads to single queries — so the totals live here instead.
    """

    results: List[QueryResult] = field(default_factory=list)
    io: IOStats = field(default_factory=IOStats)
    wall_ms: float = 0.0
    #: Shared run passes executed (= distinct views routed to).
    groups: int = 0
    #: Queries answered through a shared pass (vs per-query fallback).
    batched: int = 0

    def __len__(self) -> int:
        return len(self.results)


def route_batch(
    router: QueryRouter,
    paths: Sequence,
    queries: Sequence[SliceQuery],
) -> Tuple[List[RoutingDecision], Dict[str, List[int]]]:
    """Route every query and group query indices by assigned view.

    Routing is identical to fast single-query execution (the fast cost
    model is engaged, as batch execution can always use the runs), so
    batching never changes *which* view answers a query — only how its
    leaves are read.  Group lists preserve input order; callers re-sort
    into run order.
    """
    decisions = [
        router.route(query, paths, fast_scans=True) for query in queries
    ]
    groups: Dict[str, List[int]] = {}
    for index, decision in enumerate(decisions):
        groups.setdefault(decision.view_name, []).append(index)
    return decisions, groups


def execute_batch(
    router: QueryRouter,
    forest,
    hierarchies: Mapping[str, tuple],
    queries: Sequence[SliceQuery],
) -> BatchResult:
    """Answer a batch of slice queries with one pass per routed view.

    The caller (``CubetreeEngine.query_batch``) measures I/O and wall
    time around this call and fills in the :class:`BatchResult` totals.
    """
    batch = BatchResult(results=[QueryResult() for _ in queries])
    if not queries:
        return batch
    use_pushdown = vector_kernels_enabled()
    decisions, groups = route_batch(router, forest.access_paths(), queries)
    for view_names in _merge_replica_groups(decisions, groups):
        indices = sorted(i for name in view_names for i in groups[name])
        target = _scan_target(forest, decisions, groups, view_names)
        if target is not None and _shared_pass_cheaper(
            router,
            decisions[groups[target][0]].path,
            [decisions[i] for i in indices],
        ):
            view = forest.view_definition(target)
            splits = [
                split_bindings(view, queries[i], hierarchies)
                for i in indices
            ]
            # Total queries with no residual filter fold inside the
            # shared pass (aggregate pushdown) instead of materializing
            # their matches; same leaves read, same rows out.
            fold = [
                use_pushdown
                and not queries[i].group_by
                and not residual
                for i, (_direct, residual) in zip(indices, splits)
            ]
            match_lists = forest.query_view_group(
                target,
                [direct for direct, _ in splits],
                fold=fold if any(fold) else None,
            )
            _OBS_PUSHDOWNS.value += sum(fold)
            batch.batched += len(indices)
            batch.groups += 1
            _finalize_group(
                batch, queries, hierarchies, decisions, view,
                indices, splits, match_lists, " [batched]",
            )
            continue
        # Fallback: each routed view's queries run their own best plans.
        for view_name in view_names:
            view_indices = groups[view_name]
            view = decisions[view_indices[0]].path.view
            splits = [
                split_bindings(view, queries[i], hierarchies)
                for i in view_indices
            ]
            match_lists = []
            for i, (direct, residual) in zip(view_indices, splits):
                if (
                    use_pushdown
                    and not queries[i].group_by
                    and not residual
                    and decisions[i].use_run
                    and forest.has_run(view_name)
                ):
                    match_lists.append(
                        FoldedSlice(
                            forest.query_view_aggregate(view_name, direct)
                        )
                    )
                    _OBS_PUSHDOWNS.value += 1
                else:
                    match_lists.append(
                        list(
                            forest.query_view(
                                view_name, direct, fast=decisions[i].use_run
                            )
                        )
                    )
            batch.groups += 1
            _finalize_group(
                batch, queries, hierarchies, decisions, view,
                view_indices, splits, match_lists, "",
            )
    return batch


def _finalize_group(
    batch: BatchResult,
    queries: Sequence[SliceQuery],
    hierarchies: Mapping[str, tuple],
    decisions: Sequence[RoutingDecision],
    view,
    indices: Sequence[int],
    splits: Sequence[tuple],
    match_lists: Sequence[list],
    suffix: str,
) -> None:
    """Fold each query's matches into its final rows and store them."""
    for index, matches, (_direct, residual) in zip(
        indices, match_lists, splits
    ):
        if isinstance(matches, FoldedSlice):
            rows = finalize_fold(view, matches.states)
        else:
            rows = finalize_matches(
                matches, view, queries[index], hierarchies, residual
            )
        batch.results[index] = QueryResult(
            rows=rows, plan=decisions[index].describe() + suffix
        )


def _merge_replica_groups(
    decisions: Sequence[RoutingDecision],
    groups: Mapping[str, List[int]],
) -> List[List[str]]:
    """Partition routed view names into replica classes.

    Views with the same group-by *set* hold the same rows in different
    physical orders (the Datablade's replication); one shared scan can
    answer every query routed to any of them.  Returns sorted name lists
    in deterministic order.
    """
    classes: Dict[frozenset, List[str]] = {}
    for view_name in sorted(groups):
        view = decisions[groups[view_name][0]].path.view
        classes.setdefault(frozenset(view.group_by), []).append(view_name)
    return [classes[key] for key in sorted(classes, key=sorted)]


def _scan_target(
    forest,
    decisions: Sequence[RoutingDecision],
    groups: Mapping[str, List[int]],
    view_names: Sequence[str],
) -> Optional[str]:
    """The replica whose run a merged shared pass should read, if any."""
    candidates = [name for name in view_names if forest.has_run(name)]
    if not candidates:
        return None
    def run_length(name: str) -> Tuple[int, str]:
        path = decisions[groups[name][0]].path
        return (path.run_leaves or 0, name)
    return min(candidates, key=run_length)


def _shared_pass_cheaper(
    router: QueryRouter,
    path,
    group: Sequence[RoutingDecision],
) -> bool:
    """Should this view group run as one shared pass over the leaf run?

    Compares a conservative shared-pass estimate — one binary seek plus,
    at worst, the whole run read sequentially — against the cost of
    running the group's individual best plans back to back.  The serial
    side is *caching-aware*: consecutive descents into the same view
    re-read the same interior pages, so only the group's first descent
    pays them (the router's single-query estimate charges every query).
    The shared estimate over-counts a bounded group's span (we do not
    know where its prefixes land without reading leaves), so the gate
    only shares when the pass wins even in the worst case; per-query
    answers are identical either way.
    """
    if path.run_leaves is None:
        return False
    run_pages = float(path.run_leaves)
    shared_est = (
        run_seek_probes(run_pages) * router.random_ms
        + run_scan_cost(run_pages, router.random_ms, router.sequential_ms)
    )
    serial_est = 0.0
    seen_descent: set = set()
    for decision in group:
        cost = decision.est_cost
        if decision.order is not None and not decision.use_run:
            # Interiors are shared between descents into the same view.
            if decision.view_name in seen_descent:
                cost -= _DESCENT_PAGES * router.random_ms
            seen_descent.add(decision.view_name)
        serial_est += cost
    return shared_est < serial_est
