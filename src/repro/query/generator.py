"""Uniform random slice-query generation (the Fig. 12/13 workload).

"We used a random query generator, coded to provide a uniform selection of
slice queries on the views ... We assumed equal probability for all types
of queries, with the exception of queries with no selection predicate"
(Sec. 3.3).  Queries with no predicate produce the whole view as output,
diluting retrieval cost, so the generator excludes them by default.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, Sequence, Tuple

from repro.errors import QueryError
from repro.query.slice import SliceQuery
from repro.warehouse.star import StarSchema


class RandomQueryGenerator:
    """Draws slice queries uniformly over the query types of a node.

    Parameters
    ----------
    schema:
        Provides the key domains that predicate constants are drawn from.
    seed:
        Generator seed (deterministic workloads).
    """

    def __init__(self, schema: StarSchema, seed: int = 0) -> None:
        self.schema = schema
        self._rng = random.Random(f"queries/{seed}")

    def query_types(
        self, node: Sequence[str], include_unbound: bool = False
    ) -> List[Tuple[str, ...]]:
        """The bound-attribute subsets available on a node."""
        attrs = tuple(node)
        start = 0 if include_unbound else 1
        types: List[Tuple[str, ...]] = []
        for size in range(start, len(attrs) + 1):
            types.extend(combinations(attrs, size))
        if not types:
            # The super-aggregate node only has the unbound query type.
            types.append(())
        return types

    def generate_for_node(
        self,
        node: Sequence[str],
        count: int,
        include_unbound: bool = False,
    ) -> List[SliceQuery]:
        """``count`` random queries on one lattice node."""
        if count < 0:
            raise QueryError("count must be non-negative")
        types = self.query_types(node, include_unbound)
        queries: List[SliceQuery] = []
        for _ in range(count):
            bound = self._rng.choice(types)
            bindings = tuple(
                (attr, self._random_value(attr)) for attr in bound
            )
            group_by = tuple(a for a in node if a not in bound)
            queries.append(SliceQuery(group_by, bindings))
        return queries

    def generate_workload(
        self,
        nodes: Sequence[Sequence[str]],
        per_node: int,
        include_unbound: bool = False,
    ) -> List[Tuple[Tuple[str, ...], List[SliceQuery]]]:
        """The full Fig. 12 workload: a batch per lattice node."""
        return [
            (tuple(node),
             self.generate_for_node(node, per_node, include_unbound))
            for node in nodes
        ]

    def generate_range_queries(
        self,
        node: Sequence[str],
        count: int,
        width_fraction: float = 0.05,
    ) -> List[SliceQuery]:
        """Random *range* slice queries (the paper's "more general
        experiment where arbitrary range queries are allowed").

        Each query binds a uniformly-chosen non-empty attribute subset of
        the node; every bound attribute carries a closed range spanning
        ``width_fraction`` of its key domain.
        """
        if count < 0:
            raise QueryError("count must be non-negative")
        if not 0 < width_fraction <= 1:
            raise QueryError("width_fraction must be in (0, 1]")
        types = self.query_types(node, include_unbound=False)
        queries: List[SliceQuery] = []
        for _ in range(count):
            bound = self._rng.choice(types)
            ranges = []
            for attr in bound:
                domain = sorted(self._domain_of(attr))
                width = max(1, int(len(domain) * width_fraction))
                start = self._rng.randint(0, max(0, len(domain) - width))
                ranges.append(
                    (attr, domain[start], domain[start + width - 1])
                )
            group_by = tuple(a for a in node if a not in bound)
            queries.append(SliceQuery(group_by, (), tuple(ranges)))
        return queries

    def _domain_of(self, attr: str) -> List[int]:
        if attr in self.schema.dimensions:
            return list(self.schema.key_domain(attr))
        for dim in self.schema.dimensions.values():
            if attr in dim.attributes:
                idx = dim.attribute_index(attr)
                return sorted({row[idx] for row in dim.rows})
        raise QueryError(f"unknown attribute {attr!r}")

    def _random_value(self, attr: str) -> int:
        if attr in self.schema.dimensions:
            domain = self.schema.key_domain(attr)
            return self._rng.choice(list(domain))
        # Hierarchy attribute: draw from its distinct values.
        for dim in self.schema.dimensions.values():
            if attr in dim.attributes:
                idx = dim.attribute_index(attr)
                values = sorted({row[idx] for row in dim.rows})
                return self._rng.choice(values)
        raise QueryError(f"unknown attribute {attr!r}")
