"""The slice-query model of the paper's evaluation (Sec. 3.1).

A slice query carries equality predicates on some attributes of a lattice
node and groups the measure by the node's remaining attributes.  This
package provides the query type, the uniform random generator used for the
Fig. 12/13 workloads, and the cost-based router that picks the best
materialized view (and index / sort order) for each query.
"""

from repro.query.generator import RandomQueryGenerator
from repro.query.result import QueryResult
from repro.query.router import AccessPath, QueryRouter, RoutingDecision
from repro.query.slice import SliceQuery

__all__ = [
    "AccessPath",
    "QueryResult",
    "QueryRouter",
    "RandomQueryGenerator",
    "RoutingDecision",
    "SliceQuery",
]
