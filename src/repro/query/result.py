"""Query results with execution statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.storage.iomodel import IOStats

Row = Tuple[object, ...]


@dataclass
class QueryResult:
    """Rows plus the I/O this query cost.

    ``rows`` are ``group-by values + finalized aggregate values``, sorted
    by group key.  ``io`` is the cost-model delta measured around the
    query; ``wall_ms`` the actual elapsed time; ``plan`` a human-readable
    description of the chosen access path.
    """

    rows: List[Row] = field(default_factory=list)
    io: IOStats = field(default_factory=IOStats)
    wall_ms: float = 0.0
    plan: str = ""

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> float:
        """The single value of a no-group-by query."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError("result is not a scalar")
        return float(self.rows[0][0])  # type: ignore[arg-type]
