"""The stdlib HTTP/JSON front end for :class:`~repro.server.service.CubetreeServer`.

``ThreadingHTTPServer`` gives one thread per connection with no new
dependencies; every worker thread funnels into the admission queue, so
the engine still sees serialized, coalesced execution no matter how many
sockets are open.

Endpoints
---------
``GET  /health``        liveness + current generation
``GET  /stats``         full serving statistics (JSON)
``GET  /generations``   per-generation listing with live pin counts
``POST /query``         one slice query; body is either
                        ``{"sql": "select ..."}`` or the structured form
                        ``{"group_by": [...], "bindings": [[attr, v], ...],
                        "ranges": [[attr, lo, hi], ...]}``
``POST /query/batch``   ``{"queries": [<query body>, ...]}`` — all
                        answered from one pinned snapshot
``POST /delta``         ``{"rows": [[...], ...]}`` — queue a warehouse
                        increment for the next refresh
``POST /refresh``       run one refresh cycle now, return its outcome

Every query response carries the ``generation`` it was answered from —
that tag is what the concurrency harness's snapshot checker keys on.
Admission rejections map to HTTP 503, malformed requests to 400.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Tuple

from repro.errors import ReproError
from repro.query.result import QueryResult
from repro.query.slice import SliceQuery
from repro.server.admission import AdmissionError
from repro.server.service import CubetreeServer, ServedResult

#: Request bodies past this size are rejected outright (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class BadRequest(ReproError):
    """The client sent something unparseable (HTTP 400)."""


def parse_query_body(
    body: Dict[str, Any], server: CubetreeServer
) -> SliceQuery:
    """Build a :class:`SliceQuery` from one JSON query object."""
    if not isinstance(body, dict):
        raise BadRequest("query must be a JSON object")
    if "sql" in body:
        from repro.sql import parse_query

        sql = body["sql"]
        if not isinstance(sql, str):
            raise BadRequest('"sql" must be a string')
        try:
            return parse_query(sql, server.schema)
        except ReproError as exc:
            raise BadRequest(f"bad SQL query: {exc}") from exc
    for key in ("group_by", "bindings", "ranges"):
        if key in body and not isinstance(body[key], (list, tuple)):
            raise BadRequest(f'"{key}" must be a JSON array')
    try:
        group_by = tuple(str(a) for a in body.get("group_by", ()))
        bindings = tuple(
            (str(attr), int(value))
            for attr, value in body.get("bindings", ())
        )
        ranges = tuple(
            (str(attr), int(low), int(high))
            for attr, low, high in body.get("ranges", ())
        )
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"malformed query body: {exc}") from exc
    try:
        return SliceQuery(group_by=group_by, bindings=bindings, ranges=ranges)
    except ReproError as exc:
        raise BadRequest(f"invalid slice query: {exc}") from exc


def _result_payload(served: ServedResult) -> Dict[str, Any]:
    result: QueryResult = served.result
    return {
        "generation": served.generation,
        "row_count": len(result.rows),
        "rows": [list(row) for row in result.rows],
    }


class _Handler(BaseHTTPRequestHandler):
    """Dispatches the JSON API; the server object rides on the HTTP server."""

    protocol_version = "HTTP/1.1"
    #: Quieten the default stderr access log (tests and benches hammer it).
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    @property
    def cubetree(self) -> CubetreeServer:
        return self.server.cubetree  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        return body

    def _dispatch(self, routes: Dict[str, Any]) -> None:
        handler = routes.get(self.path.rstrip("/") or "/")
        if handler is None:
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        try:
            status, payload = handler()
        except BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except AdmissionError as exc:
            self._send_json(503, {"error": str(exc)})
        except ReproError as exc:
            self._send_json(500, {"error": str(exc)})
        else:
            self._send_json(status, payload)

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        self._dispatch(
            {
                "/health": self._route_health,
                "/stats": self._route_stats,
                "/generations": self._route_generations,
            }
        )

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        self._dispatch(
            {
                "/query": self._route_query,
                "/query/batch": self._route_query_batch,
                "/delta": self._route_delta,
                "/refresh": self._route_refresh,
            }
        )

    def _route_health(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "status": "ok",
            "generation": self.cubetree.manager.current_number,
        }

    def _route_stats(self) -> Tuple[int, Dict[str, Any]]:
        return 200, self.cubetree.stats()

    def _route_generations(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"generations": self.cubetree.manager.describe()}

    def _route_query(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        query = parse_query_body(body, self.cubetree)
        served = self.cubetree.query(query)
        return 200, _result_payload(served)

    def _route_query_batch(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        raw_queries = body.get("queries")
        if not isinstance(raw_queries, list):
            raise BadRequest('"queries" must be a JSON array')
        queries = [
            parse_query_body(item, self.cubetree) for item in raw_queries
        ]
        served = self.cubetree.query_batch(queries)
        generation = served[0].generation if served else None
        return 200, {
            "generation": generation,
            "results": [_result_payload(item) for item in served],
        }

    def _route_delta(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_body()
        raw_rows = body.get("rows")
        if not isinstance(raw_rows, list):
            raise BadRequest('"rows" must be a JSON array of arrays')
        rows: List[Tuple[int, ...]] = []
        try:
            for raw in raw_rows:
                rows.append(tuple(int(v) for v in raw))
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"malformed delta rows: {exc}") from exc
        pending = self.cubetree.submit_delta(rows)
        return 202, {"accepted_rows": len(rows), "pending_rows": pending}

    def _route_refresh(self) -> Tuple[int, Dict[str, Any]]:
        outcome = self.cubetree.refresh_now()
        status = 200 if outcome.status != "failed" else 500
        return status, outcome.as_dict()


class CubetreeHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` carrying its :class:`CubetreeServer`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        cubetree: CubetreeServer,
    ) -> None:
        super().__init__(address, _Handler)
        self.cubetree = cubetree


def make_http_server(
    cubetree: CubetreeServer,
    host: str = "127.0.0.1",
    port: int = 0,
) -> CubetreeHTTPServer:
    """Bind the JSON API for a started :class:`CubetreeServer`.

    ``port=0`` picks a free ephemeral port (tests); the bound address is
    ``server.server_address``.  The caller drives ``serve_forever()`` —
    typically on a dedicated thread — and owns shutdown ordering: HTTP
    first, then the Cubetree server.
    """
    return CubetreeHTTPServer((host, port), cubetree)


__all__ = [
    "BadRequest",
    "CubetreeHTTPServer",
    "MAX_BODY_BYTES",
    "make_http_server",
    "parse_query_body",
]
