"""Refcounted generation snapshots over the checkpoint manifests.

The MVCC heart of the server.  A :class:`GenerationHandle` wraps one
*committed* checkpoint generation — its number, its ``gen-<n>/``
directory, and an engine (:class:`~repro.core.engine.CubetreeEngine` or
:class:`~repro.core.sharded.ShardedCubetreeEngine`, whichever the
checkpoint's layout names) reopened from it that is never mutated again
— plus a pin count.  Readers pin the
current handle for the duration of a query; a publish installs a new
handle without touching pinned ones; a generation's files are pruned
only once its pin count has dropped to zero *and* it has been
superseded.  The result is snapshot isolation by construction: every
answer a reader computes comes from exactly one committed generation's
engine, so it is bit-identical to that generation's serial answer.

All pin/publish/prune bookkeeping happens under one manager lock; query
execution itself never holds it.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Type

from repro.core.persistence import (
    DEFAULT_RETAIN,
    list_generations,
    load_any_engine,
    newest_committed_number,
    prune_generations,
)
from repro.errors import ReproError
from repro.obs import get_registry
from repro.storage.buffer import SharedBufferPool

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_PINNED = _REG.gauge("server.pinned_generations")
_OBS_PUBLISHES = _REG.counter("server.generations_published")
_OBS_PRUNED = _REG.counter("server.generations_pruned")


class GenerationError(ReproError):
    """Pin bookkeeping violated (double release, pin after close, ...)."""


class GenerationHandle:
    """One committed generation: engine snapshot + refcount.

    The engine is read-only by contract — queries may touch its buffer
    pool, but its data never changes after the handle is published —
    so any number of queries answered through it equal that generation's
    serial answers.  ``pins`` is owned by the manager's lock; use
    :meth:`GenerationManager.acquire` / :meth:`GenerationManager.release`
    rather than mutating it.
    """

    __slots__ = ("number", "path", "engine", "pins", "retired")

    def __init__(self, number: int, path: str, engine: Any) -> None:
        self.number = number
        self.path = path
        self.engine = engine
        self.pins = 0
        #: Superseded by a newer publish (still readable while pinned).
        self.retired = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GenerationHandle(number={self.number}, pins={self.pins}, "
            f"retired={self.retired})"
        )


class GenerationManager:
    """Owns the live generations of one serving database directory.

    ``retain`` mirrors :func:`repro.core.persistence.save_engine`'s
    retention: that many newest committed generations keep their files
    even when unpinned (fast restarts, corruption headroom).  Pinned
    generations additionally always keep their files, however old.
    """

    def __init__(
        self,
        directory: str,
        retain: int = DEFAULT_RETAIN,
        pool_cls: Optional[Type] = SharedBufferPool,
    ) -> None:
        self.directory = directory
        self.retain = retain
        self.pool_cls = pool_cls
        self._lock = threading.Lock()
        self._current: Optional[GenerationHandle] = None
        self._handles: Dict[int, GenerationHandle] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    def open(self) -> GenerationHandle:
        """Load the newest committed generation and make it current."""
        number = newest_committed_number(self.directory)
        if number is None:
            raise GenerationError(
                f"no committed generation to serve in {self.directory!r}"
            )
        return self._install(number)

    def _load_handle(self, number: int) -> GenerationHandle:
        paths = {
            gen_number: path
            for gen_number, path, committed in list_generations(self.directory)
            if committed
        }
        if number not in paths:
            raise GenerationError(
                f"generation {number} is not committed in {self.directory!r}"
            )
        engine = load_any_engine(self.directory, pool_cls=self.pool_cls)
        newest = newest_committed_number(self.directory)
        if newest != number:
            raise GenerationError(
                f"generation {number} is no longer the newest committed "
                f"generation (found {newest})"
            )
        return GenerationHandle(number, paths[number], engine)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def acquire(self) -> GenerationHandle:
        """Pin and return the current generation snapshot."""
        with self._lock:
            if self._closed or self._current is None:
                raise GenerationError("generation manager is not serving")
            handle = self._current
            handle.pins += 1
            self._update_pin_gauge_locked()
            return handle

    def release(self, handle: GenerationHandle) -> None:
        """Drop one pin; prune retired generations that hit zero pins."""
        with self._lock:
            if handle.pins <= 0:
                raise GenerationError(
                    f"generation {handle.number} is not pinned"
                )
            handle.pins -= 1
            drop = (
                handle.retired
                and handle.pins == 0
                and handle.number in self._handles
            )
            if drop:
                del self._handles[handle.number]
            self._update_pin_gauge_locked()
            protect = self._protected_numbers_locked()
        if drop:
            handle.engine = None  # type: ignore[assignment]
            self._prune(protect)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def install(
        self, number: int, engine: Optional[Any] = None
    ) -> GenerationHandle:
        """Make committed generation ``number`` the current snapshot.

        ``engine`` short-circuits the reload when the caller already
        holds the engine whose state *is* that generation (the refresh
        builder right after its checkpoint committed).  The previous
        current handle is retired; its files survive while pinned.
        """
        return self._install(number, engine)

    def _install(
        self, number: int, engine: Optional[Any] = None
    ) -> GenerationHandle:
        if engine is None:
            handle = self._load_handle(number)
        else:
            paths = {
                gen_number: path
                for gen_number, path, committed in list_generations(
                    self.directory
                )
                if committed
            }
            if number not in paths:
                raise GenerationError(
                    f"cannot install uncommitted generation {number}"
                )
            handle = GenerationHandle(number, paths[number], engine)
        with self._lock:
            if self._closed:
                raise GenerationError("generation manager is closed")
            previous = self._current
            if previous is not None:
                if handle.number <= previous.number:
                    raise GenerationError(
                        f"generation {handle.number} does not supersede "
                        f"current generation {previous.number}"
                    )
                previous.retired = True
                if previous.pins == 0:
                    self._handles.pop(previous.number, None)
                    previous.engine = None  # type: ignore[assignment]
            self._current = handle
            self._handles[handle.number] = handle
            self._update_pin_gauge_locked()
            protect = self._protected_numbers_locked()
        _OBS_PUBLISHES.inc()
        self._prune(protect)
        return handle

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def _protected_numbers_locked(self) -> List[int]:
        """Generation numbers whose files must survive a prune."""
        protect = {
            number
            for number, handle in self._handles.items()
            if handle.pins > 0 or handle is self._current
        }
        return sorted(protect)

    def protected_numbers(self) -> List[int]:
        """Public snapshot of the currently unprunable generations."""
        with self._lock:
            return self._protected_numbers_locked()

    def _prune(self, protect: List[int]) -> None:
        before = {number for number, _p, _c in list_generations(self.directory)}
        prune_generations(
            self.directory, retain=self.retain, protect=protect
        )
        after = {number for number, _p, _c in list_generations(self.directory)}
        removed = len(before - after)
        if removed:
            _OBS_PRUNED.inc(removed)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def current_number(self) -> Optional[int]:
        """Number of the generation new readers would pin (None = closed)."""
        with self._lock:
            return self._current.number if self._current is not None else None

    def describe(self) -> List[Dict[str, object]]:
        """JSON-ready listing: every on-disk generation + live pin state."""
        with self._lock:
            live = {
                number: handle for number, handle in self._handles.items()
            }
            current = self._current
        out: List[Dict[str, object]] = []
        for number, _path, committed in list_generations(self.directory):
            handle = live.get(number)
            out.append(
                {
                    "generation": number,
                    "committed": committed,
                    "pins": handle.pins if handle is not None else 0,
                    "current": current is not None
                    and current.number == number,
                }
            )
        return out

    def pin_counts(self) -> Dict[int, int]:
        """Live pin count per generation (test/diagnostic hook)."""
        with self._lock:
            return {
                number: handle.pins
                for number, handle in self._handles.items()
            }

    def run_pinned(
        self, work: Callable[[GenerationHandle], object]
    ) -> object:
        """Run ``work`` with the current generation pinned (helper)."""
        handle = self.acquire()
        try:
            return work(handle)
        finally:
            self.release(handle)

    def close(self) -> None:
        """Stop serving; outstanding pins stay valid until released."""
        with self._lock:
            self._closed = True
            if self._current is not None:
                self._current.retired = True
            self._current = None

    def _update_pin_gauge_locked(self) -> None:
        pinned = sum(
            1 for handle in self._handles.values() if handle.pins > 0
        )
        _OBS_PINNED.set(pinned)
