"""Concurrent OLAP serving over a generational Cubetree database.

The paper's operational claim (Sec. 5) is that merge-pack rebuilds the
aggregate views into a *new* storage generation and swaps it in
atomically, so queries never block on bulk incremental updates.  The
generational checkpoints of :mod:`repro.core.persistence` are that
substrate; this package puts a long-lived, thread-safe serving layer on
top of it:

* :mod:`repro.server.generations` — refcounted
  :class:`~repro.server.generations.GenerationHandle` snapshots over the
  checkpoint manifests; readers pin a generation, publishes swap the
  current one, files are pruned only when a generation's pin count is
  zero.
* :mod:`repro.server.admission` — an admission queue that coalesces
  concurrent slice queries into shared
  :meth:`~repro.core.engine.CubetreeEngine.query_batch` passes and
  serializes execution per engine.
* :mod:`repro.server.service` — :class:`~repro.server.service.CubetreeServer`,
  the long-lived service object: snapshot-isolated queries, a background
  refresh thread running merge-pack + atomic publish, metrics.
* :mod:`repro.server.http` — the stdlib ``ThreadingHTTPServer`` JSON API
  behind ``repro serve``.

See ``docs/SERVING.md`` for the API and the snapshot-isolation model.
"""

from repro.server.admission import AdmissionError, AdmissionQueue
from repro.server.generations import GenerationHandle, GenerationManager
from repro.server.http import make_http_server
from repro.server.service import (
    CubetreeServer,
    RefreshOutcome,
    ServedResult,
    ServerConfig,
    ServerError,
    bootstrap_database,
)

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "CubetreeServer",
    "GenerationHandle",
    "GenerationManager",
    "RefreshOutcome",
    "ServedResult",
    "ServerConfig",
    "ServerError",
    "bootstrap_database",
    "make_http_server",
]
