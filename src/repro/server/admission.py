"""Query admission: coalesce concurrent requests into shared batch passes.

HTTP worker threads do not touch an engine directly.  Each request pins a
generation snapshot, enqueues ``(handle, query)`` here, and waits; a
single executor thread drains the queue, groups the pending queries by
generation, and answers each group through the engine —
:meth:`~repro.core.engine.CubetreeEngine.query` for a lone query,
:meth:`~repro.core.engine.CubetreeEngine.query_batch` (one shared
leaf-run pass per routed view) once concurrency has piled two or more
queries onto the same snapshot.  That gives three properties at once:

* **coalescing** — concurrent load turns into the batched execution path
  the cost model already favours (PR 5), so throughput under many
  clients exceeds one-at-a-time serial service;
* **serialized engine access** — exactly one thread executes against any
  engine, so the buffer pool, cost model, and router see the
  single-threaded schedules they were built for (the
  :class:`~repro.storage.buffer.SharedBufferPool` lock stays a
  defence-in-depth backstop, not the consistency mechanism);
* **bounded admission** — past ``max_depth`` waiting queries, new
  arrivals are rejected with :class:`AdmissionError` (HTTP 503) instead
  of growing the queue without limit.

Batched answers are bit-identical to serial ones (PR 5's invariant), so
coalescing never weakens the snapshot checker's guarantee.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import get_registry
from repro.query.result import QueryResult
from repro.query.slice import SliceQuery
from repro.server.generations import GenerationHandle

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_DEPTH = _REG.gauge("server.admission_depth")
_OBS_DEPTH_PEAK = _REG.gauge("server.admission_depth_peak")
_OBS_COALESCED = _REG.counter("server.queries_coalesced")
_OBS_REJECTED = _REG.counter("server.admission_rejected")
_OBS_ROUNDS = _REG.counter("server.admission_rounds")


class AdmissionError(ReproError):
    """The admission queue is full or shut down."""


class _Pending:
    """One enqueued query: inputs, completion event, outcome."""

    __slots__ = ("handle", "query", "done", "result", "error", "coalesced")

    def __init__(self, handle: GenerationHandle, query: SliceQuery) -> None:
        self.handle = handle
        self.query = query
        self.done = threading.Event()
        self.result: Optional[QueryResult] = None
        self.error: Optional[BaseException] = None
        self.coalesced = False

    def finish(
        self,
        result: Optional[QueryResult],
        error: Optional[BaseException] = None,
    ) -> None:
        self.result = result
        self.error = error
        self.done.set()


class AdmissionQueue:
    """Coalescing executor over pinned generation snapshots.

    ``start()`` launches the executor thread; ``submit()`` blocks the
    calling thread until its query is answered (or the queue rejects or
    shuts down).  The caller owns the generation pin around ``submit`` —
    the queue never pins or releases, so pin balance stays provable at
    the call site.
    """

    def __init__(self, max_depth: int = 1024) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: List[_Pending] = []
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        #: Peak queue depth since start (monotonic; tests assert bounds).
        self._peak_depth = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the executor thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._closed = False
            self._thread = threading.Thread(
                target=self._run, name="repro-admission", daemon=True
            )
            self._thread.start()

    def close(self) -> None:
        """Stop accepting work, fail waiters, and join the executor."""
        with self._lock:
            self._closed = True
            thread = self._thread
            self._thread = None
            pending = self._pending
            self._pending = []
            self._wakeup.notify_all()
        for item in pending:
            item.finish(None, AdmissionError("server shutting down"))
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)

    @property
    def depth(self) -> int:
        """Queries currently waiting for the executor."""
        with self._lock:
            return len(self._pending)

    @property
    def peak_depth(self) -> int:
        """Largest queue depth observed since construction."""
        with self._lock:
            return self._peak_depth

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        handle: GenerationHandle,
        query: SliceQuery,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Enqueue one query against a pinned snapshot and await its answer.

        Raises :class:`AdmissionError` when the queue is full or closed,
        and re-raises whatever the engine raised otherwise.  ``timeout``
        bounds the wait (None = wait forever); on expiry the query may
        still execute, but its result is dropped.
        """
        return self.wait(self.submit_nowait(handle, query), timeout=timeout)

    def submit_nowait(
        self, handle: GenerationHandle, query: SliceQuery
    ) -> _Pending:
        """Enqueue one query and return immediately with its ticket.

        Used for multi-query requests: enqueue every query of the batch,
        then :meth:`wait` on each ticket — the executor naturally answers
        them in one coalesced round.
        """
        item = _Pending(handle, query)
        with self._lock:
            if self._closed or self._thread is None:
                raise AdmissionError("admission queue is not running")
            if len(self._pending) >= self.max_depth:
                _OBS_REJECTED.inc()
                raise AdmissionError(
                    f"admission queue full ({self.max_depth} waiting)"
                )
            self._pending.append(item)
            depth = len(self._pending)
            if depth > self._peak_depth:
                self._peak_depth = depth
                _OBS_DEPTH_PEAK.set(depth)
            _OBS_DEPTH.set(depth)
            self._wakeup.notify()
        return item

    @staticmethod
    def wait(item: _Pending, timeout: Optional[float] = None) -> QueryResult:
        """Block until a ticket completes; re-raise its error if any."""
        if not item.done.wait(timeout):
            raise AdmissionError("query timed out in admission")
        if item.error is not None:
            raise item.error
        if item.result is None:  # pragma: no cover - defensive
            raise AdmissionError("query finished without a result")
        return item.result

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._pending:
                    return
                batch = self._pending
                self._pending = []
                _OBS_DEPTH.set(0)
            _OBS_ROUNDS.inc()
            self._execute_round(batch)

    def _execute_round(self, batch: Sequence[_Pending]) -> None:
        """Answer one drained round, grouped by generation snapshot."""
        groups: Dict[int, List[_Pending]] = {}
        order: List[int] = []
        for item in batch:
            key = item.handle.number
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(item)
        for key in order:
            self._execute_group(groups[key])

    def _execute_group(self, group: List[_Pending]) -> None:
        engine = group[0].handle.engine
        if len(group) == 1:
            item = group[0]
            self._finish_one(item, lambda: engine.query(item.query))
            return
        queries = [item.query for item in group]
        try:
            batch_result = engine.query_batch(queries)
        except BaseException as exc:  # noqa: BLE001 - relayed to waiters
            for item in group:
                item.finish(None, exc)
            return
        _OBS_COALESCED.inc(len(group))
        for item, result in zip(group, batch_result.results):
            item.coalesced = True
            item.finish(result)

    @staticmethod
    def _finish_one(
        item: _Pending, run: Callable[[], QueryResult]
    ) -> None:
        try:
            result = run()
        except BaseException as exc:  # noqa: BLE001 - relayed to waiters
            item.finish(None, exc)
        else:
            item.finish(result)
