"""The long-lived Cubetree serving object: snapshot queries + live refresh.

:class:`CubetreeServer` ties the pieces together over one database
directory (the generational checkpoint layout of
:mod:`repro.core.persistence`):

* **queries** pin the current :class:`~repro.server.generations.GenerationHandle`
  and go through the :class:`~repro.server.admission.AdmissionQueue`, so
  every answer comes from exactly one committed generation and
  concurrent requests coalesce into shared batch passes;
* **refresh** applies queued warehouse increments on a *private builder
  engine* loaded from the newest committed generation, merge-packs, and
  publishes the result as the next generation via the checkpoint
  manifest's atomic rename — readers never block and never observe a
  half-applied increment;
* **recovery** keys off the manifest commit point: if a crash kills the
  publish *before* the manifest rename, the builder is discarded, the
  deltas stay queued, and the old generation keeps serving; if the crash
  lands *after* the rename (e.g. during prune), the new generation is
  already the database and the server adopts it instead of re-applying
  the increment (exactly-once refresh).

The refresh thread is optional — tests and the bench drive
:meth:`CubetreeServer.refresh_now` directly for deterministic schedules.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.persistence import (
    DEFAULT_RETAIN,
    load_any_engine,
    newest_committed_number,
    save_database,
)
from repro.errors import ReproError
from repro.obs import get_registry
from repro.query.result import QueryResult
from repro.query.slice import SliceQuery
from repro.server.admission import AdmissionQueue
from repro.server.generations import GenerationManager
from repro.storage.buffer import SharedBufferPool
from repro.storage.wal import CrashPoint

Row = Tuple[object, ...]

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_REQUESTS = _REG.counter("server.requests")
_OBS_ERRORS = _REG.counter("server.request_errors")
_OBS_INFLIGHT = _REG.gauge("server.inflight_queries")
_OBS_LATENCY = _REG.histogram("server.query_wall_ms")
_OBS_REFRESHES = _REG.counter("server.refreshes")
_OBS_REFRESH_FAILURES = _REG.counter("server.refresh_failures")
_OBS_REFRESH_ROWS = _REG.counter("server.refresh_rows_applied")
_OBS_DELTA_PENDING = _REG.gauge("server.delta_rows_pending")

_GEN_DIR_RE = re.compile(r"gen-(\d+)$")


class ServerError(ReproError):
    """The serving layer was asked something it cannot do."""


@dataclass
class ServedResult:
    """A query answer plus the generation snapshot that produced it."""

    result: QueryResult
    generation: int

    @property
    def rows(self) -> List[Row]:
        return self.result.rows


@dataclass
class RefreshOutcome:
    """What one refresh cycle did.

    ``status`` is one of ``"idle"`` (nothing queued), ``"published"``
    (new generation committed and installed), or ``"failed"`` (publish
    died before the commit point; deltas remain queued).
    """

    status: str
    generation: Optional[int] = None
    rows_applied: int = 0
    error: Optional[str] = None
    #: True when the commit landed but the crash hit after the manifest
    #: rename (prune); the server adopted the on-disk generation.
    recovered_post_commit: bool = False
    wall_ms: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "generation": self.generation,
            "rows_applied": self.rows_applied,
            "error": self.error,
            "recovered_post_commit": self.recovered_post_commit,
            "wall_ms": self.wall_ms,
        }


@dataclass
class ServerConfig:
    """Construction knobs for :class:`CubetreeServer`."""

    retain: int = DEFAULT_RETAIN
    max_admission_depth: int = 1024
    #: Seconds between refresh-thread wakeups (None = no thread; drive
    #: :meth:`CubetreeServer.refresh_now` manually).
    refresh_interval: Optional[float] = None
    pool_cls: Optional[Type] = SharedBufferPool
    query_timeout: Optional[float] = 60.0


class CubetreeServer:
    """Thread-safe OLAP serving over one generational database directory."""

    def __init__(
        self, directory: str, config: Optional[ServerConfig] = None
    ) -> None:
        self.directory = directory
        self.config = config or ServerConfig()
        self.manager = GenerationManager(
            directory,
            retain=self.config.retain,
            pool_cls=self.config.pool_cls,
        )
        self.admission = AdmissionQueue(
            max_depth=self.config.max_admission_depth
        )
        #: Armed by crash tests; forwarded to every publish.  A real
        #: deployment leaves it None.
        self.crash_point: Optional[CrashPoint] = None
        self._delta_lock = threading.Lock()
        self._pending_deltas: List[List[Row]] = []
        self._pending_rows = 0
        #: Serializes refresh cycles (thread + manual refresh_now calls).
        self._refresh_lock = threading.Lock()
        self._refresh_wakeup = threading.Condition(self._delta_lock)
        self._refresh_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        #: The serving StarSchema, set on :meth:`start`.
        self.schema: Any = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CubetreeServer":
        """Open the newest committed generation and begin serving."""
        if self._started:
            return self
        handle = self.manager.open()
        self.schema = handle.engine.schema
        self.admission.start()
        self._stop.clear()
        if self.config.refresh_interval is not None:
            self._refresh_thread = threading.Thread(
                target=self._refresh_loop,
                name="repro-refresh",
                daemon=True,
            )
            self._refresh_thread.start()
        self._started = True
        return self

    def close(self) -> None:
        """Stop the refresh thread and the admission executor."""
        self._stop.set()
        with self._delta_lock:
            self._refresh_wakeup.notify_all()
        thread = self._refresh_thread
        self._refresh_thread = None
        if thread is not None:
            thread.join(timeout=10.0)
        self.admission.close()
        self.manager.close()
        self._started = False

    def __enter__(self) -> "CubetreeServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self, query: SliceQuery, timeout: Optional[float] = None
    ) -> ServedResult:
        """Answer one slice query against a pinned snapshot."""
        self._require_started()
        if timeout is None:
            timeout = self.config.query_timeout
        wall_start = time.perf_counter()
        _OBS_REQUESTS.inc()
        _OBS_INFLIGHT.add(1)
        handle = self.manager.acquire()
        try:
            result = self.admission.submit(handle, query, timeout=timeout)
            generation = handle.number
        except BaseException:
            _OBS_ERRORS.inc()
            raise
        finally:
            self.manager.release(handle)
            _OBS_INFLIGHT.add(-1)
        _OBS_LATENCY.observe((time.perf_counter() - wall_start) * 1000.0)
        return ServedResult(result=result, generation=generation)

    def query_batch(
        self,
        queries: Sequence[SliceQuery],
        timeout: Optional[float] = None,
    ) -> List[ServedResult]:
        """Answer several queries against one pinned snapshot.

        All queries of the request see the *same* generation (one pin
        covers them all), and the executor coalesces them into shared
        passes exactly as it does unrelated concurrent queries.
        """
        self._require_started()
        if not queries:
            return []
        if timeout is None:
            timeout = self.config.query_timeout
        wall_start = time.perf_counter()
        _OBS_REQUESTS.inc()
        _OBS_INFLIGHT.add(1)
        handle = self.manager.acquire()
        try:
            tickets = [
                self.admission.submit_nowait(handle, query)
                for query in queries
            ]
            results = [
                ServedResult(
                    result=self.admission.wait(ticket, timeout=timeout),
                    generation=handle.number,
                )
                for ticket in tickets
            ]
        except BaseException:
            _OBS_ERRORS.inc()
            raise
        finally:
            self.manager.release(handle)
            _OBS_INFLIGHT.add(-1)
        _OBS_LATENCY.observe((time.perf_counter() - wall_start) * 1000.0)
        return results

    def query_sql(self, sql: str) -> ServedResult:
        """Parse one SQL slice query against the serving schema and run it."""
        from repro.sql import parse_query

        self._require_started()
        return self.query(parse_query(sql, self.schema))

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------
    def submit_delta(self, rows: Sequence[Row]) -> int:
        """Queue a warehouse increment for the next refresh cycle.

        Returns the total fact rows now pending.  The rows become
        visible only when a refresh publishes the generation containing
        them — queries meanwhile keep answering from the current one.
        """
        batch = [tuple(row) for row in rows]
        with self._delta_lock:
            if batch:
                self._pending_deltas.append(batch)
                self._pending_rows += len(batch)
                self._refresh_wakeup.notify()
            pending = self._pending_rows
        _OBS_DELTA_PENDING.set(pending)
        return pending

    @property
    def pending_delta_rows(self) -> int:
        """Fact rows queued but not yet published."""
        with self._delta_lock:
            return self._pending_rows

    def refresh_now(self) -> RefreshOutcome:
        """Run one refresh cycle synchronously (merge-pack + publish).

        Safe to call concurrently with queries and with the refresh
        thread (cycles are serialized by an internal lock).
        """
        with self._refresh_lock:
            return self._refresh_cycle()

    def _refresh_cycle(self) -> RefreshOutcome:
        wall_start = time.perf_counter()
        with self._delta_lock:
            drained = len(self._pending_deltas)
            batches = list(self._pending_deltas[:drained])
        if not batches:
            return RefreshOutcome(
                status="idle", generation=self.manager.current_number
            )
        rows: List[Row] = [row for batch in batches for row in batch]
        before = newest_committed_number(self.directory)
        try:
            builder = load_any_engine(
                self.directory, pool_cls=self.config.pool_cls
            )
            builder.update(rows)
            gen_path = save_database(
                builder,
                self.directory,
                crash_point=self.crash_point,
                retain=self.config.retain,
                protect=self.manager.protected_numbers(),
            )
        except BaseException as exc:  # noqa: BLE001 - crash/IO recovery
            outcome = self._recover_publish(before, drained, len(rows), exc)
            outcome.wall_ms = (time.perf_counter() - wall_start) * 1000.0
            return outcome
        number = self._generation_number(gen_path)
        self.manager.install(number, engine=builder)
        self._drop_applied(drained)
        _OBS_REFRESHES.inc()
        _OBS_REFRESH_ROWS.inc(len(rows))
        return RefreshOutcome(
            status="published",
            generation=number,
            rows_applied=len(rows),
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
        )

    def _recover_publish(
        self,
        before: Optional[int],
        drained: int,
        row_count: int,
        exc: BaseException,
    ) -> RefreshOutcome:
        """Classify a failed publish against the manifest commit point.

        The manifest rename *is* the commit: if the newest committed
        generation moved past ``before``, the increment is durably in
        the database and must not be re-applied — adopt the on-disk
        generation.  Otherwise the partial generation is crash debris,
        the deltas stay queued, and the old snapshot keeps serving.
        """
        after = newest_committed_number(self.directory)
        if after is not None and (before is None or after > before):
            self.manager.install(after)
            self._drop_applied(drained)
            _OBS_REFRESHES.inc()
            _OBS_REFRESH_ROWS.inc(row_count)
            return RefreshOutcome(
                status="published",
                generation=after,
                rows_applied=row_count,
                error=str(exc),
                recovered_post_commit=True,
            )
        _OBS_REFRESH_FAILURES.inc()
        return RefreshOutcome(
            status="failed",
            generation=before,
            rows_applied=0,
            error=str(exc),
        )

    def _drop_applied(self, drained: int) -> None:
        with self._delta_lock:
            del self._pending_deltas[:drained]
            self._pending_rows = sum(
                len(batch) for batch in self._pending_deltas
            )
            pending = self._pending_rows
        _OBS_DELTA_PENDING.set(pending)

    @staticmethod
    def _generation_number(gen_path: str) -> int:
        match = _GEN_DIR_RE.search(os.path.basename(gen_path))
        if match is None:  # pragma: no cover - save_engine names these
            raise ServerError(f"unrecognized generation path {gen_path!r}")
        return int(match.group(1))

    def _refresh_loop(self) -> None:
        interval = self.config.refresh_interval or 1.0
        while not self._stop.is_set():
            with self._delta_lock:
                if not self._pending_deltas and not self._stop.is_set():
                    self._refresh_wakeup.wait(timeout=interval)
                pending = bool(self._pending_deltas)
            if self._stop.is_set():
                return
            if pending:
                self.refresh_now()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def shard_stats(self) -> Optional[List[Dict[str, object]]]:
        """Per-shard statistics of the serving generation's engine.

        ``None`` when the database is unsharded (or not serving); the
        sharded engine reports pages, rows, simulated I/O, buffer hit
        rates, and routed-query counts per shard so scatter-gather skew
        is observable at ``GET /stats``.
        """
        try:
            stats = self.manager.run_pinned(
                lambda handle: handle.engine.shard_stats()
                if hasattr(handle.engine, "shard_stats")
                else None
            )
        except ReproError:
            return None
        return stats  # type: ignore[return-value]

    def stats(self) -> Dict[str, object]:
        """JSON-ready serving statistics (generation, admission, metrics)."""
        reg = get_registry()
        return {
            "directory": self.directory,
            "shards": self.shard_stats(),
            "generation": self.manager.current_number,
            "generations": self.manager.describe(),
            "admission": {
                "depth": self.admission.depth,
                "peak_depth": self.admission.peak_depth,
                "max_depth": self.admission.max_depth,
            },
            "pending_delta_rows": self.pending_delta_rows,
            # Decoded-column side-cache economics (process-wide): how
            # often vectorized run scans reuse a decoded columnar leaf
            # instead of re-decoding the page bytes.
            "column_cache": {
                "hits": reg.counter("buffer.column_cache.hits").snapshot(),
                "misses": reg.counter(
                    "buffer.column_cache.misses"
                ).snapshot(),
                "evictions": reg.counter(
                    "buffer.column_cache.evictions"
                ).snapshot(),
                "invalidations": reg.counter(
                    "buffer.column_cache.invalidations"
                ).snapshot(),
                "bytes": reg.counter(
                    "buffer.column_cache.bytes"
                ).snapshot(),
            },
            "metrics": {
                "requests": _OBS_REQUESTS.snapshot(),
                "request_errors": _OBS_ERRORS.snapshot(),
                "inflight_queries": _OBS_INFLIGHT.snapshot(),
                "refreshes": _OBS_REFRESHES.snapshot(),
                "refresh_failures": _OBS_REFRESH_FAILURES.snapshot(),
                "query_wall_ms": reg.histogram(
                    "server.query_wall_ms"
                ).snapshot(),
            },
        }

    def _require_started(self) -> None:
        if not self._started:
            raise ServerError("server is not started")


@dataclass
class BootstrapReport:
    """What :func:`bootstrap_database` did."""

    generation: int
    created: bool
    fact_rows: int = 0
    view_rows: int = 0


def bootstrap_database(
    directory: str,
    scale: float = 0.002,
    seed: int = 42,
    retain: int = DEFAULT_RETAIN,
    replicate: bool = True,
    shards: int = 1,
) -> BootstrapReport:
    """Ensure ``directory`` holds a committed generation to serve.

    When the directory already has one, it is left untouched.  Otherwise
    the paper's configuration (views + replicas) is built at ``scale``
    from the deterministic TPC-D generator and checkpointed as
    generation 1.  With ``shards > 1`` the database is built sharded
    (residue mod N on the leading group coordinate); refresh cycles
    keep the layout they find on disk.
    """
    existing = newest_committed_number(directory)
    if existing is not None:
        return BootstrapReport(generation=existing, created=False)
    from repro.experiments.common import (
        ExperimentConfig,
        build_cubetree_engine,
        build_sharded_engine,
        build_warehouse,
    )

    config = ExperimentConfig(scale_factor=scale, seed=seed)
    _generator, data = build_warehouse(config)
    if shards > 1:
        engine, report = build_sharded_engine(
            config, data, shards=shards, replicate=replicate
        )
    else:
        engine, report = build_cubetree_engine(
            config, data, replicate=replicate
        )
    gen_path = save_database(engine, directory, retain=retain)
    number = CubetreeServer._generation_number(gen_path)
    return BootstrapReport(
        generation=number,
        created=True,
        fact_rows=len(data.facts),
        view_rows=report.view_rows,
    )
