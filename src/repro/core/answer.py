"""Turning view matches into query answers.

Both engines retrieve *state rows* of the routed view; this module handles
the rest: residual predicate filtering (bound attributes the physical
access could not apply), roll-ups for hierarchy group-bys, re-aggregation
to the query's grouping, and finalization of aggregate states into
user-visible values.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import QueryError
from repro.query.slice import SliceQuery
from repro.relational.executor import combine_states, finalize_state
from repro.relational.view import ViewDefinition
from repro.warehouse.hierarchy import Hierarchy

Row = Tuple[object, ...]
Match = Tuple[Tuple[int, ...], Tuple[float, ...]]
Extractor = Callable[[Tuple[int, ...]], int]

#: hierarchy attribute -> (hierarchy, determining fact key).  Engines build
#: this from the star schema, so the answer layer never guesses key names.
HierarchyMap = Mapping[str, Tuple[Hierarchy, str]]


def attribute_extractor(
    view: ViewDefinition,
    attr: str,
    hierarchies: HierarchyMap,
) -> Extractor:
    """coords-of-view -> value of ``attr`` (direct or rolled up)."""
    if attr in view.group_by:
        idx = view.group_by.index(attr)
        return lambda coords, i=idx: coords[i]
    binding = hierarchies.get(attr)
    if binding is not None:
        hierarchy, source = binding
        if source in view.group_by:
            idx = view.group_by.index(source)
            return lambda coords, i=idx, h=hierarchy: h.roll_up(coords[i])
    raise QueryError(
        f"attribute {attr!r} is not derivable from view {view.name!r}"
    )


#: A pushed-down predicate: attr -> closed interval (equality is (v, v)).
Bounds = Dict[str, Tuple[int, int]]
#: A residual predicate: an extractor plus the interval it must land in.
Residual = Tuple[Extractor, int, int]


def split_bindings(
    view: ViewDefinition,
    query: SliceQuery,
    hierarchies: HierarchyMap,
) -> Tuple[Bounds, List[Residual]]:
    """Direct bounds (on view attributes) vs residual filters.

    A predicate on an attribute the view stores directly can be pushed
    into the physical access (Cubetree rectangle / B-tree prefix / row
    filter); a predicate on a hierarchy attribute of a finer view must be
    applied by rolling each match up.  Equality and range predicates are
    handled uniformly as closed intervals.
    """
    direct: Bounds = {}
    residual: List[Residual] = []
    for attr, (low, high) in query.bounds.items():
        if attr in view.group_by:
            direct[attr] = (low, high)
        else:
            residual.append(
                (attribute_extractor(view, attr, hierarchies), low, high)
            )
    return direct, residual


def finalize_matches(
    matches: Iterable[Match],
    view: ViewDefinition,
    query: SliceQuery,
    hierarchies: HierarchyMap,
    residual: List[Residual],
) -> List[Row]:
    """Aggregate matches to the query grouping and finalize the states."""
    group_extractors = [
        attribute_extractor(view, attr, hierarchies)
        for attr in query.group_by
    ]
    widths = view.state_widths
    funcs = [spec.func for spec in view.aggregates]

    groups: Dict[Tuple[int, ...], List[Tuple[float, ...]]] = {}
    for coords, values in matches:
        if any(
            not low <= extract(coords) <= high
            for extract, low, high in residual
        ):
            continue
        key = tuple(extract(coords) for extract in group_extractors)
        states: List[Tuple[float, ...]] = []
        offset = 0
        for width in widths:
            states.append(tuple(values[offset : offset + width]))
            offset += width
        existing = groups.get(key)
        if existing is None:
            groups[key] = states
        else:
            groups[key] = [
                combine_states(func, old, new)
                for func, old, new in zip(funcs, existing, states)
            ]

    rows: List[Row] = []
    for key in sorted(groups):
        finals = tuple(
            finalize_state(func, state)
            for func, state in zip(funcs, groups[key])
        )
        rows.append(key + finals)
    return rows


def finalize_fold(
    view: ViewDefinition,
    states: Optional[Sequence[Tuple[float, ...]]],
) -> List[Row]:
    """Finalize pushed-down aggregate states into answer rows.

    The counterpart of :func:`finalize_matches` for a total query (empty
    grouping, no residual) answered by aggregate pushdown: the engine
    already holds the slice's combined per-aggregate states, so the only
    remaining work is finalization.  ``None`` (no tuple matched) yields
    the same empty answer an empty match list would.
    """
    if states is None:
        return []
    funcs = [spec.func for spec in view.aggregates]
    return [
        tuple(
            finalize_state(func, state)
            for func, state in zip(funcs, states)
        )
    ]
