"""ConventionalEngine — materialized views as tables + B-trees.

The paper's baseline: the same selected views, materialized as relational
summary tables inside a 1998-style server and indexed with composite
B-trees.  The engine follows that server's physical discipline:

* **Loading** (Table 6): each view is computed with a separate statement —
  scan its smallest materialized parent *from disk*, sort, aggregate — and
  inserted through the transactional per-row path (WAL record + row-op
  overhead per tuple).  Indexes are then built with sort + bottom-up bulk
  load (the ``CREATE INDEX`` phase, the paper's "Indices" column).
* **Queries** (Fig. 12/13): route to the cheapest view/index, B-tree
  prefix descent, then fetch each qualifying row from the heap — the heap
  is clustered for at most one order, so two of the three composite
  indexes fetch scattered pages.
* **Refresh** (Table 7): per-tuple incremental maintenance (lookup +
  update/insert per delta group, through WAL and overhead), or full
  recomputation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.constants import DEFAULT_BUFFER_PAGES, ROW_OP_OVERHEAD_MS
from repro.btree.keys import INT64_MAX, INT64_MIN
from repro.core.answer import finalize_matches, split_bindings
from repro.core.reports import LoadReport, PhaseReport, UpdateReport
from repro.core.sorting import make_substrate_sorter
from repro.cube.computation import CubeComputation
from repro.cube.lattice import CubeLattice
from repro.errors import QueryError
from repro.query.result import QueryResult
from repro.query.router import AccessPath, QueryRouter
from repro.query.slice import SliceQuery
from repro.relational.catalog import Catalog
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.relational.view import MaterializedView, ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.codec import float_column, int_column
from repro.storage.disk import DiskManager
from repro.storage.wal import WriteAheadLog
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import StarSchema

Row = Tuple[object, ...]


class ConventionalEngine:
    """The relational-storage configuration of the experiments."""

    def __init__(
        self,
        schema: StarSchema,
        hierarchies: Optional[Mapping[str, Hierarchy]] = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        sort_chunk_rows: int = 100_000,
        disk: Optional[DiskManager] = None,
        row_op_overhead_ms: float = ROW_OP_OVERHEAD_MS,
    ) -> None:
        self.schema = schema
        self.disk = disk if disk is not None else DiskManager()
        self.pool = BufferPool(self.disk, capacity=buffer_pages)
        self.wal = WriteAheadLog(self.disk.cost_model)
        self.row_op_overhead_ms = row_op_overhead_ms
        self.computation = CubeComputation(
            schema,
            hierarchies,
            sorter=make_substrate_sorter(self.pool, sort_chunk_rows),
        )
        self.hierarchies: Dict[str, Tuple[Hierarchy, str]] = {}
        for attr, hierarchy in (hierarchies or {}).items():
            source = self.computation._source_key(hierarchy)
            self.hierarchies[attr] = (hierarchy, source)
        self.lattice = CubeLattice(
            schema.fact_keys,
            {attr: source for attr, (_h, source) in self.hierarchies.items()},
        )
        self.router = QueryRouter(
            self.lattice,
            {
                attr: float(schema.distinct_count(attr))
                for attr in schema.groupable_attributes()
            },
        )
        self.catalog = Catalog()
        self.fact_table: Optional[Table] = None
        self.views: Dict[str, MaterializedView] = {}
        self.index_keys: Dict[str, List[Tuple[str, ...]]] = {}

    # ------------------------------------------------------------------
    # fact data
    # ------------------------------------------------------------------
    def load_fact(self, fact_rows: Sequence[Row]) -> None:
        """Bulk-load the fact table F (common to both configurations, so
        excluded from the Table 6 timings)."""
        columns = [(attr, int_column()) for attr in self.schema.fact_keys]
        columns.extend(
            (measure, float_column()) for measure in self.schema.measures
        )
        self.fact_table = Table(
            self.pool, TableSchema("F", columns)  # type: ignore[arg-type]
        )
        self.fact_table.bulk_append(fact_rows)
        self.catalog.register_table(self.fact_table)
        self.pool.flush_all()

    # ------------------------------------------------------------------
    # loading (Table 6)
    # ------------------------------------------------------------------
    def materialize(
        self,
        views: Sequence[ViewDefinition],
        indexes: Optional[Mapping[str, Sequence[Sequence[str]]]] = None,
    ) -> LoadReport:
        """Materialize the views (per-row transactional path) and build
        the selected B-tree indexes (sort + bulk load)."""
        if self.fact_table is None:
            raise QueryError("load_fact must run before materialize")
        report = LoadReport()

        # -------------------------- views --------------------------
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()
        steps = self.computation.plan(views, len(self.fact_table))
        defs = {view.name: view for view in views}
        for step in steps:
            if step.parent is None:
                source = self.fact_table.scan_rows()
                state_rows = self.computation.compute_from_fact_rows(
                    source, step.view
                )
            else:
                parent_view = self.views[step.parent]
                state_rows = self.computation.compute_from_parent_rows(
                    parent_view.table.scan_rows(),
                    defs[step.parent],
                    step.view,
                )
            materialized = MaterializedView(self.pool, step.view)
            for row in state_rows:
                materialized.table.insert(row)
                self.wal.log_row_operation()
                self.disk.cost_model.record_overhead(self.row_op_overhead_ms)
            self.wal.commit()
            self.views[step.view.name] = materialized
            self.catalog.register_view(materialized)
            report.view_rows += len(materialized)
        self.pool.flush_all()
        report.phases["views"] = PhaseReport(
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
        )

        # -------------------------- indexes --------------------------
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()
        for view_name, keys in (indexes or {}).items():
            for key in keys:
                self.views[view_name].build_index(tuple(key))
                self.index_keys.setdefault(view_name, []).append(tuple(key))
        self.pool.flush_all()
        report.phases["indexes"] = PhaseReport(
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
        )

        report.pages = self.storage_pages()
        report.bytes_on_disk = self.storage_bytes()
        return report

    # ------------------------------------------------------------------
    # queries (Fig. 12 / 13)
    # ------------------------------------------------------------------
    def access_paths(self) -> List[AccessPath]:
        """Router inputs: each view with its B-tree search keys."""
        paths = []
        for name, view in sorted(self.views.items()):
            orders = tuple(self.index_keys.get(name, ()))
            paths.append(
                AccessPath(
                    view.definition,
                    float(len(view)),
                    orders,
                    rows_per_page=view.table.heap.slots_per_page,
                    # The summary table is written in computation output
                    # order — sorted by the view's own attribute order.
                    clustered=view.definition.group_by,
                )
            )
        return paths

    def query(self, query: SliceQuery) -> QueryResult:
        """Answer one slice query from the summary tables."""
        if not self.views:
            raise QueryError("engine has no materialized views yet")
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        decision = self.router.route(query, self.access_paths())
        view_def = decision.path.view
        view = self.views[view_def.name]
        direct, residual = split_bindings(view_def, query, self.hierarchies)

        arity = view_def.arity
        matches = []
        if decision.order is not None and decision.prefix:
            tree = view.indexes[decision.order]
            # Equality components pin both key bounds; a trailing range
            # component opens an interval; remaining positions are padded
            # to the int64 extremes.
            low_vals = [direct[attr][0] for attr in decision.prefix]
            high_vals = [direct[attr][1] for attr in decision.prefix]
            pad = len(decision.order) - len(decision.prefix)
            low = tuple(low_vals) + (INT64_MIN,) * pad
            high = tuple(high_vals) + (INT64_MAX,) * pad
            leftover = {
                attr: bounds
                for attr, bounds in direct.items()
                if attr not in decision.prefix
            }
            for _key, rid in tree.range_scan(low, high):
                row = view.table.fetch(rid)
                if self._row_matches(row, view_def, leftover):
                    matches.append(
                        (
                            tuple(int(v) for v in row[:arity]),  # type: ignore[arg-type]
                            tuple(float(v) for v in row[arity:]),  # type: ignore[arg-type]
                        )
                    )
        else:
            for row in view.table.scan_rows():
                if self._row_matches(row, view_def, direct):
                    matches.append(
                        (
                            tuple(int(v) for v in row[:arity]),  # type: ignore[arg-type]
                            tuple(float(v) for v in row[arity:]),  # type: ignore[arg-type]
                        )
                    )

        rows = finalize_matches(
            matches, view_def, query, self.hierarchies, residual
        )
        return QueryResult(
            rows=rows,
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
            plan=decision.describe(),
        )

    @staticmethod
    def _row_matches(
        row: Row, view: ViewDefinition, bounds: Mapping[str, tuple]
    ) -> bool:
        for attr, (low, high) in bounds.items():
            if not low <= row[view.group_by.index(attr)] <= high:  # type: ignore[operator]
                return False
        return True

    # ------------------------------------------------------------------
    # refresh (Table 7)
    # ------------------------------------------------------------------
    def update_incremental(
        self,
        fact_delta: Sequence[Row],
        deadline_ms: Optional[float] = None,
    ) -> UpdateReport:
        """Per-tuple incremental maintenance of every view.

        Raises :class:`~repro.errors.UpdateTimeoutError` if the simulated
        time exceeds ``deadline_ms`` — the paper's ">24 hours" outcome.
        """
        if not self.views:
            raise QueryError("engine has no materialized views yet")
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        base_defs = [view.definition for view in self.views.values()]
        deltas = self.computation.execute(fact_delta, base_defs)
        applied = 0
        for name, view in self.views.items():
            updated, inserted = view.apply_delta(
                deltas[name],
                cost_model=self.disk.cost_model,
                deadline_ms=deadline_ms,
                wal=self.wal,
                per_row_overhead_ms=self.row_op_overhead_ms,
            )
            self.wal.commit()
            applied += updated + inserted
        self.pool.flush_all()

        return UpdateReport(
            method="conventional incremental",
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
            rows_applied=applied,
        )

    def update_recompute(self, all_fact_rows: Sequence[Row]) -> UpdateReport:
        """Rebuild every view and index from scratch (the down-time
        alternative most 1998 warehouses used)."""
        if not self.views:
            raise QueryError("engine has no materialized views yet")
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        view_defs = [view.definition for view in self.views.values()]
        index_keys = dict(self.index_keys)
        # Drop old structures (their pages are not reclaimed — the paper's
        # servers also rebuilt into fresh segments before swapping).
        for name in list(self.views):
            self.catalog.drop_view(name)
        self.views = {}
        self.index_keys = {}
        # Reload the fact table image (the increment is already in F).
        self.catalog.drop_table("F")
        self.load_fact(all_fact_rows)
        report = self.materialize(view_defs, index_keys)

        return UpdateReport(
            method="conventional recompute",
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
            rows_applied=report.view_rows,
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def view_sizes(self) -> Dict[str, int]:
        """Tuple count per materialized view."""
        return {name: len(view) for name, view in self.views.items()}

    def storage_pages(self) -> int:
        """Pages of view data + view indexes (excludes F, as the paper's
        602 MB figure covers 'the views and their indices')."""
        return sum(
            view.data_pages + view.index_pages
            for view in self.views.values()
        )

    def storage_bytes(self) -> int:
        """Total bytes on disk (pages * PAGE_SIZE)."""
        from repro.constants import PAGE_SIZE

        return self.storage_pages() * PAGE_SIZE
