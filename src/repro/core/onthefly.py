"""OnTheFlyEngine — pure ROLAP with no materialized views.

The paper's introduction describes this configuration: "The Relational
OLAP approach starts off with the premise that OLAP queries can generate
the multidimensional projections on the fly without having to store and
maintain them ... Join and bit-map indices are used for speeding up the
joins", and motivates materialization with the query it cannot speed up:
"computing the sum of all sales from a fact table grouped by their region
would require (no less than) scanning the whole fact table."

This engine holds only the fact table plus:

* one join index (a B-tree) per foreign key, and
* one compressed bitmap index per hierarchy attribute,

and computes every aggregate at query time.  Refresh is trivially cheap
(append + index maintenance) — the flip side the paper acknowledges — but
queries pay for every aggregation, which is the comparison the
``benchmarks/test_baseline_no_materialization.py`` bench regenerates.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.btree.bulk import bulk_load_btree
from repro.btree.tree import BPlusTree
from repro.constants import DEFAULT_BUFFER_PAGES
from repro.core.reports import LoadReport, PhaseReport, UpdateReport
from repro.errors import QueryError
from repro.obs import get_registry
from repro.query.result import QueryResult
from repro.query.slice import SliceQuery
from repro.relational.bitmap import BitmapIndex
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.storage.buffer import BufferPool
from repro.storage.codec import float_column, int_column
from repro.storage.disk import DiskManager
from repro.storage.heap import RID
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import StarSchema

Row = Tuple[object, ...]

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_QUERIES = _REG.counter("query.onthefly.count")
_OBS_QUERY_SIM_MS = _REG.histogram("query.onthefly.simulated_ms")
_OBS_QUERY_WALL_MS = _REG.histogram("query.onthefly.wall_ms")


class OnTheFlyEngine:
    """The no-materialization ROLAP baseline (paper Sec. 1)."""

    def __init__(
        self,
        schema: StarSchema,
        hierarchies: Optional[Mapping[str, Hierarchy]] = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        disk: Optional[DiskManager] = None,
    ) -> None:
        self.schema = schema
        self.disk = disk if disk is not None else DiskManager()
        self.pool = BufferPool(self.disk, capacity=buffer_pages)
        self.hierarchies: Dict[str, Tuple[Hierarchy, str]] = {}
        for attr, hierarchy in (hierarchies or {}).items():
            for fact_key in schema.fact_keys:
                if schema.dimensions[fact_key].name == hierarchy.dimension:
                    self.hierarchies[attr] = (hierarchy, fact_key)
                    break
        self.fact_table: Optional[Table] = None
        self.join_indexes: Dict[str, BPlusTree] = {}
        self.bitmap_indexes: Dict[str, BitmapIndex] = {}
        self._rids: List[RID] = []

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_fact(self, fact_rows: Sequence[Row]) -> LoadReport:
        """Bulk-load F and build the join/bitmap indexes."""
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        columns = [(attr, int_column()) for attr in self.schema.fact_keys]
        columns.extend(
            (measure, float_column()) for measure in self.schema.measures
        )
        self.fact_table = Table(
            self.pool, TableSchema("F", columns)  # type: ignore[arg-type]
        )
        self._rids = self.fact_table.bulk_append(fact_rows)

        # Join indexes: B-tree per foreign key (Valduriez-style access).
        for position, attr in enumerate(self.schema.fact_keys):
            entries = sorted(
                ((int(row[position]),), rid)  # type: ignore[arg-type]
                for rid, row in zip(self._rids, fact_rows)
            )
            self.join_indexes[attr] = bulk_load_btree(self.pool, 1, entries)

        # Bitmap indexes for hierarchy attributes (low cardinality).
        for attr, (hierarchy, fact_key) in self.hierarchies.items():
            position = self.schema.fact_keys.index(fact_key)
            values = [
                hierarchy.roll_up(int(row[position]))  # type: ignore[arg-type]
                for row in fact_rows
            ]
            self.bitmap_indexes[attr] = BitmapIndex.build(self.pool, values)

        self.pool.flush_all()
        report = LoadReport()
        report.phases["fact+indexes"] = PhaseReport(
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
        )
        report.view_rows = len(fact_rows)
        report.pages = self.storage_pages()
        report.bytes_on_disk = self.storage_bytes()
        return report

    def append(self, fact_rows: Sequence[Row]) -> UpdateReport:
        """Refresh: append rows and maintain the indexes (the cheap side
        of the no-materialization trade-off)."""
        if self.fact_table is None:
            raise QueryError("load_fact must run first")
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()
        for row in fact_rows:
            rid = self.fact_table.insert(row)
            self._rids.append(rid)
            for position, attr in enumerate(self.schema.fact_keys):
                self.join_indexes[attr].insert(
                    (int(row[position]),), rid  # type: ignore[arg-type]
                )
        # Bitmap indexes are rebuilt lazily (standard practice: bitmaps
        # are append-unfriendly); here we rebuild eagerly for simplicity.
        for attr, (hierarchy, fact_key) in self.hierarchies.items():
            position = self.schema.fact_keys.index(fact_key)
            values = [
                hierarchy.roll_up(int(row[position]))  # type: ignore[arg-type]
                for row in self.fact_table.scan_rows()
            ]
            self.bitmap_indexes[attr] = BitmapIndex.build(self.pool, values)
        self.pool.flush_all()
        return UpdateReport(
            method="on-the-fly append",
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
            rows_applied=len(fact_rows),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, query: SliceQuery) -> QueryResult:
        """Aggregate the fact table on the fly."""
        if self.fact_table is None:
            raise QueryError("load_fact must run first")
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        bounds = query.bounds
        plan, rows = self._access(bounds)

        # Residual filtering + aggregation (sum of the measure).
        extractors = {}
        for attr in list(query.group_by) + list(bounds):
            extractors[attr] = self._extractor(attr)
        measure_idx = len(self.schema.fact_keys)

        groups: Dict[Tuple[int, ...], float] = {}
        for row in rows:
            ok = True
            for attr, (low, high) in bounds.items():
                if not low <= extractors[attr](row) <= high:
                    ok = False
                    break
            if not ok:
                continue
            key = tuple(extractors[attr](row) for attr in query.group_by)
            groups[key] = groups.get(key, 0.0) + float(row[measure_idx])  # type: ignore[arg-type]

        result_rows = [
            key + (total,) for key, total in sorted(groups.items())
        ]
        io = self.disk.cost_model.stats - io_start
        wall_ms = (time.perf_counter() - wall_start) * 1000.0
        _OBS_QUERIES.value += 1
        _OBS_QUERY_SIM_MS.observe(io.simulated_ms)
        _OBS_QUERY_WALL_MS.observe(wall_ms)
        return QueryResult(
            rows=result_rows,
            io=io,
            wall_ms=wall_ms,
            plan=plan,
        )

    # ------------------------------------------------------------------
    def _extractor(self, attr: str):
        if attr in self.schema.fact_keys:
            idx = self.schema.fact_keys.index(attr)
            return lambda row, i=idx: int(row[i])
        binding = self.hierarchies.get(attr)
        if binding is None:
            raise QueryError(f"unknown attribute {attr!r}")
        hierarchy, fact_key = binding
        idx = self.schema.fact_keys.index(fact_key)
        return lambda row, i=idx, h=hierarchy: h.roll_up(int(row[i]))

    def _access(self, bounds) -> Tuple[str, List[Row]]:
        """Pick the most selective single-attribute access path."""
        if self.fact_table is None:
            raise QueryError("load_fact must run first")
        best_attr = None
        best_kind = "scan"
        best_selectivity = 1.0
        for attr, (low, high) in bounds.items():
            width = high - low + 1
            if attr in self.join_indexes:
                distinct = float(self.schema.distinct_count(attr))
            elif attr in self.bitmap_indexes:
                distinct = float(
                    len(self.bitmap_indexes[attr].distinct_values()) or 1
                )
            else:
                continue
            selectivity = max(1.0, distinct / width)
            if selectivity > best_selectivity:
                best_selectivity = selectivity
                best_attr = attr
                best_kind = (
                    "join-index" if attr in self.join_indexes else "bitmap"
                )

        if best_attr is None:
            rows = list(self.fact_table.scan_rows())
            return "F (full scan)", rows

        low, high = bounds[best_attr]
        if best_kind == "join-index":
            tree = self.join_indexes[best_attr]
            rids = [rid for _k, rid in tree.range_scan((low,), (high,))]
        else:
            index = self.bitmap_indexes[best_attr]
            ordinals = index.ordinals_in_range(low, high)
            rids = [self._rids[o] for o in ordinals]
        rows = [self.fact_table.fetch(rid) for rid in rids]
        return f"F via {best_kind}({best_attr})", rows

    # ------------------------------------------------------------------
    def storage_pages(self) -> int:
        """Total pages owned by this engine's structures."""
        pages = self.fact_table.num_pages if self.fact_table else 0
        pages += sum(t.num_pages for t in self.join_indexes.values())
        pages += sum(b.num_pages for b in self.bitmap_indexes.values())
        return pages

    def storage_bytes(self) -> int:
        """Total bytes on disk (pages * PAGE_SIZE)."""
        from repro.constants import PAGE_SIZE

        return self.storage_pages() * PAGE_SIZE
