"""The Cubetree forest: every materialized view, one query surface."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.cubetree import Cubetree, prepare_packed_runs
from repro.core.extsort import build_memory_budget
from repro.core.mapping import CubetreeAllocation
from repro.errors import QueryError
from repro.parallel import MIN_PARALLEL_ROWS, run_tasks
from repro.query.router import AccessPath
from repro.relational.view import ViewDefinition
from repro.rtree.packing import PackedRun
from repro.storage.buffer import BufferPool

Row = Tuple[object, ...]


def _prepare_tree_runs(
    payload: Tuple[int, Tuple[ViewDefinition, ...], Dict[str, Sequence[Row]]],
) -> List[PackedRun]:
    """Worker body: packing-order run prep for one tree (pure CPU)."""
    dims, views, data = payload
    return prepare_packed_runs(dims, views, data)


class CubetreeForest:
    """The collection of Cubetrees produced by SelectMapping."""

    def __init__(
        self, pool: BufferPool, allocation: CubetreeAllocation
    ) -> None:
        self.pool = pool
        self.allocation = allocation
        self.cubetrees: List[Cubetree] = [
            Cubetree(pool, assignment.dims, assignment.views)
            for assignment in allocation.trees
        ]
        self._view_tree: Dict[str, int] = {}
        for i, assignment in enumerate(allocation.trees):
            for view in assignment.views:
                self._view_tree[view.name] = i
        self._sizes: Dict[str, int] | None = None
        self._paths: List[AccessPath] | None = None

    # ------------------------------------------------------------------
    def view_names(self) -> List[str]:
        """Every view in the forest, sorted."""
        return sorted(self._view_tree)

    def view_definition(self, view_name: str) -> ViewDefinition:
        """Definition of a view by name."""
        tree = self._tree_for(view_name)
        for view in tree.views:
            if view.name == view_name:
                return view
        raise QueryError(f"unknown view {view_name!r}")  # pragma: no cover

    def tree_dims(self, view_name: str) -> int:
        """Dimensionality of the Cubetree holding a view (its sort width)."""
        return self._tree_for(view_name).dims

    def run_leaf_count(self, view_name: str) -> int | None:
        """Leaves in the view's packed run (None when no extent exists)."""
        return self._tree_for(view_name).run_leaf_count(view_name)

    def build(
        self, data: Mapping[str, Sequence[Row]], workers: int = 1
    ) -> None:
        """Bulk-load every tree from the computed view data.

        With ``workers > 1`` (and enough rows to amortize the pool
        round-trip) the packing-order run preparation (row coercion +
        sort, pure CPU) fans out one tree per worker; the
        packs themselves — everything that touches the buffer pool and
        charges simulated I/O — still run serially in tree order, so the
        I/O trace is identical to the serial build.

        A configured build-memory budget (``REPRO_BUILD_MEMORY``) takes
        precedence over the worker fan-out: materializing whole sorted
        runs in workers would defeat the bound, so each tree streams
        through its bounded external sort serially instead.
        """
        missing = set(self._view_tree) - set(data)
        if missing:
            raise QueryError(f"no data for views {sorted(missing)}")
        if (
            workers > 1
            and len(self.cubetrees) > 1
            and self._total_rows(data) >= MIN_PARALLEL_ROWS
            and build_memory_budget() is None
        ):
            runs_per_tree = run_tasks(
                _prepare_tree_runs,
                [self._prep_payload(tree, data) for tree in self.cubetrees],
                workers,
            )
            for tree, runs in zip(self.cubetrees, runs_per_tree):
                tree.build_from_runs(runs)
        else:
            for tree in self.cubetrees:
                tree.build(data)
        self._sizes = {name: len(rows) for name, rows in data.items()}
        self._paths = None

    def update(
        self, deltas: Mapping[str, Sequence[Row]], workers: int = 1
    ) -> None:
        """Merge-pack deltas into every tree that has any.

        As in :meth:`build`, ``workers > 1`` parallelizes only the
        pure-CPU delta-run preparation; each tree's merge-pack I/O runs
        serially in tree order.
        """
        touched = [
            tree
            for tree in self.cubetrees
            if any(view.name in deltas for view in tree.views)
        ]
        if (
            workers > 1
            and len(touched) > 1
            and self._total_rows(deltas) >= MIN_PARALLEL_ROWS
        ):
            runs_per_tree = run_tasks(
                _prepare_tree_runs,
                [self._prep_payload(tree, deltas) for tree in touched],
                workers,
            )
            for tree, runs in zip(touched, runs_per_tree):
                tree.update_from_runs(runs)
        else:
            for tree in touched:
                relevant = {
                    view.name: deltas[view.name]
                    for view in tree.views
                    if view.name in deltas
                }
                tree.update(relevant)
        self._sizes = None  # recounted lazily on the next routing request
        self._paths = None

    def _total_rows(self, data: Mapping[str, Sequence[Row]]) -> int:
        """Rows this forest would prepare — the fan-out worthwhileness."""
        return sum(
            len(data[name]) for name in self._view_tree if name in data
        )

    @staticmethod
    def _prep_payload(
        tree: Cubetree, data: Mapping[str, Sequence[Row]]
    ) -> Tuple[int, Tuple[ViewDefinition, ...], Dict[str, Sequence[Row]]]:
        relevant = {
            view.name: data[view.name]
            for view in tree.views
            if view.name in data
        }
        return tree.dims, tree.views, relevant

    # ------------------------------------------------------------------
    # checkpoint restore
    # ------------------------------------------------------------------
    def restore_tree_states(self, states: Sequence[Mapping]) -> None:
        """Adopt saved per-tree root/leaf/ownership state, strictly.

        One state per Cubetree, in allocation order.  A count mismatch
        means the catalog and the allocation disagree (a torn or edited
        checkpoint), so it raises instead of zip-truncating.
        """
        if len(states) != len(self.cubetrees):
            raise ValueError(
                f"{len(states)} saved tree state(s) for a forest of "
                f"{len(self.cubetrees)} cubetree(s)"
            )
        for tree, state in zip(self.cubetrees, states):
            tree.tree.root_page_id = int(state["root_page_id"])
            tree.tree.height = int(state["height"])
            tree.tree.count = int(state["count"])
            tree.tree.leaf_page_ids = [int(p) for p in state["leaf_page_ids"]]
            tree.tree.owned_page_ids = [
                int(p) for p in state["owned_page_ids"]
            ]
            # Checkpoints written before leaf-run extents existed simply
            # lack the key; such trees fall back to the interior descent.
            tree.tree.view_extents = {
                int(view_id): (int(first), int(last))
                for view_id, (first, last) in state.get(
                    "view_extents", {}
                ).items()
            }
        self._paths = None

    def adopt_sizes(self, data: Mapping[str, Sequence[Row]]) -> None:
        """Record tuple counts after an externally driven bulk build.

        The sharded engine packs trees via :meth:`Cubetree.build` /
        ``build_from_runs`` directly (one worker fan-out across every
        shard's trees), then adopts the row counts here — the same
        bookkeeping :meth:`build` does for its own trees.
        """
        self._sizes = {name: len(rows) for name, rows in data.items()}
        self._paths = None

    def invalidate_stats(self) -> None:
        """Drop cached sizes/paths after an externally driven merge-pack."""
        self._sizes = None
        self._paths = None

    def set_view_sizes(self, sizes: Mapping[str, int]) -> None:
        """Adopt saved tuple counts; keys must match the allocation exactly."""
        known = set(self._view_tree)
        unknown = sorted(set(sizes) - known)
        missing = sorted(known - set(sizes))
        if unknown or missing:
            raise ValueError(
                f"view sizes disagree with the allocation: "
                f"unknown {unknown}, missing {missing}"
            )
        self._sizes = {str(name): int(size) for name, size in sizes.items()}
        self._paths = None

    def query_view(
        self,
        view_name: str,
        bindings: Mapping[str, int],
        fast: bool = False,
    ) -> Iterator[Tuple[Tuple[int, ...], Tuple[float, ...]]]:
        """Slice one view (see Cubetree.query)."""
        return self._tree_for(view_name).query(view_name, bindings, fast=fast)

    def query_view_aggregate(
        self, view_name: str, bindings: Mapping[str, int]
    ) -> Optional[Tuple[Tuple[float, ...], ...]]:
        """Fold one slice into combined per-aggregate states
        (see Cubetree.query_aggregate)."""
        return self._tree_for(view_name).query_aggregate(view_name, bindings)

    def query_view_group(
        self,
        view_name: str,
        bindings_list: Sequence[Mapping[str, int]],
        fold: Optional[Sequence[bool]] = None,
    ) -> List[object]:
        """Answer several slices of one view in one shared run pass
        (see Cubetree.query_group)."""
        return self._tree_for(view_name).query_group(
            view_name, bindings_list, fold=fold
        )

    def has_run(self, view_name: str) -> bool:
        """True when the view's leaf-run extent is recorded."""
        return self._tree_for(view_name).has_run(view_name)

    def protect_index_pages(self) -> int:
        """Shelter every interior/root page from scan-driven eviction.

        Fast run scans flow through the pool's probationary segment, but
        the descent pages they bypass are still the hot set for any
        residual classic searches; protecting them keeps the paper's
        "top-level pages stay resident" property under scan pressure.
        Returns the number of protected page ids.
        """
        protected = 0
        for tree in self.cubetrees:
            leaves = set(tree.tree.leaf_page_ids)
            for page_id in tree.tree.owned_page_ids:
                if page_id not in leaves:
                    self.pool.protect_page(page_id)
                    protected += 1
        return protected

    # ------------------------------------------------------------------
    def access_paths(self) -> List[AccessPath]:
        """Router inputs: each view with its Cubetree sort order.

        A view mapped with coordinate order ``(a1..ak)`` is packed sorted
        by ``(ak, ..., a1)``, so that reversed order is the view's
        clustering order — the Cubetree analogue of a B-tree search key.
        """
        if self._paths is None:
            from repro.rtree.node import leaf_capacity

            sizes = self.view_sizes()
            paths = []
            for name in self.view_names():
                view = self.view_definition(name)
                order = tuple(reversed(view.group_by))
                tree = self._tree_for(name)
                paths.append(
                    AccessPath(
                        view,
                        float(sizes[name]),
                        (order,),
                        rows_per_page=leaf_capacity(
                            view.arity, view.total_state_width
                        ),
                        clustered=order,
                        run_leaves=tree.run_leaf_count(name),
                    )
                )
            self._paths = paths
        return self._paths

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def view_sizes(self) -> Dict[str, int]:
        """Tuple count per view (cached; a leaf-chain pass when stale)."""
        if self._sizes is None:
            sizes: Dict[str, int] = {}
            for tree in self.cubetrees:
                sizes.update(tree.view_sizes())
            self._sizes = sizes
        return dict(self._sizes)

    @property
    def num_trees(self) -> int:
        """Number of Cubetrees in the forest."""
        return len(self.cubetrees)

    @property
    def num_pages(self) -> int:
        """Number of pages this structure occupies."""
        return sum(tree.num_pages for tree in self.cubetrees)

    def leaf_utilization(self) -> float:
        """Average leaf fill fraction (1.0 = packed full)."""
        utils = [
            tree.leaf_utilization() for tree in self.cubetrees if len(tree)
        ]
        return sum(utils) / len(utils) if utils else 0.0

    # ------------------------------------------------------------------
    def _tree_for(self, view_name: str) -> Cubetree:
        try:
            return self.cubetrees[self._view_tree[view_name]]
        except KeyError:
            raise QueryError(f"unknown view {view_name!r}") from None
