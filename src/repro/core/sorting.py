"""Substrate-backed sorting for the engines.

Both configurations sort through the same external-sort machinery and the
same buffer pool, so the sort cost of computing the views is charged
identically — the paper's point that the Cubetree sort "can be hardly
considered as an overhead, since sorting is at the same time used for
computing the views" (Sec. 3.2).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.relational.executor import external_sort
from repro.storage.buffer import BufferPool
from repro.storage.codec import RecordCodec, float_column, int_column

Row = Tuple[object, ...]
Sorter = Callable[[List[Row], Callable[[Row], Tuple]], List[Row]]


def _codec_for(row: Row) -> RecordCodec:
    columns = []
    for value in row:
        if isinstance(value, bool):
            raise TypeError("boolean columns are not sortable rows")
        if isinstance(value, int):
            columns.append(int_column())
        elif isinstance(value, float):
            columns.append(float_column())
        else:
            raise TypeError(
                f"cannot infer sort codec for value {value!r}"
            )
    return RecordCodec(columns)


def make_substrate_sorter(
    pool: BufferPool, chunk_rows: int = 100_000
) -> Sorter:
    """A ``sorter(rows, key)`` that spills runs through the buffer pool.

    Inputs that fit into one chunk are sorted in memory (no I/O charged),
    mirroring a real sort operator with a memory budget.
    """

    def sorter(rows: Sequence[Row], key) -> List[Row]:
        # List inputs are sorted in place — every caller hands over a
        # freshly-projected list, so skipping the defensive copy is safe
        # and halves the allocation traffic of the hot compute path.
        if not isinstance(rows, list):
            rows = list(rows)
        if len(rows) <= chunk_rows:
            rows.sort(key=key)
            return rows
        codec = _codec_for(rows[0])
        return list(
            external_sort(pool, codec, rows, key, chunk_rows=chunk_rows)
        )

    return sorter
