"""Multi-sort-order replication of a view.

"The packing algorithm that is implemented by the Cubetree Datablade
provides a data replication scheme, where selected views are stored in
multiple sort-orders, to further enhance the performance" (Sec. 3).  The
paper replicates the apex view ``V{p,s,c}`` as ``V{s,c,p}`` and
``V{c,p,s}`` to compensate for the conventional configuration's three
composite B-tree indexes.

A replica is simply the same view with a permuted projection list: under
the valid mapping the permutation changes the coordinate order, hence the
packing sort order, hence which bound-attribute prefixes cluster well.
Replicas have the same arity as the original, so SelectMapping naturally
places each one in a different Cubetree.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MappingError
from repro.relational.view import ViewDefinition


def replica_name(base: ViewDefinition, order: Sequence[str]) -> str:
    """Deterministic name for a replica, e.g. ``V_psc__rep_suppkey_custkey_partkey``."""
    return f"{base.name}__rep_{'_'.join(order)}"


def replica_definition(
    base: ViewDefinition, order: Sequence[str]
) -> ViewDefinition:
    """A replica of ``base`` stored in a different attribute order."""
    if sorted(order) != sorted(base.group_by):
        raise MappingError(
            f"replica order {tuple(order)} is not a permutation of "
            f"{base.group_by}"
        )
    if tuple(order) == base.group_by:
        raise MappingError("replica order equals the base view's order")
    return ViewDefinition(
        replica_name(base, order), tuple(order), aggregates=base.aggregates
    )


def permute_state_rows(
    base: ViewDefinition, rows: Sequence[tuple], order: Sequence[str]
):
    """Reorder the group columns of state rows to a replica's order."""
    positions = [base.group_by.index(attr) for attr in order]
    arity = base.arity
    for row in rows:
        yield tuple(row[i] for i in positions) + tuple(row[arity:])
