"""The view advisor: from schema + statistics to a ready configuration.

The paper's workflow is manual: run GHRU 1-greedy over the lattice, read
off the views and indexes, translate the index set into replica sort
orders for the Cubetree side.  The advisor automates exactly that, so a
downstream user can go from a star schema to both engine configurations in
one call::

    advice = advise(schema, num_facts=len(facts))
    engine = CubetreeEngine(schema)
    engine.materialize(advice.views, facts, replicate=advice.replicas)

The replica derivation mirrors Sec. 3: for every *selected index* on a
view whose key order differs from an order the Cubetree side already
clusters by, add a replica stored in the reversed key order (a Cubetree
packed in coordinate order ``reversed(key)`` clusters exactly like a
B-tree on ``key``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.cube.lattice import CubeLattice
from repro.cube.selection import GreedySelection, select_views_and_indexes
from repro.relational.view import ViewDefinition
from repro.warehouse.star import StarSchema


@dataclass
class Advice:
    """A complete materialization plan for both storage organizations."""

    views: List[ViewDefinition] = field(default_factory=list)
    #: view name -> B-tree search keys (conventional configuration).
    indexes: Dict[str, List[Tuple[str, ...]]] = field(default_factory=dict)
    #: view name -> replica attribute orders (Cubetree configuration).
    replicas: Dict[str, List[Tuple[str, ...]]] = field(default_factory=dict)
    selection: Optional[GreedySelection] = None

    def view_named(self, name: str) -> ViewDefinition:
        """Look up a planned view by name."""
        for view in self.views:
            if view.name == name:
                return view
        raise KeyError(name)


def _view_name(attrs: Tuple[str, ...]) -> str:
    if not attrs:
        return "V_none"
    return "V_" + "_".join(attrs)


def advise(
    schema: StarSchema,
    num_facts: int,
    space_budget_tuples: Optional[float] = None,
    max_structures: Optional[int] = None,
    correlated_domains: Optional[Mapping[FrozenSet[str], float]] = None,
) -> Advice:
    """Run selection and translate the result for both engines.

    Parameters mirror
    :func:`repro.cube.selection.select_views_and_indexes`; statistics come
    from the schema's dimension tables.
    """
    lattice = CubeLattice(schema.fact_keys)
    distinct = {
        attr: float(schema.distinct_count(attr))
        for attr in schema.fact_keys
    }
    selection = select_views_and_indexes(
        lattice,
        distinct,
        num_facts,
        space_budget_tuples=space_budget_tuples,
        max_structures=max_structures,
        correlated_domains=correlated_domains,
    )

    advice = Advice(selection=selection)
    names: Dict[FrozenSet[str], str] = {}
    for attrs in selection.views:
        name = _view_name(attrs)
        names[frozenset(attrs)] = name
        advice.views.append(ViewDefinition(name, tuple(attrs)))

    for key in selection.indexes:
        owner = names.get(frozenset(key))
        if owner is None:  # pragma: no cover - selection guarantees views
            continue
        advice.indexes.setdefault(owner, []).append(tuple(key))
        # Cubetree equivalent: a replica packed in reversed key order
        # clusters like the B-tree — unless the base view already does.
        base = advice.view_named(owner)
        replica_order = tuple(reversed(key))
        existing = {base.group_by}
        existing.update(
            tuple(o) for o in advice.replicas.get(owner, [])
        )
        if replica_order not in existing:
            advice.replicas.setdefault(owner, []).append(replica_order)

    return advice
