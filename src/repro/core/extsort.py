"""Bounded-memory external merge sort for streaming bulk loads.

The classic pack (:func:`repro.rtree.packing.pack_rtree`) materializes
and sorts every view's rows in memory before a single leaf is written,
so peak memory grows with the scale factor.  This module provides the
out-of-core alternative the streaming build path uses:

* :class:`ExternalRunSorter` buffers at most ``max_buffered`` entries;
  a full buffer is sorted and *spilled* to an anonymous temp file as a
  sequence of pickled chunks (host scratch space — deliberately outside
  the simulated I/O cost model, which prices only the database pages).
* :meth:`ExternalRunSorter.stream` merges the spilled runs with the
  final buffer via :func:`heapq.merge`, yielding the entries in sort
  order while holding one chunk per run in memory.

The budget is expressed in *entries* (a ``(point, values)`` pair each)
and comes from the ``REPRO_BUILD_MEMORY`` environment variable —
optionally with a ``k``/``m`` suffix — or a
:func:`set_build_memory` override.  When no budget is configured,
:func:`build_memory_budget` returns None and bulk loads take the
classic in-memory path, byte-for-byte identical to before.
"""

from __future__ import annotations

import heapq
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import (
    BinaryIO,
    Callable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.obs import get_registry

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_SPILL_RUNS = _REG.counter("extsort.spilled_runs")
_OBS_SPILL_ENTRIES = _REG.counter("extsort.spilled_entries")
_OBS_PEAK_BUFFERED = _REG.counter("extsort.peak_buffered")

Point = Tuple[int, ...]
Values = Tuple[float, ...]
Entry = Tuple[Point, Values]
SortKey = Callable[[Entry], Tuple[int, ...]]

#: Entries per pickled spill chunk: readers hold at most one chunk per
#: spill run, keeping merge-side memory bounded too.
_SPILL_CHUNK = 512

_BUILD_MEMORY: Optional[int] = None  # repro: worker-local


def set_build_memory(budget: Optional[int]) -> None:
    """Override the streaming-build budget (max buffered entries).

    ``None`` falls back to the ``REPRO_BUILD_MEMORY`` environment gate;
    a positive integer forces the streaming path with that budget.
    """
    global _BUILD_MEMORY
    if budget is not None and budget < 1:
        raise ValueError(f"build memory budget must be >= 1, got {budget}")
    _BUILD_MEMORY = budget


def build_memory_budget() -> Optional[int]:
    """The configured streaming-build budget, or None (classic path)."""
    if _BUILD_MEMORY is not None:
        return _BUILD_MEMORY
    raw = os.environ.get("REPRO_BUILD_MEMORY", "").strip().lower()
    if not raw or raw in ("0", "off", "none"):
        return None
    scale = 1
    if raw.endswith("k"):
        scale, raw = 1_000, raw[:-1]
    elif raw.endswith("m"):
        scale, raw = 1_000_000, raw[:-1]
    try:
        value = int(raw) * scale
    except ValueError as exc:
        raise ValueError(
            f"REPRO_BUILD_MEMORY must be an entry count (optionally with "
            f"a k/m suffix), got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(
            f"REPRO_BUILD_MEMORY must be >= 1 entries, got {value}"
        )
    return value


@dataclass
class StreamBuildReport:
    """Accounting of one streaming bulk load (for the memory-cap check)."""

    budget: int
    entries: int = 0
    peak_buffered: int = 0
    spill_runs: int = 0
    spilled_entries: int = 0

    def within_budget(self) -> bool:
        """True when the sorter never buffered more than the budget."""
        return self.peak_buffered <= self.budget


class ExternalRunSorter:
    """Sorts an unbounded entry stream with a bounded in-memory buffer.

    ``add`` entries, then consume :meth:`stream` exactly once; the
    temp-file spill runs are released when the stream is exhausted (or
    explicitly via :meth:`close`).
    """

    def __init__(self, key: SortKey, max_buffered: int) -> None:
        if max_buffered < 1:
            raise ValueError(
                f"max_buffered must be >= 1, got {max_buffered}"
            )
        self._key = key
        self._max = max_buffered
        self._buffer: List[Entry] = []
        self._spills: List[BinaryIO] = []
        #: Monotone stats — they survive :meth:`close`.
        self.peak_buffered = 0
        self.spill_runs = 0
        self.spilled_entries = 0
        self.entries = 0

    def add(self, entry: Entry) -> None:
        """Buffer one entry, spilling a sorted run when the buffer fills."""
        self._buffer.append(entry)
        self.entries += 1
        if len(self._buffer) > self.peak_buffered:
            self.peak_buffered = len(self._buffer)
        if len(self._buffer) >= self._max:
            self._spill()

    def _spill(self) -> None:
        self._buffer.sort(key=self._key)
        handle = tempfile.TemporaryFile()
        chunk = max(1, min(_SPILL_CHUNK, self._max))
        for i in range(0, len(self._buffer), chunk):
            pickle.dump(
                self._buffer[i : i + chunk],
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        handle.flush()
        self._spills.append(handle)
        self.spill_runs += 1
        self.spilled_entries += len(self._buffer)
        _OBS_SPILL_RUNS.value += 1
        _OBS_SPILL_ENTRIES.value += len(self._buffer)
        self._buffer = []

    def stream(self) -> Iterator[Entry]:
        """Yield every added entry in sort order, then free the spills."""
        self._buffer.sort(key=self._key)
        _OBS_PEAK_BUFFERED.value = max(
            _OBS_PEAK_BUFFERED.value, self.peak_buffered
        )
        try:
            if not self._spills:
                yield from self._buffer
                return
            runs: List[Iterator[Entry]] = [
                self._read_spill(handle) for handle in self._spills
            ]
            runs.append(iter(self._buffer))
            yield from heapq.merge(*runs, key=self._key)
        finally:
            self.close()

    @staticmethod
    def _read_spill(handle: BinaryIO) -> Iterator[Entry]:
        handle.seek(0)
        while True:
            try:
                chunk = pickle.load(handle)
            except EOFError:
                return
            yield from chunk

    def close(self) -> None:
        """Release the spill files and the buffer."""
        for handle in self._spills:
            try:
                handle.close()
            except OSError:  # pragma: no cover - temp-file teardown
                pass
        self._spills = []
        self._buffer = []
