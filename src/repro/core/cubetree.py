"""One Cubetree: a packed, compressed R-tree holding one view per arity.

Under the valid mapping (Sec. 2.2), a tuple of view ``V{a1..ak}`` becomes
the point ``(a1, ..., ak, 0, ..., 0)`` in the tree's d-dimensional space;
its aggregate states are the point's content.  Within a tree the view id
stored on each leaf is simply the view's arity — SelectMapping guarantees
at most one view per arity per tree, and the id is then stable across
merge-packs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.fsck import check_cubetree, debug_checks_enabled
from repro.btree.keys import INT64_MAX
from repro.core.extsort import (
    ExternalRunSorter,
    StreamBuildReport,
    build_memory_budget,
)
from repro.errors import IntegrityError, MappingError, QueryError
from repro.obs import trace
from repro.relational.executor import AggFunc, combine_states
from repro.relational.view import ViewDefinition
from repro.rtree.geometry import Rect
from repro.rtree.kernels import FoldAccumulator
from repro.rtree.merge import merge_pack
from repro.rtree.packing import (
    PackedRun,
    RunStream,
    pack_rtree,
    pack_rtree_stream,
    sort_key,
)
from repro.rtree.tree import RTree, RunKey
from repro.storage.buffer import BufferPool

Row = Tuple[object, ...]
Values = Tuple[float, ...]


@dataclass(frozen=True)
class SliceSpec:
    """A compiled slice over one view: the Fig. 4 query rectangle plus
    the run-key prefix bounds the packed-run fast path can seek with.

    ``lo_key``/``hi_key`` bound the longest leading prefix of the run's
    sort order (``reversed(group_by)``) made of equality bindings,
    optionally closed by a single range binding; empty tuples mean the
    query has no usable prefix and a fast scan covers the whole run.
    """

    view: ViewDefinition
    rect: Rect
    lo_key: RunKey
    hi_key: RunKey


@dataclass(frozen=True)
class FoldedSlice:
    """A slice answered by aggregate pushdown: per-aggregate combined
    states instead of a match list (``None`` when nothing matched)."""

    states: Optional[Tuple[Values, ...]]


def fold_reducers(view: ViewDefinition) -> Tuple[str, ...]:
    """Per-flattened-state-component reducer tags for a view.

    Mirrors :func:`repro.relational.executor.combine_states` applied
    pairwise: MIN/MAX components reduce by ``min``/``max``, every other
    component (SUM, COUNT, both AVG halves) by addition.
    """
    tags: List[str] = []
    for spec, width in zip(view.aggregates, view.state_widths):
        if spec.func is AggFunc.MIN:
            tags.append("min")
        elif spec.func is AggFunc.MAX:
            tags.append("max")
        else:
            tags.extend(["add"] * width)
    return tuple(tags)


def prepare_packed_runs(
    dims: int,
    views: Sequence[ViewDefinition],
    data: Mapping[str, Sequence[Row]],
) -> List[PackedRun]:
    """Convert per-view state rows into packing-order runs (pure CPU).

    This is the compute-heavy half of a build/merge-pack — coordinate and
    value coercion plus the packing-order sort — and touches no storage,
    so the forest can run it for several trees in worker processes while
    the actual (simulated-I/O-charging) pack stays serial in the parent.
    """
    runs: List[PackedRun] = []
    for view in sorted(views, key=lambda v: v.arity):
        rows = data.get(view.name)
        if rows is None:
            continue
        arity = view.arity
        entries = [
            (
                tuple(int(value) for value in row[:arity]),
                tuple(float(value) for value in row[arity:]),
            )
            for row in rows
        ]
        entries.sort(key=lambda e: sort_key(e[0], dims))
        runs.append(PackedRun(arity, arity, view.total_state_width, entries))
    return runs


class Cubetree:
    """A packed R-tree materializing a set of views of distinct arities.

    Parameters
    ----------
    pool:
        Shared buffer pool.
    dims:
        Dimensionality (>= the largest view arity).
    views:
        The views this tree holds; at most one per arity.
    """

    def __init__(
        self,
        pool: BufferPool,
        dims: int,
        views: Sequence[ViewDefinition],
    ) -> None:
        self.pool = pool
        self.dims = dims
        self.views: Tuple[ViewDefinition, ...] = tuple(views)
        arities = [view.arity for view in self.views]
        if len(set(arities)) != len(arities):
            raise MappingError("a Cubetree holds at most one view per arity")
        if arities and max(arities) > dims:
            raise MappingError(
                f"view arity {max(arities)} exceeds tree dimensionality {dims}"
            )
        self._by_arity: Dict[int, ViewDefinition] = {
            view.arity: view for view in self.views
        }
        self._by_name: Dict[str, ViewDefinition] = {
            view.name: view for view in self.views
        }
        self.tree = RTree(pool, dims)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def build(self, data: Mapping[str, Sequence[Row]]) -> None:
        """Bulk-load from per-view state rows (sorted or not).

        ``data`` maps view names to state rows (group values + aggregate
        states).  Rows are re-sorted into packing order and streamed into
        a freshly packed tree.

        When a build-memory budget is configured (``REPRO_BUILD_MEMORY``
        or :func:`repro.core.extsort.set_build_memory`), the load runs
        through the bounded-memory streaming path instead of
        materializing every sorted run up front.
        """
        with trace("cubetree.build", views=len(self.views)):
            budget = build_memory_budget()
            if budget is not None:
                self.build_streaming(data, budget)
                return
            runs = self._runs_from(data)
            self.build_from_runs(runs)

    def build_from_runs(self, runs: Sequence[PackedRun]) -> None:
        """Bulk-load from already-prepared packing-order runs."""
        self.tree = pack_rtree(self.pool, self.dims, list(runs))
        self._debug_verify("Cubetree.build")

    def build_streaming(
        self,
        data: Mapping[str, Sequence[Row]],
        max_buffered: Optional[int] = None,
    ) -> StreamBuildReport:
        """Bulk-load with a bounded sort buffer (generator -> external
        merge sort -> packer).

        Each view's rows flow through an :class:`ExternalRunSorter`
        holding at most ``max_buffered`` entries — overflow spills to
        temp heap files on host scratch — and the sorted stream feeds
        the packer one entry at a time.  The streams are lazy and the
        packer drains them in arity order, so only one view's sorter is
        live at any moment.  Produces the identical tree (same pages,
        same simulated I/O) as :meth:`build`.
        """
        budget = (
            max_buffered if max_buffered is not None else build_memory_budget()
        )
        if budget is None:
            raise ValueError(
                "build_streaming needs a memory budget: pass max_buffered "
                "or set REPRO_BUILD_MEMORY"
            )
        with trace("cubetree.build_stream", views=len(self.views)):
            report = StreamBuildReport(budget=budget)
            streams: List[RunStream] = []
            for view in sorted(self.views, key=lambda v: v.arity):
                rows = data.get(view.name)
                if rows is None:
                    continue
                streams.append(
                    (
                        view.arity,
                        view.arity,
                        view.total_state_width,
                        self._sorted_entry_stream(view, rows, budget, report),
                    )
                )
            self.tree = pack_rtree_stream(self.pool, self.dims, streams)
            self._debug_verify("Cubetree.build_streaming")
            return report

    def _sorted_entry_stream(
        self,
        view: ViewDefinition,
        rows: Sequence[Row],
        budget: int,
        report: StreamBuildReport,
    ) -> Iterator[Tuple[Tuple[int, ...], Values]]:
        """Lazily coerce, external-sort and stream one view's rows."""
        sorter = ExternalRunSorter(
            key=lambda entry: sort_key(entry[0], self.dims),
            max_buffered=budget,
        )
        arity = view.arity
        try:
            for row in rows:
                sorter.add(
                    (
                        tuple(int(value) for value in row[:arity]),
                        tuple(float(value) for value in row[arity:]),
                    )
                )
            yield from sorter.stream()
        finally:
            report.entries += sorter.entries
            report.peak_buffered = max(
                report.peak_buffered, sorter.peak_buffered
            )
            report.spill_runs += sorter.spill_runs
            report.spilled_entries += sorter.spilled_entries
            sorter.close()

    def update(self, deltas: Mapping[str, Sequence[Row]]) -> None:
        """Merge-pack a sorted delta into the tree (Fig. 15)."""
        with trace("cubetree.update", views=len(self.views)):
            runs = self._runs_from(deltas)
            self.update_from_runs(runs)

    def update_from_runs(self, runs: Sequence[PackedRun]) -> None:
        """Merge-pack already-prepared packing-order delta runs."""
        self.tree = merge_pack(
            self.pool, self.dims, self.tree, list(runs), combine=self._combine
        )
        self._debug_verify("Cubetree.update")

    def _debug_verify(self, context: str) -> None:
        """Post-condition fsck behind the ``REPRO_DEBUG_CHECKS`` flag."""
        if not debug_checks_enabled():
            return
        report = check_cubetree(self)
        if not report.ok:
            raise IntegrityError(f"{context}: {report.format()}")

    def _runs_from(self, data: Mapping[str, Sequence[Row]]) -> List[PackedRun]:
        return prepare_packed_runs(self.dims, self.views, data)

    def _combine(self, view_id: int, old: Values, delta: Values) -> Values:
        view = self._by_arity.get(view_id)
        if view is None:
            raise MappingError(f"no view of arity {view_id} in this tree")
        out: List[float] = []
        offset = 0
        for spec, width in zip(view.aggregates, view.state_widths):
            merged = combine_states(
                spec.func,
                old[offset : offset + width],
                delta[offset : offset + width],
            )
            out.extend(merged)
            offset += width
        return tuple(out)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def slice_spec(
        self, view_name: str, bindings: Mapping[str, object]
    ) -> SliceSpec:
        """Compile a slice into its query rectangle and run-key bounds.

        Builds the query rectangle of Fig. 4: bound attributes become
        degenerate or closed ranges, open attributes span the positive
        axis, and the padding dimensions are pinned to zero so no other
        view's region is touched.  Each binding value is either an int
        (equality) or a ``(low, high)`` interval — R-trees handle range
        predicates natively, which is the paper's point that "in a more
        general experiment where arbitrary range queries are allowed ...
        the Cubetrees would be even faster".

        The run-key bounds cover the longest leading prefix of the
        packing order (last group-by attribute first) that is
        equality-bound, plus at most one trailing range binding — the
        same prefix rule the query router costs with.
        """
        view = self._by_name.get(view_name)
        if view is None:
            raise QueryError(f"view {view_name!r} is not in this Cubetree")
        unknown = set(bindings) - set(view.group_by)
        if unknown:
            raise QueryError(
                f"bound attributes {sorted(unknown)} not in view "
                f"{view_name!r}"
            )
        lows: List[int] = []
        highs: List[int] = []
        for attr in view.group_by:
            if attr in bindings:
                value = bindings[attr]
                if isinstance(value, tuple):
                    low, high = int(value[0]), int(value[1])
                else:
                    low = high = int(value)  # type: ignore[arg-type]
                lows.append(low)
                highs.append(high)
            else:
                lows.append(1)
                highs.append(INT64_MAX)
        arity = view.arity
        lo_key: List[int] = []
        hi_key: List[int] = []
        for pos in range(arity - 1, -1, -1):
            if view.group_by[pos] not in bindings:
                break
            lo_key.append(lows[pos])
            hi_key.append(highs[pos])
            if lows[pos] != highs[pos]:
                break  # a range binding closes the usable prefix
        lows.extend([0] * (self.dims - arity))
        highs.extend([0] * (self.dims - arity))
        rect = Rect(tuple(lows), tuple(highs))
        return SliceSpec(view, rect, tuple(lo_key), tuple(hi_key))

    def query(
        self,
        view_name: str,
        bindings: Mapping[str, object],
        fast: bool = False,
    ) -> Iterator[Tuple[Tuple[int, ...], Values]]:
        """Slice one view: yields (group coordinates, aggregate states).

        With ``fast=False`` the query descends the interior nodes from
        the root (the classic R-tree search).  With ``fast=True`` and a
        recorded leaf-run extent, the view's sorted leaf run is searched
        directly — binary seek on the bound prefix, sequential scan
        otherwise — producing the identical matches in identical order;
        trees without extents (dynamic builds, old checkpoints) fall
        back to the descent.
        """
        spec = self.slice_spec(view_name, bindings)
        arity = spec.view.arity
        if fast and self.tree.run_bounds(arity) is not None:
            matches = self.tree.search_run(
                arity, spec.rect, spec.lo_key, spec.hi_key
            )
        else:
            matches = self.tree.search(spec.rect)
        for matched_id, point, values in matches:
            if matched_id != arity:  # pragma: no cover - defensive
                raise MappingError("search strayed into another view region")
            yield point[:arity], values

    def query_aggregate(
        self, view_name: str, bindings: Mapping[str, object]
    ) -> Optional[Tuple[Values, ...]]:
        """Fold a whole slice into per-aggregate combined states.

        Aggregate pushdown for total queries (no grouping, no residual):
        the leaf run is scanned exactly as the fast path of :meth:`query`
        would — identical seek, break, and simulated I/O — but matches
        are folded leaf-by-leaf (columnar leaves as whole measure-column
        slices) instead of being materialized as rows.  Returns ``None``
        when no tuple matches, else one combined state tuple per
        aggregate, bit-identical to combining the :meth:`query` matches
        serially.  Requires a recorded leaf-run extent (:meth:`has_run`).
        """
        spec = self.slice_spec(view_name, bindings)
        arity = spec.view.arity
        if self.tree.run_bounds(arity) is None:
            raise QueryError(
                f"view {view_name!r} has no leaf-run extent to fold over"
            )
        acc = FoldAccumulator(fold_reducers(spec.view))
        self.tree.search_run_fold(
            arity, spec.rect, acc, spec.lo_key, spec.hi_key
        )
        return self._states_of(spec.view, acc)

    def _states_of(
        self, view: ViewDefinition, acc: FoldAccumulator
    ) -> Optional[Tuple[Values, ...]]:
        """Split an accumulator's flat states into per-aggregate tuples."""
        if acc.states is None:
            return None
        out: List[Values] = []
        offset = 0
        for width in view.state_widths:
            out.append(tuple(acc.states[offset : offset + width]))
            offset += width
        return tuple(out)

    def query_group(
        self,
        view_name: str,
        bindings_list: Sequence[Mapping[str, object]],
        fold: Optional[Sequence[bool]] = None,
    ) -> List[object]:
        """Answer several slices of one view in a single shared run pass.

        Returns one entry per input binding set, in input order.  By
        default each entry is the match list :meth:`query` would have
        produced for that binding set alone.  ``fold`` (aligned with
        ``bindings_list``) marks slices eligible for aggregate pushdown:
        their entries come back as :class:`FoldedSlice` objects holding
        the combined per-aggregate states (see :meth:`query_aggregate`)
        instead of match lists.  Requires a recorded leaf-run extent —
        callers fall back to per-query execution when :meth:`has_run`
        is false.
        """
        specs = [self.slice_spec(view_name, b) for b in bindings_list]
        if not specs:
            return []
        if fold is not None and len(fold) != len(specs):
            raise QueryError(
                f"{len(fold)} fold flag(s) for {len(specs)} slice(s)"
            )
        arity = specs[0].view.arity
        # Sort the group into run order (unbounded slices first), so the
        # shared pass opens at the earliest qualifying leaf and retires
        # requests front to back as the scan advances.
        order = sorted(range(len(specs)), key=lambda i: specs[i].lo_key)
        accs: Optional[List[Optional[FoldAccumulator]]] = None
        if fold is not None and any(fold):
            reducers = fold_reducers(specs[0].view)
            accs = [
                FoldAccumulator(reducers) if fold[i] else None
                for i in order
            ]
        grouped = self.tree.search_run_group(
            arity,
            [(specs[i].rect, specs[i].lo_key, specs[i].hi_key) for i in order],
            accs,
        )
        results: List[object] = [[] for _ in specs]
        for position, i in enumerate(order):
            if accs is not None and accs[position] is not None:
                results[i] = FoldedSlice(
                    self._states_of(specs[i].view, accs[position])
                )
            else:
                results[i] = [
                    (point[:arity], values)
                    for _, point, values in grouped[position]
                ]
        return results

    def has_run(self, view_name: str) -> bool:
        """True when the view has a usable recorded leaf-run extent."""
        view = self._by_name.get(view_name)
        if view is None:
            raise QueryError(f"view {view_name!r} is not in this Cubetree")
        return self.tree.run_bounds(view.arity) is not None

    def run_leaf_count(self, view_name: str) -> Optional[int]:
        """Number of leaves in the view's packed run (None if unknown)."""
        view = self._by_name.get(view_name)
        if view is None:
            raise QueryError(f"view {view_name!r} is not in this Cubetree")
        bounds = self.tree.run_bounds(view.arity)
        if bounds is None:
            return None
        return bounds[1] - bounds[0] + 1

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tree)

    @property
    def num_pages(self) -> int:
        """Number of pages this structure occupies."""
        return self.tree.num_pages

    def leaf_utilization(self) -> float:
        """Average leaf fill fraction (1.0 = packed full)."""
        return self.tree.leaf_utilization()

    def view_sizes(self) -> Dict[str, int]:
        """Tuple count per view (one leaf-chain pass)."""
        counts = {view.name: 0 for view in self.views}
        for leaf in self.tree.scan_leaf_chain():
            view = self._by_arity.get(leaf.view_id)
            if view is not None:
                counts[view.name] += len(leaf)
        return counts
