"""Sharded Cubetree forest: scatter-gather queries, per-shard merge-pack.

The sharded engine partitions every materialized view by the residue of
its *leading group coordinate* modulo ``N`` — the same first-coordinate
split :class:`~repro.cube.parallel.ParallelCubeComputation` proved
bit-identical under merge — so a group row lives in exactly one shard and
no aggregate state is ever split.  Each shard is a fully independent
Cubetree forest with its own :class:`~repro.storage.disk.DiskManager`,
buffer pool, and (at checkpoint time) its own ``shard-XX/`` directory
under one atomically committed generation manifest (see
:func:`repro.core.persistence.save_sharded_engine`).

Queries run scatter-gather.  The router plans once against merged access
paths; the binding on the routed view's leading coordinate prunes the
shard set (a point restriction hits exactly one shard), each target shard
executes the per-shard plan — including the packed-run fast path, whose
extents are per-shard — and the partial match streams are k-way merged
back into the exact serial packing order, so the float fold order of
:func:`~repro.core.answer.finalize_matches` is preserved bit-for-bit.

Bulk load and merge-pack prepare runs for every (shard, tree) pair in one
``REPRO_WORKERS`` fan-out; the simulated-I/O model reports the
*critical-path* shard (max over shards, counters still summed), so
simulated milliseconds reflect the wall-clock parallelism of N disks.

``shards=1`` degenerates to today's engine: the same call sequence hits
the same single pool, so rows, aggregate states, and simulated I/O are
byte-identical to :class:`~repro.core.engine.CubetreeEngine`.
"""

from __future__ import annotations

import heapq
import time
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.constants import DEFAULT_BUFFER_PAGES
from repro.core.answer import finalize_matches, split_bindings
from repro.core.engine import _env_fast_scans
from repro.core.extsort import build_memory_budget
from repro.core.forest import CubetreeForest, _prepare_tree_runs
from repro.core.mapping import select_mapping
from repro.core.replication import permute_state_rows, replica_definition
from repro.core.reports import LoadReport, PhaseReport, UpdateReport
from repro.core.sorting import make_substrate_sorter
from repro.cube.lattice import CubeLattice
from repro.cube.parallel import ParallelCubeComputation
from repro.errors import QueryError
from repro.obs import get_registry, trace
from repro.parallel import MIN_PARALLEL_ROWS, run_tasks, worker_count
from repro.query.result import QueryResult
from repro.query.router import AccessPath, QueryRouter
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.rtree.packing import sort_key
from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.disk import DiskManager
from repro.storage.iomodel import IOStats
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import StarSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.batch import BatchResult

Row = Tuple[object, ...]
Match = Tuple[Tuple[int, ...], Tuple[float, ...]]

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_QUERIES = _REG.counter("query.sharded.count")
_OBS_SHARDS_TOUCHED = _REG.counter("query.sharded.shards_touched")
_OBS_BATCHES = _REG.counter("query.sharded.batches")


# ----------------------------------------------------------------------
# the partitioning rule (one place; fsck re-checks it on disk)
# ----------------------------------------------------------------------
def shard_of(leading_coordinate: object, num_shards: int) -> int:
    """Home shard of a group row: leading coordinate mod N."""
    return int(leading_coordinate) % num_shards  # type: ignore[call-overload]


def partition_state_rows(
    view: ViewDefinition, rows: Sequence[Row], num_shards: int
) -> List[List[Row]]:
    """Split one view's state rows across shards, order preserved.

    Arity-0 views (the apex) have no leading coordinate; their single
    row lives in shard 0 by convention.
    """
    if num_shards == 1:
        return [list(rows)]
    parts: List[List[Row]] = [[] for _ in range(num_shards)]
    if view.arity == 0:
        parts[0] = list(rows)
        return parts
    for row in rows:
        parts[shard_of(row[0], num_shards)].append(row)
    return parts


def shard_targets(num_shards: int, bound: object) -> List[int]:
    """Shard indices whose residues can satisfy a leading-coordinate bound.

    ``bound`` is the direct binding on the routed view's leading group
    attribute: ``None`` (unrestricted), a point value, or a closed
    ``(low, high)`` range.  A point hits exactly one shard; a range
    narrower than N hits only the residues it covers.
    """
    if num_shards == 1:
        return [0]
    if bound is None:
        return list(range(num_shards))
    if isinstance(bound, tuple):
        low, high = int(bound[0]), int(bound[1])
    else:
        low = high = int(bound)  # type: ignore[call-overload]
    width = high - low + 1
    if width <= 0:
        return []
    if width >= num_shards:
        return list(range(num_shards))
    return sorted({(low + offset) % num_shards for offset in range(width)})


def combine_io(deltas: Sequence[IOStats]) -> IOStats:
    """Critical-path combination of per-shard I/O deltas.

    Counters sum (total device work), but the simulated milliseconds are
    the *max* over shards: shards are independent devices working in
    parallel, so elapsed simulated time is the slowest shard's, not the
    sum.  With one shard this is exactly that shard's stats.
    """
    combined = IOStats()
    for delta in deltas:
        combined.sequential_reads += delta.sequential_reads
        combined.random_reads += delta.random_reads
        combined.sequential_writes += delta.sequential_writes
        combined.random_writes += delta.random_writes
        combined.simulated_ms = max(combined.simulated_ms, delta.simulated_ms)
        combined.overhead_ms = max(combined.overhead_ms, delta.overhead_ms)
    return combined


# ----------------------------------------------------------------------
# shards
# ----------------------------------------------------------------------
class Shard:
    """One partition: its own disk, pool, and Cubetree forest."""

    __slots__ = ("index", "disk", "pool", "forest", "routed_queries")

    def __init__(
        self,
        index: int,
        buffer_pages: int,
        pool_cls: Optional[Type[BufferPool]] = None,
        disk: Optional[DiskManager] = None,
    ) -> None:
        self.index = index
        self.disk = disk if disk is not None else DiskManager()
        pool_factory = BufferPool if pool_cls is None else pool_cls
        self.pool = pool_factory(self.disk, capacity=buffer_pages)
        self.forest: Optional[CubetreeForest] = None
        #: Slice executions routed to this shard (scatter-gather skew).
        self.routed_queries = 0

    def require_forest(self) -> CubetreeForest:
        if self.forest is None:  # pragma: no cover - defensive
            raise QueryError(f"shard {self.index} has no forest yet")
        return self.forest


class ShardedForest:
    """The scatter-gather facade over N per-shard Cubetree forests.

    Presents the exact query surface :func:`repro.query.batch.execute_batch`
    and the engine use on a :class:`~repro.core.forest.CubetreeForest` —
    ``access_paths``/``view_definition``/``has_run``/``query_view``/
    ``query_view_group`` — while fanning executions across shards and
    merging the partial match streams back into global packing order.
    """

    def __init__(self, shards: Sequence[Shard]) -> None:
        if not shards:
            raise ValueError("a sharded forest needs at least one shard")
        self.shards = list(shards)
        self._paths: Optional[List[AccessPath]] = None

    # -- catalog delegation (identical across shards) -------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def view_names(self) -> List[str]:
        return self.shards[0].require_forest().view_names()

    def view_definition(self, view_name: str) -> ViewDefinition:
        return self.shards[0].require_forest().view_definition(view_name)

    def tree_dims(self, view_name: str) -> int:
        return self.shards[0].require_forest().tree_dims(view_name)

    def invalidate(self) -> None:
        """Drop cached routing paths after a build/update."""
        self._paths = None

    # -- shard pruning --------------------------------------------------
    def target_shards(
        self, view_name: str, bindings: Mapping[str, object]
    ) -> List[Shard]:
        """Shards whose residue can match the leading-coordinate binding."""
        if len(self.shards) == 1:
            return [self.shards[0]]
        view = self.view_definition(view_name)
        if view.arity == 0:
            return [self.shards[0]]
        bound = bindings.get(view.group_by[0])
        return [
            self.shards[index]
            for index in shard_targets(len(self.shards), bound)
        ]

    # -- scatter-gather execution ---------------------------------------
    def query_view(
        self,
        view_name: str,
        bindings: Mapping[str, object],
        fast: bool = False,
    ) -> Iterator[Match]:
        """Slice one view across its target shards.

        A single target returns that shard's stream untouched (the N=1
        and point-restriction cases — byte-identical to the unsharded
        engine).  Multiple targets k-way merge on the packing sort key,
        reproducing the exact order a single tree would have yielded, so
        downstream float folds are bit-identical.
        """
        targets = self.target_shards(view_name, bindings)
        for shard in targets:
            shard.routed_queries += 1
        if not targets:
            return iter(())
        if len(targets) == 1:
            return targets[0].require_forest().query_view(
                view_name, bindings, fast=fast
            )
        dims = self.tree_dims(view_name)
        streams = [
            shard.require_forest().query_view(view_name, bindings, fast=fast)
            for shard in targets
        ]
        return heapq.merge(
            *streams, key=lambda match: sort_key(match[0], dims)
        )

    def query_view_group(
        self,
        view_name: str,
        bindings_list: Sequence[Mapping[str, object]],
    ) -> List[List[Match]]:
        """Answer several slices of one view, one shared pass per shard.

        Every shard runs a single grouped run pass over only the bindings
        whose residue can land in it; each binding's per-shard partials
        are then merged in packing order.  One shard per binding (the
        common point-restriction batch) skips the merge entirely.
        """
        results: List[List[Match]] = [[] for _ in bindings_list]
        if not bindings_list:
            return results
        per_shard: List[List[int]] = [[] for _ in self.shards]
        for position, bindings in enumerate(bindings_list):
            for shard in self.target_shards(view_name, bindings):
                per_shard[shard.index].append(position)
        partials: List[List[List[Match]]] = [[] for _ in bindings_list]
        for shard in self.shards:
            positions = per_shard[shard.index]
            if not positions:
                continue
            shard.routed_queries += len(positions)
            forest = shard.require_forest()
            subset = [bindings_list[i] for i in positions]
            if forest.has_run(view_name):
                match_lists = forest.query_view_group(view_name, subset)
            else:
                # No extent on this shard (dynamic build): per-binding
                # classic descent, still in packing order.
                match_lists = [
                    list(forest.query_view(view_name, bindings, fast=False))
                    for bindings in subset
                ]
            for position, matches in zip(positions, match_lists):
                partials[position].append(matches)
        dims = self.tree_dims(view_name)
        for position, streams in enumerate(partials):
            if len(streams) == 1:
                results[position] = streams[0]
            elif streams:
                results[position] = list(
                    heapq.merge(
                        *streams,
                        key=lambda match: sort_key(match[0], dims),
                    )
                )
        return results

    def has_run(self, view_name: str) -> bool:
        """True when any shard recorded a leaf-run extent for the view."""
        return any(
            shard.require_forest().has_run(view_name)
            for shard in self.shards
        )

    def protect_index_pages(self) -> int:
        """Shelter every shard's interior pages (idempotent)."""
        return sum(
            shard.require_forest().protect_index_pages()
            for shard in self.shards
        )

    # -- routing inputs -------------------------------------------------
    def access_paths(self) -> List[AccessPath]:
        """Merged router inputs: global sizes, summed run extents.

        The router plans against the *whole* view (total size, total run
        leaves); shard pruning happens afterwards, per query, from the
        decision's leading-coordinate binding.
        """
        if self._paths is None:
            from repro.rtree.node import leaf_capacity

            sizes = self.view_sizes()
            paths = []
            for name in self.view_names():
                view = self.view_definition(name)
                order = tuple(reversed(view.group_by))
                run_counts = [
                    shard.require_forest().run_leaf_count(name)
                    for shard in self.shards
                ]
                known = [count for count in run_counts if count is not None]
                paths.append(
                    AccessPath(
                        view,
                        float(sizes[name]),
                        (order,),
                        rows_per_page=leaf_capacity(
                            view.arity, view.total_state_width
                        ),
                        clustered=order,
                        run_leaves=sum(known) if known else None,
                    )
                )
            self._paths = paths
        return self._paths

    # -- statistics -----------------------------------------------------
    def view_sizes(self) -> Dict[str, int]:
        """Global tuple count per view (sum of the shard partitions)."""
        totals = {name: 0 for name in self.view_names()}
        for shard in self.shards:
            for name, size in shard.require_forest().view_sizes().items():
                totals[name] += size
        return totals

    @property
    def num_pages(self) -> int:
        return sum(
            shard.require_forest().num_pages for shard in self.shards
        )

    def leaf_utilization(self) -> float:
        utils = [
            shard.require_forest().leaf_utilization()
            for shard in self.shards
            if shard.forest is not None and shard.forest.num_pages
        ]
        return sum(utils) / len(utils) if utils else 0.0


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class ShardedCubetreeEngine:
    """N independent Cubetree shards behind one engine surface.

    Mirrors :class:`~repro.core.engine.CubetreeEngine`'s lifecycle
    (materialize / query / query_batch / update / checkpoint) and report
    shapes; ``shards=1`` is byte-identical to it.  ``disks`` lets
    checkpoint recovery hand back restored per-shard disks.
    """

    def __init__(
        self,
        schema: StarSchema,
        hierarchies: Optional[Mapping[str, Hierarchy]] = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        sort_chunk_rows: int = 100_000,
        shards: int = 1,
        workers: Optional[int] = None,
        fast_scans: Optional[bool] = None,
        pool_cls: Optional[Type[BufferPool]] = None,
        disks: Optional[Sequence[DiskManager]] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if disks is not None and len(disks) != shards:
            raise ValueError(
                f"{len(disks)} restored disk(s) for {shards} shard(s)"
            )
        self.schema = schema
        self.num_shards = shards
        self.buffer_pages = buffer_pages
        self.fast_scans = (
            _env_fast_scans() if fast_scans is None else fast_scans
        )
        self.shards = [
            Shard(
                index,
                buffer_pages,
                pool_cls=pool_cls,
                disk=disks[index] if disks is not None else None,
            )
            for index in range(shards)
        ]
        self.workers = worker_count() if workers is None else max(1, workers)
        # Substrate sort spills (rare at bench scales) charge shard 0:
        # the cube computation is global, and with one shard this is
        # exactly the unsharded engine's pool.
        self.computation = ParallelCubeComputation(
            schema,
            hierarchies,
            sorter=make_substrate_sorter(
                self.shards[0].pool, sort_chunk_rows
            ),
            workers=self.workers,
            serial_row_threshold=sort_chunk_rows,
        )
        self.hierarchies: Dict[str, Tuple[Hierarchy, str]] = {}
        for attr, hierarchy in (hierarchies or {}).items():
            source = self.computation._source_key(hierarchy)
            self.hierarchies[attr] = (hierarchy, source)
        self.lattice = CubeLattice(
            schema.fact_keys,
            {attr: source for attr, (_h, source) in self.hierarchies.items()},
        )
        self.router = QueryRouter(
            self.lattice,
            {
                attr: float(schema.distinct_count(attr))
                for attr in schema.groupable_attributes()
            },
            fast_scans=self.fast_scans,
        )
        self.forest: Optional[ShardedForest] = None
        self.base_views: List[ViewDefinition] = []
        self.replicas: Dict[str, str] = {}  # replica name -> base name

    # ------------------------------------------------------------------
    # I/O accounting (critical-path convention)
    # ------------------------------------------------------------------
    def io_snapshot(self) -> List[IOStats]:
        """Per-shard cost-model snapshots (pass to :meth:`io_delta`)."""
        return [shard.disk.cost_model.snapshot() for shard in self.shards]

    def io_delta(self, snapshots: Sequence[IOStats]) -> IOStats:
        """Combined delta since a snapshot: summed counters, max ms."""
        return combine_io(
            [
                shard.disk.cost_model.stats - before
                for shard, before in zip(self.shards, snapshots)
            ]
        )

    def io_totals(self) -> IOStats:
        """Lifetime combined stats (critical-path milliseconds)."""
        return combine_io(
            [shard.disk.cost_model.stats for shard in self.shards]
        )

    def buffer_totals(self) -> BufferStats:
        """Summed lifetime buffer-pool stats across shards."""
        total = BufferStats()
        for shard in self.shards:
            stats = shard.pool.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.evictions += stats.evictions
            total.new_pages += stats.new_pages
            total.unpins += stats.unpins
            total.scan_admissions += stats.scan_admissions
            total.promotions += stats.promotions
            total.readahead_pages += stats.readahead_pages
        return total

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def materialize(
        self,
        views: Sequence[ViewDefinition],
        fact_rows: Sequence[Row],
        replicate: Optional[Mapping[str, Sequence[Sequence[str]]]] = None,
    ) -> LoadReport:
        """Compute the views once, partition, and bulk-load every shard."""
        wall_start = time.perf_counter()
        snapshots = self.io_snapshot()

        with trace(
            "engine.materialize", views=len(views), shards=self.num_shards
        ):
            self.base_views = list(views)
            data = self.computation.execute(fact_rows, self.base_views)

            all_views = list(self.base_views)
            by_name = {view.name: view for view in self.base_views}
            self.replicas = {}
            for base_name, orders in (replicate or {}).items():
                base = by_name[base_name]
                for order in orders:
                    replica = replica_definition(base, order)
                    all_views.append(replica)
                    self.replicas[replica.name] = base_name
                    data[replica.name] = list(
                        permute_state_rows(base, data[base_name], order)
                    )

            allocation = select_mapping(all_views)
            views_by_name = {view.name: view for view in all_views}
            per_shard = self._partition(views_by_name, data, keep_empty=True)
            for shard in self.shards:
                shard.forest = CubetreeForest(shard.pool, allocation)
            self.forest = ShardedForest(self.shards)
            self._apply(per_shard, update=False)
            for shard in self.shards:
                shard.pool.flush_all()

        report = LoadReport()
        report.phases["views"] = PhaseReport(
            io=self.io_delta(snapshots),
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
        )
        report.view_rows = sum(len(rows) for rows in data.values())
        report.pages = self.forest.num_pages
        report.bytes_on_disk = self.storage_bytes()
        return report

    def _partition(
        self,
        views_by_name: Mapping[str, ViewDefinition],
        data: Mapping[str, Sequence[Row]],
        keep_empty: bool,
    ) -> List[Dict[str, Sequence[Row]]]:
        """Residue-split every view's rows; one data mapping per shard.

        ``keep_empty`` keeps zero-row views in each shard's mapping (the
        bulk load requires data for every view); updates drop them so a
        shard with no deltas skips merge-pack entirely.
        """
        if self.num_shards == 1:
            return [dict(data)]
        per_shard: List[Dict[str, Sequence[Row]]] = [
            {} for _ in range(self.num_shards)
        ]
        for name, rows in data.items():
            parts = partition_state_rows(
                views_by_name[name], rows, self.num_shards
            )
            for index, part in enumerate(parts):
                if part or keep_empty:
                    per_shard[index][name] = part
        return per_shard

    def _apply(
        self, per_shard: Sequence[Mapping[str, Sequence[Row]]], update: bool
    ) -> None:
        """Build or merge-pack every shard, one combined worker fan-out.

        Run preparation (pure CPU) parallelizes across every touched
        (shard, tree) pair under the same gate as
        :meth:`CubetreeForest.build`; the packs — everything that charges
        simulated I/O — run serially in (shard, tree) order, so the per-
        shard I/O traces are deterministic and, at N=1, identical to the
        unsharded forest's.
        """
        tasks = []
        total_rows = 0
        for shard, data in zip(self.shards, per_shard):
            forest = shard.require_forest()
            if update:
                trees = [
                    tree
                    for tree in forest.cubetrees
                    if any(view.name in data for view in tree.views)
                ]
            else:
                missing = set(forest._view_tree) - set(data)
                if missing:
                    raise QueryError(
                        f"no data for views {sorted(missing)}"
                    )
                trees = list(forest.cubetrees)
            total_rows += forest._total_rows(data)
            for tree in trees:
                tasks.append(
                    (shard, tree, CubetreeForest._prep_payload(tree, data))
                )
        if (
            self.workers > 1
            and len(tasks) > 1
            and total_rows >= MIN_PARALLEL_ROWS
            # A build-memory budget forces the serial streaming path:
            # worker-side run prep would materialize full sorted runs.
            and build_memory_budget() is None
        ):
            runs_per_tree = run_tasks(
                _prepare_tree_runs,
                [payload for _shard, _tree, payload in tasks],
                self.workers,
            )
            for (_shard, tree, _payload), runs in zip(tasks, runs_per_tree):
                if update:
                    tree.update_from_runs(runs)
                else:
                    tree.build_from_runs(runs)
        else:
            for _shard, tree, payload in tasks:
                _dims, _views, relevant = payload
                if update:
                    tree.update(relevant)
                else:
                    tree.build(relevant)
        for shard, data in zip(self.shards, per_shard):
            forest = shard.require_forest()
            if not update:
                forest.adopt_sizes(data)
            elif data:
                forest.invalidate_stats()
        if self.forest is not None:
            self.forest.invalidate()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self, query: SliceQuery, fast: Optional[bool] = None
    ) -> QueryResult:
        """Answer one slice query scatter-gather (see module docstring)."""
        forest = self._require_forest()
        use_fast = self.fast_scans if fast is None else fast
        if use_fast:
            forest.protect_index_pages()
        wall_start = time.perf_counter()
        snapshots = self.io_snapshot()

        decision = self.router.route(
            query, forest.access_paths(), fast_scans=use_fast
        )
        view = decision.path.view
        direct, residual = split_bindings(view, query, self.hierarchies)
        touched = len(forest.target_shards(view.name, direct))
        matches = forest.query_view(view.name, direct, fast=decision.use_run)
        rows = finalize_matches(
            matches, view, query, self.hierarchies, residual
        )
        io = self.io_delta(snapshots)
        wall_ms = (time.perf_counter() - wall_start) * 1000.0
        _OBS_QUERIES.value += 1
        _OBS_SHARDS_TOUCHED.value += touched
        return QueryResult(
            rows=rows,
            io=io,
            wall_ms=wall_ms,
            plan=decision.describe(),
        )

    def query_batch(self, queries: Sequence[SliceQuery]) -> "BatchResult":
        """Answer a batch, fanning each coalesced group across shards."""
        from repro.query.batch import execute_batch

        forest = self._require_forest()
        forest.protect_index_pages()
        wall_start = time.perf_counter()
        snapshots = self.io_snapshot()

        with trace(
            "engine.query_batch",
            queries=len(queries),
            shards=self.num_shards,
        ):
            batch = execute_batch(
                self.router, forest, self.hierarchies, queries
            )
        batch.io = self.io_delta(snapshots)
        batch.wall_ms = (time.perf_counter() - wall_start) * 1000.0
        _OBS_BATCHES.value += 1
        _OBS_QUERIES.value += len(queries)
        return batch

    # ------------------------------------------------------------------
    # bulk-incremental updates
    # ------------------------------------------------------------------
    def update(self, fact_delta: Sequence[Row]) -> UpdateReport:
        """Merge-pack a warehouse increment into every touched shard."""
        forest = self._require_forest()
        wall_start = time.perf_counter()
        snapshots = self.io_snapshot()

        with trace(
            "engine.update", rows=len(fact_delta), shards=self.num_shards
        ):
            deltas = self.computation.execute(fact_delta, self.base_views)
            by_name = {view.name: view for view in self.base_views}
            views_by_name = dict(by_name)
            for replica_name, base_name in self.replicas.items():
                replica = forest.view_definition(replica_name)
                views_by_name[replica_name] = replica
                deltas[replica_name] = list(
                    permute_state_rows(
                        by_name[base_name], deltas[base_name],
                        replica.group_by,
                    )
                )
            per_shard = self._partition(
                views_by_name, deltas, keep_empty=False
            )
            self._apply(per_shard, update=True)
            for shard in self.shards:
                shard.pool.flush_all()

        return UpdateReport(
            method="cubetree merge-pack",
            io=self.io_delta(snapshots),
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
            rows_applied=sum(len(rows) for rows in deltas.values()),
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str, retain: int = 2) -> str:
        """Write one atomically committed multi-shard generation."""
        from repro.core.persistence import save_sharded_engine

        return save_sharded_engine(self, directory, retain=retain)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def view_sizes(self) -> Dict[str, int]:
        """Global tuple count per materialized view."""
        return self._require_forest().view_sizes()

    def storage_pages(self) -> int:
        """Total pages owned across every shard."""
        return self._require_forest().num_pages

    def storage_bytes(self) -> int:
        """Total bytes on disk (pages * PAGE_SIZE, all shards)."""
        from repro.constants import PAGE_SIZE

        return self.storage_pages() * PAGE_SIZE

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard observability: pages, I/O, hit rates, routed queries."""
        records: List[Dict[str, object]] = []
        for shard in self.shards:
            io = shard.disk.cost_model.stats
            buf = shard.pool.stats
            records.append(
                {
                    "shard": shard.index,
                    "pages": (
                        shard.forest.num_pages
                        if shard.forest is not None
                        else 0
                    ),
                    "rows": (
                        sum(shard.forest.view_sizes().values())
                        if shard.forest is not None
                        else 0
                    ),
                    "simulated_ms": io.simulated_ms,
                    "reads": io.reads,
                    "writes": io.writes,
                    "buffer_hit_ratio": (
                        buf.hit_ratio if buf.accesses > 0 else None
                    ),
                    "routed_queries": shard.routed_queries,
                }
            )
        return records

    def _require_forest(self) -> ShardedForest:
        if self.forest is None:
            raise QueryError("engine has no materialized views yet")
        return self.forest
