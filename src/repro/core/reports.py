"""Measurement reports returned by the storage engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.storage.iomodel import IOStats


@dataclass
class PhaseReport:
    """One measured phase: cost-model delta plus wall-clock time."""

    io: IOStats = field(default_factory=IOStats)
    wall_ms: float = 0.0

    @property
    def simulated_ms(self) -> float:
        """Simulated I/O time plus engine overhead (ms)."""
        return self.io.total_ms


@dataclass
class LoadReport:
    """Initial-load measurements (Table 6 shape).

    ``phases`` separates view materialization from index creation for the
    conventional engine; the Cubetree engine reports a single ``views``
    phase (its trees *are* the indexes).
    """

    phases: Dict[str, PhaseReport] = field(default_factory=dict)
    view_rows: int = 0
    pages: int = 0
    bytes_on_disk: int = 0

    @property
    def total_simulated_ms(self) -> float:
        """Simulated time summed over all phases."""
        return sum(p.simulated_ms for p in self.phases.values())

    @property
    def total_wall_ms(self) -> float:
        """Wall-clock time summed over all phases."""
        return sum(p.wall_ms for p in self.phases.values())


@dataclass
class UpdateReport:
    """Refresh measurements (Table 7 shape)."""

    method: str = ""
    io: IOStats = field(default_factory=IOStats)
    wall_ms: float = 0.0
    rows_applied: int = 0

    @property
    def simulated_ms(self) -> float:
        """Simulated I/O time plus engine overhead (ms)."""
        return self.io.total_ms
