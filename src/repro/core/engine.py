"""CubetreeEngine — the "Cubetree Datablade" of the experiments.

One object offers the full lifecycle the paper measures:

* :meth:`materialize` — compute the selected views (sort-based, smallest
  parent first), optionally replicate chosen views in extra sort orders,
  run SelectMapping, and bulk-load the packed forest (Fig. 11);
* :meth:`query` — route a slice query to the best view/sort order, search
  the Cubetree, and aggregate/finalize the answer (Fig. 4);
* :meth:`update` — compute the delta views from a warehouse increment and
  merge-pack every tree (Fig. 15).

All I/O flows through one simulated disk so the reports are directly
comparable with :class:`~repro.core.conventional.ConventionalEngine` runs
on an identical device.
"""

from __future__ import annotations

import os
import time
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.constants import DEFAULT_BUFFER_PAGES
from repro.core.answer import finalize_fold, finalize_matches, split_bindings
from repro.core.forest import CubetreeForest
from repro.core.mapping import select_mapping
from repro.core.replication import permute_state_rows, replica_definition
from repro.core.reports import LoadReport, PhaseReport, UpdateReport
from repro.core.sorting import make_substrate_sorter
from repro.cube.lattice import CubeLattice
from repro.cube.parallel import ParallelCubeComputation
from repro.parallel import worker_count
from repro.errors import QueryError
from repro.obs import get_registry, trace
from repro.query.result import QueryResult
from repro.query.router import QueryRouter
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.rtree.kernels import vector_kernels_enabled
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import StarSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.batch import BatchResult

Row = Tuple[object, ...]

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_QUERIES = _REG.counter("query.cubetree.count")
_OBS_QUERY_SIM_MS = _REG.histogram("query.cubetree.simulated_ms")
_OBS_QUERY_WALL_MS = _REG.histogram("query.cubetree.wall_ms")
_OBS_BATCHES = _REG.counter("query.cubetree.batches")
_OBS_BATCHED_QUERIES = _REG.counter("query.cubetree.batched_queries")
_OBS_PUSHDOWNS = _REG.counter("query.cubetree.pushdowns")


def _env_fast_scans() -> bool:
    """Default for the engine's ``fast_scans`` flag (``REPRO_FAST_SCANS``)."""
    return os.environ.get("REPRO_FAST_SCANS", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


class CubetreeEngine:
    """Materialized ROLAP views stored as a forest of Cubetrees."""

    def __init__(
        self,
        schema: StarSchema,
        hierarchies: Optional[Mapping[str, Hierarchy]] = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        sort_chunk_rows: int = 100_000,
        disk: Optional[DiskManager] = None,
        workers: Optional[int] = None,
        fast_scans: Optional[bool] = None,
        pool_cls: Optional[Type[BufferPool]] = None,
    ) -> None:
        """``workers`` (default: ``REPRO_WORKERS``, i.e. 1) parallelizes
        the pure-CPU stages — cube-computation branches and merge-pack run
        preparation — across processes; all simulated I/O stays in this
        process in serial order, so costs are identical at any count.

        ``fast_scans`` (default: ``REPRO_FAST_SCANS``, i.e. off) makes
        single queries execute through the packed-run fast path and the
        router cost plans accordingly; off, :meth:`query` keeps the
        classic interior descent and its exact simulated I/O.  Batched
        execution (:meth:`query_batch`) always uses the run pass.

        ``pool_cls`` picks the buffer-pool implementation (default
        :class:`~repro.storage.buffer.BufferPool`); the serving layer
        passes :class:`~repro.storage.buffer.SharedBufferPool` so pool
        state stays sound under its worker threads."""
        self.schema = schema
        self.fast_scans = (
            _env_fast_scans() if fast_scans is None else fast_scans
        )
        self.disk = disk if disk is not None else DiskManager()
        pool_factory = BufferPool if pool_cls is None else pool_cls
        self.pool = pool_factory(self.disk, capacity=buffer_pages)
        self.workers = worker_count() if workers is None else max(1, workers)
        self.computation = ParallelCubeComputation(
            schema,
            hierarchies,
            sorter=make_substrate_sorter(self.pool, sort_chunk_rows),
            workers=self.workers,
            serial_row_threshold=sort_chunk_rows,
        )
        self.hierarchies: Dict[str, Tuple[Hierarchy, str]] = {}
        for attr, hierarchy in (hierarchies or {}).items():
            source = self.computation._source_key(hierarchy)
            self.hierarchies[attr] = (hierarchy, source)
        self.lattice = CubeLattice(
            schema.fact_keys,
            {attr: source for attr, (_h, source) in self.hierarchies.items()},
        )
        self.router = QueryRouter(
            self.lattice,
            {
                attr: float(schema.distinct_count(attr))
                for attr in schema.groupable_attributes()
            },
            fast_scans=self.fast_scans,
        )
        self.forest: Optional[CubetreeForest] = None
        self.base_views: List[ViewDefinition] = []
        self.replicas: Dict[str, str] = {}  # replica name -> base name

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def materialize(
        self,
        views: Sequence[ViewDefinition],
        fact_rows: Sequence[Row],
        replicate: Optional[Mapping[str, Sequence[Sequence[str]]]] = None,
    ) -> LoadReport:
        """Compute, map, and bulk-load the view set.

        Parameters
        ----------
        views:
            The selected views (paper's set V).
        fact_rows:
            The warehouse fact data.
        replicate:
            Optional ``view name -> list of replica attribute orders``
            (the Datablade's multi-sort-order replication).
        """
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        with trace("engine.materialize", views=len(views)):
            self.base_views = list(views)
            data = self.computation.execute(fact_rows, self.base_views)

            all_views = list(self.base_views)
            by_name = {view.name: view for view in self.base_views}
            self.replicas = {}
            for base_name, orders in (replicate or {}).items():
                base = by_name[base_name]
                for order in orders:
                    replica = replica_definition(base, order)
                    all_views.append(replica)
                    self.replicas[replica.name] = base_name
                    data[replica.name] = list(
                        permute_state_rows(base, data[base_name], order)
                    )

            allocation = select_mapping(all_views)
            self.forest = CubetreeForest(self.pool, allocation)
            self.forest.build(data, workers=self.workers)
            self.pool.flush_all()

        report = LoadReport()
        report.phases["views"] = PhaseReport(
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
        )
        report.view_rows = sum(len(rows) for rows in data.values())
        report.pages = self.forest.num_pages
        report.bytes_on_disk = self.storage_bytes()
        return report

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self, query: SliceQuery, fast: Optional[bool] = None
    ) -> QueryResult:
        """Answer one slice query through the forest.

        ``fast`` overrides the engine's ``fast_scans`` default for this
        query: True plans with the fast cost model, which prices the
        packed-run execution (binary seek + sequential scan; identical
        rows) against the classic interior descent and takes whichever
        is cheaper; False forces classic planning and descent.
        """
        forest = self._require_forest()
        use_fast = self.fast_scans if fast is None else fast
        if use_fast:
            self._protect_index_pages()
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        decision = self.router.route(
            query, forest.access_paths(), fast_scans=use_fast
        )
        view = decision.path.view
        direct, residual = split_bindings(view, query, self.hierarchies)
        if (
            decision.use_run
            and not query.group_by
            and not residual
            and vector_kernels_enabled()
            and forest.has_run(view.name)
        ):
            # Aggregate pushdown: a total query with no residual filter
            # needs only the slice's combined states, so the run pass
            # folds measure columns in place of materializing matches.
            # Same leaves scanned, same simulated I/O, same answer.
            rows = finalize_fold(
                view, forest.query_view_aggregate(view.name, direct)
            )
            _OBS_PUSHDOWNS.value += 1
        else:
            matches = forest.query_view(
                view.name, direct, fast=decision.use_run
            )
            rows = finalize_matches(
                matches, view, query, self.hierarchies, residual
            )
        io = self.disk.cost_model.stats - io_start
        wall_ms = (time.perf_counter() - wall_start) * 1000.0
        _OBS_QUERIES.value += 1
        _OBS_QUERY_SIM_MS.observe(io.simulated_ms)
        _OBS_QUERY_WALL_MS.observe(wall_ms)
        return QueryResult(
            rows=rows,
            io=io,
            wall_ms=wall_ms,
            plan=decision.describe(),
        )

    def query_batch(self, queries: Sequence[SliceQuery]) -> "BatchResult":
        """Answer a batch of slice queries with one shared run pass per
        routed view (see :mod:`repro.query.batch`).

        Each query's rows are identical to what :meth:`query` returns for
        it alone; the batch-level I/O and wall totals live on the result.
        """
        from repro.query.batch import execute_batch

        forest = self._require_forest()
        self._protect_index_pages()
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        with trace("engine.query_batch", queries=len(queries)):
            batch = execute_batch(
                self.router, forest, self.hierarchies, queries
            )
        batch.io = self.disk.cost_model.stats - io_start
        batch.wall_ms = (time.perf_counter() - wall_start) * 1000.0
        _OBS_BATCHES.value += 1
        _OBS_BATCHED_QUERIES.value += batch.batched
        _OBS_QUERIES.value += len(queries)
        return batch

    def _protect_index_pages(self) -> None:
        """Shelter interior/root pages from scan churn (idempotent)."""
        if self.forest is not None:
            self.forest.protect_index_pages()

    # ------------------------------------------------------------------
    # bulk-incremental updates
    # ------------------------------------------------------------------
    def update(self, fact_delta: Sequence[Row]) -> UpdateReport:
        """Merge-pack a warehouse increment into every Cubetree."""
        forest = self._require_forest()
        wall_start = time.perf_counter()
        io_start = self.disk.cost_model.snapshot()

        with trace("engine.update", rows=len(fact_delta)):
            deltas = self.computation.execute(fact_delta, self.base_views)
            by_name = {view.name: view for view in self.base_views}
            for replica_name, base_name in self.replicas.items():
                replica = forest.view_definition(replica_name)
                deltas[replica_name] = list(
                    permute_state_rows(
                        by_name[base_name], deltas[base_name], replica.group_by
                    )
                )
            forest.update(deltas, workers=self.workers)
            self.pool.flush_all()

        return UpdateReport(
            method="cubetree merge-pack",
            io=self.disk.cost_model.stats - io_start,
            wall_ms=(time.perf_counter() - wall_start) * 1000.0,
            rows_applied=sum(len(rows) for rows in deltas.values()),
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str, retain: int = 2) -> str:
        """Write a crash-safe generational checkpoint of this engine.

        A thin wrapper over :func:`repro.core.persistence.save_engine`
        (create-new-then-swap at the checkpoint level: a new ``gen-<n>/``
        is committed by an atomic manifest rename and the previous
        generation survives any mid-checkpoint crash).  Returns the
        committed generation directory.
        """
        from repro.core.persistence import save_engine

        return save_engine(self, directory, retain=retain)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def view_sizes(self) -> Dict[str, int]:
        """Tuple count per materialized view."""
        return self._require_forest().view_sizes()

    def storage_pages(self) -> int:
        """Total pages owned by this engine's structures."""
        return self._require_forest().num_pages

    def storage_bytes(self) -> int:
        """Total bytes on disk (pages * PAGE_SIZE)."""
        from repro.constants import PAGE_SIZE

        return self.storage_pages() * PAGE_SIZE

    def _require_forest(self) -> CubetreeForest:
        if self.forest is None:
            raise QueryError("engine has no materialized views yet")
        return self.forest
