"""The SelectMapping algorithm (paper Fig. 5).

Given views ``V = {V1..Vn}``, SelectMapping allocates a minimal forest of
Cubetrees such that no Cubetree holds two views of the same arity.  Views
are grouped into sets ``S_i`` by arity; while any set is non-empty, a new
Cubetree is created with the dimensionality of the largest remaining arity
and one view is drawn from every non-empty ``S_j``.

The resulting trees keep every view in a distinct contiguous run of leaf
nodes (the reversed-coordinate sort groups views by ascending arity), which
is what makes leaf compression valid and clustering per-view perfect, while
minimizing the number of trees — and therefore non-leaf overhead — and
maximizing buffer hits on the shared top levels (Sec. 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import MappingError
from repro.relational.view import ViewDefinition


@dataclass(frozen=True)
class TreeAssignment:
    """One planned Cubetree: its dimensionality and its views."""

    dims: int
    views: Tuple[ViewDefinition, ...]

    def arities(self) -> Tuple[int, ...]:
        """The arities of this tree's views."""
        return tuple(view.arity for view in self.views)


@dataclass
class CubetreeAllocation:
    """The full mapping of a view set onto a Cubetree forest."""

    trees: List[TreeAssignment] = field(default_factory=list)

    @property
    def num_trees(self) -> int:
        """Number of Cubetrees in the forest."""
        return len(self.trees)

    def tree_of(self, view_name: str) -> int:
        """Index of the tree holding a view."""
        for i, tree in enumerate(self.trees):
            if any(view.name == view_name for view in tree.views):
                return i
        raise MappingError(f"view {view_name!r} is not in the allocation")

    def describe(self) -> str:
        """Table-5-style rendering of the allocation."""
        lines = []
        for i, tree in enumerate(self.trees, start=1):
            coords = ",".join(f"x{d + 1}" for d in range(tree.dims))
            for view in tree.views:
                lines.append(f"R{i}{{{coords}}}  <-  {view.name}")
        return "\n".join(lines)


def select_mapping(views: Sequence[ViewDefinition]) -> CubetreeAllocation:
    """Run SelectMapping over a set of views.

    Views are drawn from each arity group in input order, so the
    allocation is deterministic.  Raises :class:`MappingError` on
    duplicate view names.
    """
    names = [view.name for view in views]
    if len(set(names)) != len(names):
        raise MappingError("duplicate view names in mapping input")

    allocation = CubetreeAllocation()
    if not views:
        return allocation

    # Group views by arity (the sets S_i; arity 0 is the super aggregate).
    groups: Dict[int, List[ViewDefinition]] = {}
    for view in views:
        groups.setdefault(view.arity, []).append(view)

    while any(groups.values()):
        # The dimensionality of the next tree is the largest arity that
        # still has an unmapped view.
        dims = max(arity for arity, pending in groups.items() if pending)
        dims = max(dims, 1)  # a lone super aggregate still needs 1-d space
        chosen: List[ViewDefinition] = []
        for arity in sorted(groups):
            if arity <= dims and groups[arity]:
                chosen.append(groups[arity].pop(0))
        allocation.trees.append(TreeAssignment(dims, tuple(chosen)))
    return allocation
