"""The paper's contribution: Cubetree storage for ROLAP aggregate views.

* :mod:`repro.core.mapping` — the SelectMapping algorithm (Fig. 5) that
  places an arbitrary set of views onto a minimal forest of Cubetrees;
* :mod:`repro.core.cubetree` — one packed/compressed Cubetree holding one
  view per arity;
* :mod:`repro.core.forest` — the Cubetree forest with query routing;
* :mod:`repro.core.engine` — :class:`CubetreeEngine`, the "Datablade":
  materialize / query / bulk-incremental update behind one API;
* :mod:`repro.core.conventional` — :class:`ConventionalEngine`, the same
  API on relational tables + B-trees (the paper's baseline);
* :mod:`repro.core.replication` — multi-sort-order replicas of a view.
"""

from repro.core.advisor import Advice, advise
from repro.core.conventional import ConventionalEngine
from repro.core.cubetree import Cubetree
from repro.core.engine import CubetreeEngine
from repro.core.forest import CubetreeForest
from repro.core.mapping import CubetreeAllocation, select_mapping
from repro.core.replication import replica_definition, replica_name

__all__ = [
    "Advice",
    "advise",
    "ConventionalEngine",
    "Cubetree",
    "CubetreeAllocation",
    "CubetreeEngine",
    "CubetreeForest",
    "replica_definition",
    "replica_name",
    "select_mapping",
]
