"""Saving and reopening a Cubetree database.

A saved database is a directory holding two files:

* ``pages.bin`` — every page of the simulated disk (leaf/interior nodes of
  all Cubetrees plus free space), written as an out-of-band checkpoint;
* ``meta.json`` — the catalog: star schema (including dimension rows),
  hierarchies, view definitions, replicas, the SelectMapping allocation,
  and each tree's root/leaf/ownership state.

:func:`save_engine` checkpoints a :class:`CubetreeEngine`;
:func:`load_engine` reconstructs an equivalent engine that answers the
same queries and accepts further merge-pack updates.  (The conventional
engine is a baseline for the experiments and deliberately has no
persistence path.)
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.core.engine import CubetreeEngine
from repro.core.forest import CubetreeForest
from repro.core.mapping import CubetreeAllocation, TreeAssignment
from repro.errors import ReproError
from repro.relational.executor import AggFunc, AggSpec
from repro.relational.view import ViewDefinition
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import Dimension, StarSchema

META_NAME = "meta.json"
PAGES_NAME = "pages.bin"
FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """A saved database is missing, incomplete, or version-incompatible."""


# ----------------------------------------------------------------------
# serialization helpers
# ----------------------------------------------------------------------
def _view_to_json(view: ViewDefinition) -> dict:
    return {
        "name": view.name,
        "group_by": list(view.group_by),
        "aggregates": [
            {"func": spec.func.value, "attribute": spec.attribute}
            for spec in view.aggregates
        ],
    }


def _view_from_json(payload: dict) -> ViewDefinition:
    aggregates = tuple(
        AggSpec(AggFunc(item["func"]), item["attribute"])
        for item in payload["aggregates"]
    )
    return ViewDefinition(
        payload["name"], tuple(payload["group_by"]), aggregates=aggregates
    )


def _schema_to_json(schema: StarSchema) -> dict:
    return {
        "fact_keys": list(schema.fact_keys),
        "measure": schema.measure,
        "dimensions": {
            fact_key: {
                "name": dim.name,
                "key": dim.key,
                "attributes": list(dim.attributes),
                "rows": [list(row) for row in dim.rows],
            }
            for fact_key, dim in schema.dimensions.items()
        },
    }


def _schema_from_json(payload: dict) -> StarSchema:
    dimensions = {
        fact_key: Dimension(
            item["name"],
            item["key"],
            tuple(item["attributes"]),
            [tuple(row) for row in item["rows"]],
        )
        for fact_key, item in payload["dimensions"].items()
    }
    return StarSchema(
        tuple(payload["fact_keys"]), payload["measure"], dimensions
    )


def _tree_state(tree) -> dict:
    return {
        "root_page_id": tree.tree.root_page_id,
        "height": tree.tree.height,
        "count": tree.tree.count,
        "leaf_page_ids": list(tree.tree.leaf_page_ids),
        "owned_page_ids": list(tree.tree.owned_page_ids),
    }


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def save_engine(engine: CubetreeEngine, directory: str) -> None:
    """Checkpoint a loaded CubetreeEngine into ``directory``."""
    forest = engine.forest
    if forest is None:
        raise PersistenceError("engine has no materialized views to save")
    os.makedirs(directory, exist_ok=True)
    engine.pool.flush_all()
    engine.disk.dump_pages(os.path.join(directory, PAGES_NAME))

    meta = {
        "format_version": FORMAT_VERSION,
        "schema": _schema_to_json(engine.schema),
        "hierarchies": [
            {"attribute": attr, "fact_key": source,
             "dim_attribute": hierarchy.attribute}
            for attr, (hierarchy, source) in engine.hierarchies.items()
        ],
        "base_views": [_view_to_json(v) for v in engine.base_views],
        "replicas": dict(engine.replicas),
        "allocation": [
            {
                "dims": assignment.dims,
                "views": [_view_to_json(v) for v in assignment.views],
            }
            for assignment in forest.allocation.trees
        ],
        "trees": [_tree_state(tree) for tree in forest.cubetrees],
        "sizes": forest.view_sizes(),
        "disk": engine.disk.allocation_state(),
        "buffer_pages": engine.pool.capacity,
    }
    with open(os.path.join(directory, META_NAME), "w") as handle:
        json.dump(meta, handle, indent=1)


def load_engine(directory: str) -> CubetreeEngine:
    """Reopen a database saved by :func:`save_engine`."""
    meta_path = os.path.join(directory, META_NAME)
    pages_path = os.path.join(directory, PAGES_NAME)
    if not (os.path.exists(meta_path) and os.path.exists(pages_path)):
        raise PersistenceError(f"no saved database in {directory!r}")
    with open(meta_path) as handle:
        meta = json.load(handle)
    if meta.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {meta.get('format_version')!r}"
        )

    schema = _schema_from_json(meta["schema"])
    hierarchies: Dict[str, Hierarchy] = {}
    for item in meta["hierarchies"]:
        dim = schema.dimension_of(item["fact_key"])
        hierarchies[item["attribute"]] = Hierarchy.from_dimension(
            dim, item["dim_attribute"]
        )

    disk = DiskManager.restore(pages_path, meta["disk"])
    engine = CubetreeEngine(
        schema,
        hierarchies=hierarchies,
        buffer_pages=int(meta.get("buffer_pages", 256)),
        disk=disk,
    )
    engine.base_views = [_view_from_json(v) for v in meta["base_views"]]
    engine.replicas = dict(meta["replicas"])

    trees: List[TreeAssignment] = []
    for assignment in meta["allocation"]:
        trees.append(
            TreeAssignment(
                int(assignment["dims"]),
                tuple(_view_from_json(v) for v in assignment["views"]),
            )
        )
    allocation = CubetreeAllocation(trees=trees)
    forest = CubetreeForest(engine.pool, allocation)
    for tree, state in zip(forest.cubetrees, meta["trees"]):
        tree.tree.root_page_id = int(state["root_page_id"])
        tree.tree.height = int(state["height"])
        tree.tree.count = int(state["count"])
        tree.tree.leaf_page_ids = [int(p) for p in state["leaf_page_ids"]]
        tree.tree.owned_page_ids = [int(p) for p in state["owned_page_ids"]]
    forest._sizes = {
        name: int(size) for name, size in meta["sizes"].items()
    }
    engine.forest = forest
    return engine
