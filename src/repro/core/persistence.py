"""Crash-safe generational checkpoints for a Cubetree database.

The paper's update story rests on a *create-new-then-swap* discipline:
merge-pack writes a freshly packed Cubetree beside the old one and swaps
atomically, so the old Cubetree keeps serving queries and a crash never
loses the previous generation (Sec. 5).  This module applies the same
discipline at the checkpoint level.  A saved database is a directory of
numbered **generations**::

    db/
      gen-000001/
        pages.bin       every allocated page, in page-id order
        pages.crc       one little-endian uint32 CRC32 per page
        meta.json       the catalog (canonical JSON, see below)
        MANIFEST.json   commit record: file sizes + CRC32s (written last)
      gen-000002/
        ...             the next checkpoint; gen-000001 stays intact

:func:`save_engine` writes a brand-new ``gen-<n>/`` directory next to the
existing ones and *commits* it by writing ``MANIFEST.json`` to a temporary
name, fsyncing, and atomically renaming it into place — the manifest's
presence is the commit point, exactly like merge-pack's swap.  A crash at
any write site leaves either the previous committed generation (manifest
absent: the partial is garbage) or the new one (manifest present); never a
torn mix.  :func:`load_engine` recovers by selecting the newest
manifest-complete generation, verifying every checksum, and discarding
partials.  Committed generations beyond ``retain`` are pruned only after
the new commit succeeds.

``meta.json`` is canonical: every dict is dumped with sorted keys and
explicitly normalized value types (tuples as lists, sizes as ints, names
as strings), so ``save -> load -> save`` produces byte-identical metadata.

Format history
--------------
* **v1** — ``meta.json`` + ``pages.bin`` directly in the directory, no
  checksums, overwritten in place on every save (a crash mid-checkpoint
  destroyed the only copy).  Still readable: :func:`load_engine` falls
  back to the flat layout when no generation directories exist.
* **v2** — the generational layout above.
* **v3** — identical catalog layout; ``pages.bin`` may additionally
  contain columnar (type-3) R-tree leaf pages, produced when the
  ``REPRO_LEAF_FORMAT=columnar`` gate is on.  New saves always write
  v3; v2 checkpoints (row-major leaves only) load unchanged because
  the page decoder dispatches on the per-page node-type byte.

Every file operation of a checkpoint passes through a
:class:`~repro.storage.wal.CrashPoint` (the engine disk's hook by
default), so recovery tests can kill the simulated process at each step;
see ``tests/core/test_checkpoint_crash.py``.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Tuple, Type

from repro.constants import PAGE_SIZE
from repro.core.engine import CubetreeEngine
from repro.core.forest import CubetreeForest
from repro.core.mapping import CubetreeAllocation, TreeAssignment
from repro.errors import ReproError
from repro.relational.executor import AggFunc, AggSpec
from repro.relational.view import ViewDefinition
from repro.storage.disk import DiskManager
from repro.storage.wal import CrashPoint
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import Dimension, StarSchema

META_NAME = "meta.json"
PAGES_NAME = "pages.bin"
CHECKSUMS_NAME = "pages.crc"
MANIFEST_NAME = "MANIFEST.json"
#: Per-shard catalog inside a sharded generation's ``shard-XX/``.
SHARD_META_NAME = "shard.json"
GENERATION_PREFIX = "gen-"
SHARD_DIR_PREFIX = "shard-"
#: Current checkpoint format.  v3 (2026) admits columnar (type-3) leaf
#: pages in the stored image; the catalog layout is unchanged from v2,
#: so v2 checkpoints load as-is (see SUPPORTED_FORMAT_VERSIONS).
FORMAT_VERSION = 3
#: Checkpoint format versions this build can load.  v2 images contain
#: only row-major leaves, which every reader still decodes.
SUPPORTED_FORMAT_VERSIONS = (2, 3)
#: ``layout`` value in a sharded generation's manifest and catalog;
#: single-tree checkpoints simply omit the key (format v2 unchanged).
LAYOUT_SHARDED = "sharded"
#: Committed generations kept after a successful save (>= 1).
DEFAULT_RETAIN = 2

_GENERATION_RE = re.compile(r"^gen-(\d{6,})$")


def _shard_dir_name(index: int) -> str:
    return f"{SHARD_DIR_PREFIX}{index:02d}"


class _ShardCrashPoint:
    """Prefixes crash contexts with the shard, so recovery tests can
    target (and reports can attribute) a specific shard's write sites."""

    def __init__(self, inner: CrashPoint, index: int) -> None:
        self._inner = inner
        self._prefix = f"shard {index} "

    def hit(self, context: str = "") -> None:
        self._inner.hit(self._prefix + context)


class PersistenceError(ReproError):
    """A saved database is missing, incomplete, or version-incompatible."""


class CorruptCheckpointError(PersistenceError):
    """A committed generation failed checksum or size validation."""


# ----------------------------------------------------------------------
# serialization helpers (canonical: sorted keys, explicit value types)
# ----------------------------------------------------------------------
def _view_to_json(view: ViewDefinition) -> dict:
    return {
        "name": str(view.name),
        "group_by": [str(attr) for attr in view.group_by],
        "aggregates": [
            {"func": str(spec.func.value), "attribute": str(spec.attribute)}
            for spec in view.aggregates
        ],
    }


def _view_from_json(payload: dict) -> ViewDefinition:
    aggregates = tuple(
        AggSpec(AggFunc(item["func"]), item["attribute"])
        for item in payload["aggregates"]
    )
    return ViewDefinition(
        payload["name"], tuple(payload["group_by"]), aggregates=aggregates
    )


def _schema_to_json(schema: StarSchema) -> dict:
    return {
        "fact_keys": [str(key) for key in schema.fact_keys],
        "measure": str(schema.measure),
        "dimensions": {
            str(fact_key): {
                "name": str(dim.name),
                "key": str(dim.key),
                "attributes": [str(attr) for attr in dim.attributes],
                "rows": [list(row) for row in dim.rows],
            }
            for fact_key, dim in schema.dimensions.items()
        },
    }


def _schema_from_json(payload: dict) -> StarSchema:
    dimensions = {
        fact_key: Dimension(
            item["name"],
            item["key"],
            tuple(item["attributes"]),
            [tuple(row) for row in item["rows"]],
        )
        for fact_key, item in payload["dimensions"].items()
    }
    return StarSchema(
        tuple(payload["fact_keys"]), payload["measure"], dimensions
    )


def _tree_state(tree) -> dict:
    return {
        "root_page_id": int(tree.tree.root_page_id),
        "height": int(tree.tree.height),
        "count": int(tree.tree.count),
        "leaf_page_ids": [int(p) for p in tree.tree.leaf_page_ids],
        "owned_page_ids": [int(p) for p in tree.tree.owned_page_ids],
        # Per-view packed leaf-run extents (JSON forces string keys;
        # restore re-ints them).  Checkpoints written before this field
        # existed simply lack the key and restore with no extents.
        "view_extents": {
            str(view_id): [int(first), int(last)]
            for view_id, (first, last) in sorted(
                tree.tree.view_extents.items()
            )
        },
    }


def _build_meta(engine: CubetreeEngine, forest: CubetreeForest) -> dict:
    """The catalog, normalized so serialization is deterministic."""
    return {
        "format_version": FORMAT_VERSION,
        "schema": _schema_to_json(engine.schema),
        "hierarchies": sorted(
            (
                {
                    "attribute": str(attr),
                    "fact_key": str(source),
                    "dim_attribute": str(hierarchy.attribute),
                }
                for attr, (hierarchy, source) in engine.hierarchies.items()
            ),
            key=lambda item: item["attribute"],
        ),
        "base_views": [_view_to_json(v) for v in engine.base_views],
        "replicas": {
            str(replica): str(base)
            for replica, base in engine.replicas.items()
        },
        "allocation": [
            {
                "dims": int(assignment.dims),
                "views": [_view_to_json(v) for v in assignment.views],
            }
            for assignment in forest.allocation.trees
        ],
        "trees": [_tree_state(tree) for tree in forest.cubetrees],
        "sizes": {
            str(name): int(size)
            for name, size in forest.view_sizes().items()
        },
        "disk": {
            "next_page_id": int(engine.disk.allocation_state()["next_page_id"]),
            "freed": [int(p) for p in engine.disk.allocation_state()["freed"]],
        },
        "buffer_pages": int(engine.pool.capacity),
    }


def _meta_bytes(meta: dict) -> bytes:
    """Canonical encoding: sorted keys, fixed separators, trailing NL."""
    return (
        json.dumps(meta, indent=1, sort_keys=True, ensure_ascii=True)
        + "\n"
    ).encode("ascii")


# ----------------------------------------------------------------------
# generation bookkeeping
# ----------------------------------------------------------------------
def _generation_name(number: int) -> str:
    return f"{GENERATION_PREFIX}{number:06d}"


def _list_generations(directory: str) -> List[Tuple[int, str]]:
    """``(number, path)`` of every gen-* entry, ascending by number."""
    found: List[Tuple[int, str]] = []
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return found
    for entry in entries:
        match = _GENERATION_RE.match(entry)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, entry)))
    found.sort()
    return found


def _committed(gen_path: str) -> bool:
    return os.path.exists(os.path.join(gen_path, MANIFEST_NAME))


def list_generations(directory: str) -> List[Tuple[int, str, bool]]:
    """Every on-disk generation: ``(number, path, committed)`` ascending.

    The serving layer uses this to map generation numbers to directories
    and to distinguish committed generations (manifest present) from the
    crash debris recovery ignores.
    """
    return [
        (number, path, _committed(path))
        for number, path in _list_generations(directory)
    ]


def newest_committed_number(directory: str) -> Optional[int]:
    """Number of the newest manifest-complete generation (None if none).

    This is the database's visible version: a publish that crashed after
    its manifest rename still moved this number forward, and the serving
    layer's refresh recovery keys off exactly that."""
    newest = None
    for number, path in _list_generations(directory):
        if _committed(path):
            newest = number
    return newest


def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: str) -> None:
    """Durably record directory entries (rename/create) — best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def _crash_hit(crash_point: Optional[CrashPoint], context: str) -> None:
    if crash_point is not None:
        crash_point.hit(context)


def _write_file(
    path: str,
    payload: bytes,
    crash_point: Optional[CrashPoint],
    context: str,
) -> None:
    """One checkpoint write site: crash hook, write, fsync."""
    _crash_hit(crash_point, context)
    with open(path, "wb") as handle:
        handle.write(payload)
        _fsync_file(handle)


def _page_checksums(pages_path: str) -> List[int]:
    """Per-page CRC32s computed by reading the dump back from disk.

    Read-back (rather than checksumming in-memory buffers) means the
    recorded checksums cover exactly the bytes a later reopen will see.
    """
    crcs: List[int] = []
    with open(pages_path, "rb") as handle:
        while True:
            raw = handle.read(PAGE_SIZE)
            if not raw:
                break
            if len(raw) < PAGE_SIZE:
                raise PersistenceError(
                    f"page dump {pages_path!r} ends mid-page "
                    f"({len(raw)} trailing bytes)"
                )
            crcs.append(zlib.crc32(raw))
    return crcs


def _file_crc(path: str) -> int:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 16)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc


# ----------------------------------------------------------------------
# saving
# ----------------------------------------------------------------------
def save_engine(
    engine: CubetreeEngine,
    directory: str,
    crash_point: Optional[CrashPoint] = None,
    retain: int = DEFAULT_RETAIN,
    protect: Collection[int] = (),
) -> str:
    """Checkpoint a loaded CubetreeEngine into a new generation.

    Returns the committed generation directory.  ``crash_point`` defaults
    to the engine disk's hook, so a test that armed
    ``engine.disk.crash_point`` kills the checkpoint the same way it kills
    a merge-pack.  ``retain`` committed generations are kept; older ones
    (and any uncommitted partials) are pruned only after the new manifest
    is in place, so a crash at any point keeps the last committed
    generation reopenable.  Generation numbers in ``protect`` are never
    pruned regardless of ``retain`` — the serving layer passes the set of
    reader-pinned generations so a snapshot someone is still reading from
    keeps its files.
    """
    forest = engine.forest
    if forest is None:
        raise PersistenceError("engine has no materialized views to save")
    if retain < 1:
        raise ValueError("retain must be >= 1")
    if crash_point is None:
        crash_point = getattr(engine.disk, "crash_point", None)

    os.makedirs(directory, exist_ok=True)
    engine.pool.flush_all()

    generations = _list_generations(directory)
    number = (generations[-1][0] + 1) if generations else 1
    gen_path = os.path.join(directory, _generation_name(number))
    os.makedirs(gen_path)

    # 1. the page dump (one crash site per page, inside dump_pages)
    pages_path = os.path.join(gen_path, PAGES_NAME)
    engine.disk.dump_pages(pages_path, crash_point=crash_point)

    # 2. per-page checksums, read back from the dump just written
    page_crcs = _page_checksums(pages_path)
    crc_payload = b"".join(crc.to_bytes(4, "little") for crc in page_crcs)
    crc_path = os.path.join(gen_path, CHECKSUMS_NAME)
    _write_file(crc_path, crc_payload, crash_point, "checkpoint page checksums")

    # 3. the catalog
    meta_payload = _meta_bytes(_build_meta(engine, forest))
    meta_path = os.path.join(gen_path, META_NAME)
    _write_file(meta_path, meta_payload, crash_point, "checkpoint catalog")

    # 4. the commit record: temp write, fsync, atomic rename
    manifest = {
        "format_version": FORMAT_VERSION,
        "generation": number,
        "page_count": len(page_crcs),
        "files": {
            PAGES_NAME: {
                "bytes": os.path.getsize(pages_path),
                "crc32": _file_crc(pages_path),
            },
            CHECKSUMS_NAME: {
                "bytes": len(crc_payload),
                "crc32": zlib.crc32(crc_payload),
            },
            META_NAME: {
                "bytes": len(meta_payload),
                "crc32": zlib.crc32(meta_payload),
            },
        },
    }
    manifest_tmp = os.path.join(gen_path, MANIFEST_NAME + ".tmp")
    manifest_path = os.path.join(gen_path, MANIFEST_NAME)
    _write_file(
        manifest_tmp,
        _meta_bytes(manifest),
        crash_point,
        "checkpoint manifest write",
    )
    _crash_hit(crash_point, "checkpoint manifest commit")
    os.rename(manifest_tmp, manifest_path)
    _fsync_dir(gen_path)
    _fsync_dir(directory)

    # 5. only now retire older generations (and stale partials)
    _crash_hit(crash_point, "checkpoint prune")
    _prune(directory, keep_newest=number, retain=retain, protect=protect)
    return gen_path


def _prune(
    directory: str,
    keep_newest: int,
    retain: int,
    protect: Collection[int] = (),
) -> None:
    """Remove uncommitted partials and committed gens beyond ``retain``.

    Numbers in ``protect`` (committed generations still pinned by a
    reader) are kept no matter how old they are; uncommitted partials are
    never protectable — nothing can pin crash debris.
    """
    import shutil

    committed = [
        (number, path)
        for number, path in _list_generations(directory)
        if _committed(path)
    ]
    keep = {number for number, _ in committed[-retain:]}
    keep.add(keep_newest)
    keep.update(number for number, _path in committed if number in set(protect))
    for number, path in _list_generations(directory):
        if number in keep:
            continue
        shutil.rmtree(path, ignore_errors=True)


def prune_generations(
    directory: str,
    retain: int = DEFAULT_RETAIN,
    protect: Collection[int] = (),
    crash_point: Optional[CrashPoint] = None,
) -> None:
    """Retire prunable generations of a saved database.

    The standalone companion to the prune step of :func:`save_engine`:
    keeps the newest ``retain`` committed generations plus every number
    in ``protect`` (reader-pinned snapshots), removes everything else —
    including uncommitted partials left by crashes.  No-op when the
    directory holds no committed generation (there is nothing safe to
    judge "older than").
    """
    if retain < 1:
        raise ValueError("retain must be >= 1")
    newest = newest_committed_number(directory)
    if newest is None:
        return
    _crash_hit(crash_point, "checkpoint prune")
    _prune(directory, keep_newest=newest, retain=retain, protect=protect)


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------
@dataclass
class CheckpointReport:
    """Result of validating a saved database's newest committed generation."""

    directory: str
    generation: Optional[int] = None
    pages_checked: int = 0
    files_checked: int = 0
    partial_generations: List[str] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the newest committed generation validated cleanly."""
        return not self.problems

    def format(self) -> str:
        """Human-readable multi-line summary."""
        head = (
            f"checkpoint {self.directory}: "
            + (
                f"generation {self.generation}, "
                if self.generation is not None
                else ""
            )
            + f"{self.files_checked} file(s), {self.pages_checked} page(s) "
            f"checked: {len(self.problems)} problem(s)"
        )
        lines = [head]
        lines.extend(f"  [corrupt] {problem}" for problem in self.problems)
        lines.extend(f"  [note] {note}" for note in self.notes)
        lines.extend(
            f"  [partial] discarded uncommitted generation {name}"
            for name in self.partial_generations
        )
        return "\n".join(lines)


def _newest_committed(directory: str) -> Tuple[Optional[str], List[str]]:
    """Newest manifest-complete generation path + names of partials."""
    newest: Optional[str] = None
    partials: List[str] = []
    for _number, path in _list_generations(directory):
        if _committed(path):
            newest = path
        else:
            partials.append(os.path.basename(path))
    return newest, partials


def _read_manifest(gen_path: str) -> dict:
    manifest_path = os.path.join(gen_path, MANIFEST_NAME)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CorruptCheckpointError(
            f"unreadable manifest in {gen_path!r}: {exc}"
        ) from exc
    if manifest.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        raise PersistenceError(
            f"unsupported checkpoint format version "
            f"{manifest.get('format_version')!r} in {gen_path!r}"
        )
    return manifest


def _validate_pages(
    gen_path: str,
    rel_dir: str,
    expected_pages: Optional[int],
    report: CheckpointReport,
) -> None:
    """Per-page CRC pass: every page of a dump against its sidecar.

    ``rel_dir`` is ``""`` for the single-tree layout or ``shard-XX`` for
    one shard of a sharded generation; problem messages carry the
    relative path so a sharded report names the failing shard.
    """
    base = os.path.join(gen_path, rel_dir) if rel_dir else gen_path
    prefix = f"{rel_dir}/" if rel_dir else ""
    pages_path = os.path.join(base, PAGES_NAME)
    crc_path = os.path.join(base, CHECKSUMS_NAME)
    if not (os.path.exists(pages_path) and os.path.exists(crc_path)):
        return
    with open(crc_path, "rb") as handle:
        raw = handle.read()
    recorded = [
        int.from_bytes(raw[i : i + 4], "little")
        for i in range(0, len(raw), 4)
    ]
    if expected_pages is None:
        expected_pages = len(recorded)
    expected_pages = int(expected_pages)
    if len(recorded) != expected_pages:
        report.problems.append(
            f"{prefix}{CHECKSUMS_NAME}: {len(recorded)} page checksums, "
            f"manifest records {expected_pages} pages"
        )
    with open(pages_path, "rb") as handle:
        page_id = 0
        while True:
            page = handle.read(PAGE_SIZE)
            if not page:
                break
            if len(page) < PAGE_SIZE:
                report.problems.append(
                    f"{prefix}{PAGES_NAME}: ends mid-page after page "
                    f"{page_id}"
                )
                break
            report.pages_checked += 1
            if page_id < len(recorded) and (
                zlib.crc32(page) != recorded[page_id]
            ):
                report.problems.append(
                    f"{prefix}{PAGES_NAME}: page {page_id} fails its CRC32"
                )
            page_id += 1
    if page_id != expected_pages:
        report.problems.append(
            f"{prefix}{PAGES_NAME}: holds {page_id} pages, manifest "
            f"records {expected_pages}"
        )


def _validate_generation(gen_path: str, report: CheckpointReport) -> dict:
    """Verify a committed generation against its manifest; return it."""
    manifest = _read_manifest(gen_path)
    files = manifest.get("files", {})
    for name, expected in sorted(files.items()):
        path = os.path.join(gen_path, name)
        if not os.path.exists(path):
            report.problems.append(f"{name}: listed in manifest but missing")
            continue
        report.files_checked += 1
        actual_bytes = os.path.getsize(path)
        if actual_bytes != int(expected["bytes"]):
            report.problems.append(
                f"{name}: {actual_bytes} bytes on disk, manifest records "
                f"{expected['bytes']}"
            )
            continue
        if _file_crc(path) != int(expected["crc32"]):
            report.problems.append(
                f"{name}: CRC32 mismatch against the manifest"
            )

    if manifest.get("layout") == LAYOUT_SHARDED:
        # Manifest completeness: every shard directory 0..N-1 must be
        # listed, and each must contribute its full file triple — one
        # missing shard means the commit would resurrect a torn forest.
        shard_entries = manifest.get("shards", [])
        num_shards = int(manifest.get("num_shards", len(shard_entries)))
        listed = {str(entry.get("dir")) for entry in shard_entries}
        for index in range(num_shards):
            expected_dir = _shard_dir_name(index)
            if expected_dir not in listed:
                report.problems.append(
                    f"{expected_dir}: shard directory missing from the "
                    f"manifest"
                )
        for entry in shard_entries:
            sub = str(entry.get("dir"))
            for name in (PAGES_NAME, CHECKSUMS_NAME, SHARD_META_NAME):
                if f"{sub}/{name}" not in files:
                    report.problems.append(
                        f"{sub}/{name}: not covered by the manifest"
                    )
            _validate_pages(gen_path, sub, entry.get("page_count"), report)
        if META_NAME not in files:
            report.problems.append(
                f"{META_NAME}: not covered by the manifest"
            )
    else:
        # Per-page checksums: every page of pages.bin against pages.crc.
        _validate_pages(gen_path, "", manifest.get("page_count"), report)
    return manifest


def verify_checkpoint(directory: str) -> CheckpointReport:
    """Checksum-validate the newest committed generation of a database.

    Partial (manifest-less) generations are reported but are not
    problems — they are exactly what a crash leaves behind and recovery
    discards them.  A v1 flat-layout database yields a problem entry
    (v1 carries no checksums to verify).
    """
    report = CheckpointReport(directory=directory)
    newest, partials = _newest_committed(directory)
    report.partial_generations = partials
    if newest is None:
        if _has_v1_layout(directory):
            report.notes.append(
                "v1 flat layout: carries no checksums to verify "
                "(resave to migrate to the v2 generational format)"
            )
            return report
        report.problems.append("no committed generation found")
        return report
    try:
        manifest = _validate_generation(newest, report)
        report.generation = int(manifest["generation"])
    except PersistenceError as exc:
        report.problems.append(str(exc))
    return report


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def _has_v1_layout(directory: str) -> bool:
    return os.path.exists(os.path.join(directory, META_NAME)) and os.path.exists(
        os.path.join(directory, PAGES_NAME)
    )


def load_engine(
    directory: str, pool_cls: Optional[Type] = None
) -> CubetreeEngine:
    """Reopen a database saved by :func:`save_engine`.

    Recovery rule: the newest generation whose ``MANIFEST.json`` exists is
    the database; generations without a manifest are crash debris and are
    ignored.  Every file of the chosen generation is checksum-verified
    before a single page is trusted — a torn or bit-flipped checkpoint
    raises :class:`CorruptCheckpointError` instead of silently loading.
    Directories written by format v1 (flat ``meta.json`` + ``pages.bin``)
    are still readable.  ``pool_cls`` is forwarded to the reopened
    engine's buffer pool (the serving layer passes
    :class:`~repro.storage.buffer.SharedBufferPool`).
    """
    newest, _partials = _newest_committed(directory)
    if newest is not None:
        report = CheckpointReport(directory=directory)
        manifest = _validate_generation(newest, report)
        if manifest.get("layout") == LAYOUT_SHARDED:
            raise PersistenceError(
                f"{newest!r} is a sharded checkpoint; open it with "
                f"load_sharded_engine or load_any_engine"
            )
        if not report.ok:
            raise CorruptCheckpointError(
                f"checkpoint {newest!r} failed validation:\n"
                + "\n".join(f"  {problem}" for problem in report.problems)
            )
        return _load_layout(
            os.path.join(newest, META_NAME),
            os.path.join(newest, PAGES_NAME),
            expected_versions=SUPPORTED_FORMAT_VERSIONS,
            pool_cls=pool_cls,
        )
    if _has_v1_layout(directory):
        return _load_layout(
            os.path.join(directory, META_NAME),
            os.path.join(directory, PAGES_NAME),
            expected_versions=(1,),
            pool_cls=pool_cls,
        )
    raise PersistenceError(f"no saved database in {directory!r}")


def _allocation_from_json(assignments: List[dict]) -> CubetreeAllocation:
    trees: List[TreeAssignment] = []
    for assignment in assignments:
        trees.append(
            TreeAssignment(
                int(assignment["dims"]),
                tuple(_view_from_json(v) for v in assignment["views"]),
            )
        )
    return CubetreeAllocation(trees=trees)


def _load_layout(
    meta_path: str,
    pages_path: str,
    expected_versions: Tuple[int, ...],
    pool_cls: Optional[Type] = None,
) -> CubetreeEngine:
    with open(meta_path) as handle:
        meta = json.load(handle)
    if meta.get("format_version") not in expected_versions:
        raise PersistenceError(
            f"unsupported format version {meta.get('format_version')!r} "
            f"(expected one of {expected_versions})"
        )

    schema = _schema_from_json(meta["schema"])
    hierarchies: Dict[str, Hierarchy] = {}
    for item in meta["hierarchies"]:
        dim = schema.dimension_of(item["fact_key"])
        hierarchies[item["attribute"]] = Hierarchy.from_dimension(
            dim, item["dim_attribute"]
        )

    expected_pages = int(meta["disk"]["next_page_id"])
    actual_bytes = os.path.getsize(pages_path)
    if actual_bytes != expected_pages * PAGE_SIZE:
        raise PersistenceError(
            f"page dump {pages_path!r} holds {actual_bytes} bytes; the "
            f"catalog's allocator state needs exactly "
            f"{expected_pages} pages ({expected_pages * PAGE_SIZE} bytes) "
            f"— the checkpoint is torn"
        )
    disk = DiskManager.restore(pages_path, meta["disk"])
    engine = CubetreeEngine(
        schema,
        hierarchies=hierarchies,
        buffer_pages=int(meta.get("buffer_pages", 256)),
        disk=disk,
        pool_cls=pool_cls,
    )
    engine.base_views = [_view_from_json(v) for v in meta["base_views"]]
    engine.replicas = {
        str(replica): str(base)
        for replica, base in meta["replicas"].items()
    }

    tree_states = meta["trees"]
    assignments = meta["allocation"]
    if len(tree_states) != len(assignments):
        raise PersistenceError(
            f"catalog mismatch: {len(assignments)} tree assignment(s) in "
            f"the allocation but {len(tree_states)} saved tree state(s)"
        )
    allocation = _allocation_from_json(assignments)
    forest = CubetreeForest(engine.pool, allocation)
    try:
        forest.restore_tree_states(tree_states)
        forest.set_view_sizes(
            {name: int(size) for name, size in meta["sizes"].items()}
        )
    except ValueError as exc:
        raise PersistenceError(f"catalog mismatch: {exc}") from exc
    engine.forest = forest
    return engine


# ----------------------------------------------------------------------
# sharded databases (one manifest commits all shards atomically)
# ----------------------------------------------------------------------
def _build_sharded_meta(engine) -> dict:
    """The global catalog of a sharded checkpoint (shared across shards)."""
    forest = engine.forest
    return {
        "format_version": FORMAT_VERSION,
        "layout": LAYOUT_SHARDED,
        "num_shards": int(engine.num_shards),
        "schema": _schema_to_json(engine.schema),
        "hierarchies": sorted(
            (
                {
                    "attribute": str(attr),
                    "fact_key": str(source),
                    "dim_attribute": str(hierarchy.attribute),
                }
                for attr, (hierarchy, source) in engine.hierarchies.items()
            ),
            key=lambda item: item["attribute"],
        ),
        "base_views": [_view_to_json(v) for v in engine.base_views],
        "replicas": {
            str(replica): str(base)
            for replica, base in engine.replicas.items()
        },
        "allocation": [
            {
                "dims": int(assignment.dims),
                "views": [_view_to_json(v) for v in assignment.views],
            }
            for assignment in forest.shards[0].forest.allocation.trees
        ],
        "sizes": {
            str(name): int(size)
            for name, size in forest.view_sizes().items()
        },
        "buffer_pages": int(engine.shards[0].pool.capacity),
    }


def _shard_meta(shard) -> dict:
    """One shard's private catalog: tree states, sizes, allocator."""
    return {
        "format_version": FORMAT_VERSION,
        "shard": int(shard.index),
        "trees": [_tree_state(tree) for tree in shard.forest.cubetrees],
        "sizes": {
            str(name): int(size)
            for name, size in shard.forest.view_sizes().items()
        },
        "disk": {
            "next_page_id": int(
                shard.disk.allocation_state()["next_page_id"]
            ),
            "freed": [
                int(p) for p in shard.disk.allocation_state()["freed"]
            ],
        },
    }


def save_sharded_engine(
    engine,
    directory: str,
    crash_point: Optional[CrashPoint] = None,
    retain: int = DEFAULT_RETAIN,
    protect: Collection[int] = (),
) -> str:
    """Checkpoint a :class:`~repro.core.sharded.ShardedCubetreeEngine`.

    Layout: ``gen-<n>/shard-XX/{pages.bin,pages.crc,shard.json}`` per
    shard plus one top-level ``meta.json`` (global catalog) and ONE
    ``MANIFEST.json`` listing every shard file — the single atomic
    manifest rename commits all shards together, so a crash anywhere
    mid-checkpoint leaves *every* shard on the previous generation (the
    all-or-nothing property the serving layer's publish depends on).

    ``crash_point`` defaults to the first armed per-shard disk hook (or
    shard 0's); per-shard write sites hit it with contexts prefixed
    ``shard <i> ``, while the commit-level sites keep the unsharded
    context names, so the same crash matrix drives both layouts.
    """
    forest = engine.forest
    if forest is None:
        raise PersistenceError("engine has no materialized views to save")
    if retain < 1:
        raise ValueError("retain must be >= 1")
    if crash_point is None:
        for shard in engine.shards:
            candidate = getattr(shard.disk, "crash_point", None)
            if candidate is not None and getattr(candidate, "armed", False):
                crash_point = candidate
                break
        else:
            crash_point = getattr(engine.shards[0].disk, "crash_point", None)

    os.makedirs(directory, exist_ok=True)
    for shard in engine.shards:
        shard.pool.flush_all()

    generations = _list_generations(directory)
    number = (generations[-1][0] + 1) if generations else 1
    gen_path = os.path.join(directory, _generation_name(number))
    os.makedirs(gen_path)

    files: Dict[str, dict] = {}
    shard_entries: List[dict] = []
    total_pages = 0
    for shard in engine.shards:
        sub = _shard_dir_name(shard.index)
        shard_path = os.path.join(gen_path, sub)
        os.makedirs(shard_path)
        shard_hook = (
            _ShardCrashPoint(crash_point, shard.index)
            if crash_point is not None
            else None
        )

        # 1. the shard's page dump (one crash site per page)
        pages_path = os.path.join(shard_path, PAGES_NAME)
        shard.disk.dump_pages(pages_path, crash_point=shard_hook)

        # 2. per-page checksums, read back from the dump just written
        page_crcs = _page_checksums(pages_path)
        crc_payload = b"".join(
            crc.to_bytes(4, "little") for crc in page_crcs
        )
        _write_file(
            os.path.join(shard_path, CHECKSUMS_NAME),
            crc_payload,
            shard_hook,
            "checkpoint page checksums",
        )

        # 3. the shard catalog
        shard_payload = _meta_bytes(_shard_meta(shard))
        _write_file(
            os.path.join(shard_path, SHARD_META_NAME),
            shard_payload,
            shard_hook,
            "checkpoint catalog",
        )

        files[f"{sub}/{PAGES_NAME}"] = {
            "bytes": os.path.getsize(pages_path),
            "crc32": _file_crc(pages_path),
        }
        files[f"{sub}/{CHECKSUMS_NAME}"] = {
            "bytes": len(crc_payload),
            "crc32": zlib.crc32(crc_payload),
        }
        files[f"{sub}/{SHARD_META_NAME}"] = {
            "bytes": len(shard_payload),
            "crc32": zlib.crc32(shard_payload),
        }
        shard_entries.append({"dir": sub, "page_count": len(page_crcs)})
        total_pages += len(page_crcs)

    # 4. the global catalog
    meta_payload = _meta_bytes(_build_sharded_meta(engine))
    _write_file(
        os.path.join(gen_path, META_NAME),
        meta_payload,
        crash_point,
        "checkpoint catalog",
    )
    files[META_NAME] = {
        "bytes": len(meta_payload),
        "crc32": zlib.crc32(meta_payload),
    }

    # 5. the commit record: ONE manifest rename commits every shard
    manifest = {
        "format_version": FORMAT_VERSION,
        "layout": LAYOUT_SHARDED,
        "generation": number,
        "num_shards": int(engine.num_shards),
        "page_count": total_pages,
        "shards": shard_entries,
        "files": files,
    }
    manifest_tmp = os.path.join(gen_path, MANIFEST_NAME + ".tmp")
    manifest_path = os.path.join(gen_path, MANIFEST_NAME)
    _write_file(
        manifest_tmp,
        _meta_bytes(manifest),
        crash_point,
        "checkpoint manifest write",
    )
    _crash_hit(crash_point, "checkpoint manifest commit")
    os.rename(manifest_tmp, manifest_path)
    _fsync_dir(gen_path)
    _fsync_dir(directory)

    # 6. only now retire older generations (and stale partials)
    _crash_hit(crash_point, "checkpoint prune")
    _prune(directory, keep_newest=number, retain=retain, protect=protect)
    return gen_path


def save_database(
    engine,
    directory: str,
    crash_point: Optional[CrashPoint] = None,
    retain: int = DEFAULT_RETAIN,
    protect: Collection[int] = (),
) -> str:
    """Checkpoint either engine flavor (layout picked by engine type)."""
    from repro.core.sharded import ShardedCubetreeEngine

    if isinstance(engine, ShardedCubetreeEngine):
        return save_sharded_engine(
            engine, directory,
            crash_point=crash_point, retain=retain, protect=protect,
        )
    return save_engine(
        engine, directory,
        crash_point=crash_point, retain=retain, protect=protect,
    )


def load_sharded_engine(directory: str, pool_cls: Optional[Type] = None):
    """Reopen a database saved by :func:`save_sharded_engine`.

    Same recovery rule as :func:`load_engine` — newest manifest-complete
    generation, every file checksum-verified first — then each shard's
    disk, forest, and sizes are restored from its ``shard-XX/`` files.
    """
    from repro.core.sharded import ShardedCubetreeEngine, ShardedForest

    newest, _partials = _newest_committed(directory)
    if newest is None:
        raise PersistenceError(f"no saved sharded database in {directory!r}")
    report = CheckpointReport(directory=directory)
    manifest = _validate_generation(newest, report)
    if manifest.get("layout") != LAYOUT_SHARDED:
        raise PersistenceError(
            f"{newest!r} is not a sharded checkpoint; use load_engine"
        )
    if not report.ok:
        raise CorruptCheckpointError(
            f"checkpoint {newest!r} failed validation:\n"
            + "\n".join(f"  {problem}" for problem in report.problems)
        )

    with open(os.path.join(newest, META_NAME)) as handle:
        meta = json.load(handle)
    if meta.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        raise PersistenceError(
            f"unsupported format version {meta.get('format_version')!r} "
            f"(expected one of {SUPPORTED_FORMAT_VERSIONS})"
        )

    schema = _schema_from_json(meta["schema"])
    hierarchies: Dict[str, Hierarchy] = {}
    for item in meta["hierarchies"]:
        dim = schema.dimension_of(item["fact_key"])
        hierarchies[item["attribute"]] = Hierarchy.from_dimension(
            dim, item["dim_attribute"]
        )

    num_shards = int(meta["num_shards"])
    disks: List[DiskManager] = []
    shard_metas: List[dict] = []
    for index in range(num_shards):
        shard_path = os.path.join(newest, _shard_dir_name(index))
        with open(os.path.join(shard_path, SHARD_META_NAME)) as handle:
            smeta = json.load(handle)
        pages_path = os.path.join(shard_path, PAGES_NAME)
        expected_pages = int(smeta["disk"]["next_page_id"])
        actual_bytes = os.path.getsize(pages_path)
        if actual_bytes != expected_pages * PAGE_SIZE:
            raise PersistenceError(
                f"page dump {pages_path!r} holds {actual_bytes} bytes; "
                f"the shard catalog's allocator state needs exactly "
                f"{expected_pages} pages — the checkpoint is torn"
            )
        disks.append(DiskManager.restore(pages_path, smeta["disk"]))
        shard_metas.append(smeta)

    engine = ShardedCubetreeEngine(
        schema,
        hierarchies=hierarchies,
        buffer_pages=int(meta.get("buffer_pages", 256)),
        shards=num_shards,
        disks=disks,
        pool_cls=pool_cls,
    )
    engine.base_views = [_view_from_json(v) for v in meta["base_views"]]
    engine.replicas = {
        str(replica): str(base)
        for replica, base in meta["replicas"].items()
    }
    allocation = _allocation_from_json(meta["allocation"])
    for shard, smeta in zip(engine.shards, shard_metas):
        forest = CubetreeForest(shard.pool, allocation)
        try:
            forest.restore_tree_states(smeta["trees"])
            forest.set_view_sizes(
                {name: int(size) for name, size in smeta["sizes"].items()}
            )
        except ValueError as exc:
            raise PersistenceError(f"catalog mismatch: {exc}") from exc
        shard.forest = forest
    engine.forest = ShardedForest(engine.shards)
    return engine


def load_any_engine(directory: str, pool_cls: Optional[Type] = None):
    """Reopen a saved database of either layout.

    Dispatches on the newest committed generation's manifest ``layout``
    key: sharded checkpoints come back as
    :class:`~repro.core.sharded.ShardedCubetreeEngine`, everything else
    (v2 single-tree and v1 flat) as the classic
    :class:`~repro.core.engine.CubetreeEngine`.  The serving layer opens
    databases through this, so a sharded database serves transparently.
    """
    newest, _partials = _newest_committed(directory)
    if newest is not None:
        if _read_manifest(newest).get("layout") == LAYOUT_SHARDED:
            return load_sharded_engine(directory, pool_cls=pool_cls)
    return load_engine(directory, pool_cls=pool_cls)
