"""Data-cube machinery: the group-by lattice, sort-based cube computation,
size estimation, and view/index selection.

These components set up the experiments exactly the way the paper does:
the lattice of Fig. 9 defines the candidate views, the GHRU 1-greedy
algorithm picks the views *and* indexes to materialize, and the sort-based
computation derives every view from its smallest materialized parent
(Fig. 10, [AAD+96]).
"""

from repro.cube.computation import CubeComputation, CubePlanStep
from repro.cube.cost import cardenas_estimate, estimate_view_size, query_cost
from repro.cube.lattice import CubeLattice
from repro.cube.selection import GreedySelection, select_views_and_indexes

__all__ = [
    "CubeComputation",
    "CubeLattice",
    "CubePlanStep",
    "GreedySelection",
    "cardenas_estimate",
    "estimate_view_size",
    "query_cost",
    "select_views_and_indexes",
]
