"""Sort-based cube computation from the smallest parent.

Implements the [AAD+96]-style strategy the paper uses (Fig. 10/11): the set
of materialized views is computed as a pipeline where each view is derived
from the smallest already-computed view that can answer it, falling back to
the fact table only when necessary.  Hierarchy attributes (``brand``,
``month``...) are resolved by rolling fact keys up through their
:class:`~repro.warehouse.hierarchy.Hierarchy`.

The output per view is a list of *state rows* (group attribute values
followed by mergeable aggregate states), sorted by the view's group-by
attributes — the sorted runs that both storage engines load from (the sort
"can be hardly considered as an overhead, since sorting is at the same time
used for computing the views", Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cube.cost import estimate_view_size
from repro.errors import SchemaError
from repro.relational.executor import (
    make_key_extractor,
    make_row_projector,
    reaggregate_states,
    sort_group_aggregate,
)
from repro.relational.view import ViewDefinition
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import StarSchema

Row = Tuple[object, ...]


@dataclass(frozen=True)
class CubePlanStep:
    """One step of the computation plan: a view and its source."""

    view: ViewDefinition
    parent: Optional[str]  # parent view name; None means the fact table

    def describe(self) -> str:
        """One-line rendering, e.g. ``V_p <- V_ps``."""
        source = self.parent if self.parent is not None else "F"
        return f"{self.view.name} <- {source}"


class CubeComputation:
    """Plans and executes the computation of a set of aggregate views."""

    def __init__(
        self,
        schema: StarSchema,
        hierarchies: Optional[Mapping[str, Hierarchy]] = None,
        sorter=None,
    ) -> None:
        """``sorter(rows, key) -> sorted rows`` lets engines route the sort
        through the paged substrate (external sort); the default sorts in
        memory."""
        self.schema = schema
        self.sorter = sorter
        self.hierarchies: Dict[str, Hierarchy] = dict(hierarchies or {})
        self._distinct = {
            attr: float(schema.distinct_count(attr))
            for attr in schema.groupable_attributes()
        }
        for attr, hierarchy in self.hierarchies.items():
            self._distinct.setdefault(attr, float(hierarchy.distinct_count()))

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def estimated_size(self, view: ViewDefinition, num_facts: int) -> float:
        """Expected tuple count of a view (Cardenas estimate)."""
        for attr in view.group_by:
            if attr not in self._distinct:
                raise SchemaError(
                    f"view {view.name!r}: attribute {attr!r} is neither a "
                    f"fact key nor a known hierarchy attribute"
                )
        return estimate_view_size(view.group_by, self._distinct, num_facts)

    def can_derive(
        self, child: ViewDefinition, parent: ViewDefinition
    ) -> bool:
        """True when the child is computable from the parent's tuples."""
        if child.aggregates != parent.aggregates:
            return False
        parent_attrs = set(parent.group_by)
        for attr in child.group_by:
            if attr in parent_attrs:
                continue
            hierarchy = self.hierarchies.get(attr)
            if hierarchy is None:
                return False
            source = self._source_key(hierarchy)
            if source not in parent_attrs:
                return False
        return True

    def plan(
        self, views: Sequence[ViewDefinition], num_facts: int
    ) -> List[CubePlanStep]:
        """Order views largest-first and pick each one's smallest parent."""
        ordered = sorted(
            views,
            key=lambda v: self.estimated_size(v, num_facts),
            reverse=True,
        )
        steps: List[CubePlanStep] = []
        for view in ordered:
            parent_name: Optional[str] = None
            parent_size = float(num_facts)
            for earlier in steps:
                if not self.can_derive(view, earlier.view):
                    continue
                size = self.estimated_size(earlier.view, num_facts)
                # Strictly-smaller wins; equal-size candidates tie-break
                # on view name so the plan is stable regardless of the
                # order the views were supplied in.
                if size < parent_size or (
                    size == parent_size
                    and (parent_name is None or earlier.view.name < parent_name)
                ):
                    parent_name = earlier.view.name
                    parent_size = size
            steps.append(CubePlanStep(view, parent_name))
        return steps

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        fact_rows: Sequence[Row],
        views: Sequence[ViewDefinition],
    ) -> Dict[str, List[Row]]:
        """Compute every view; returns name -> sorted state rows."""
        steps = self.plan(views, len(fact_rows))
        results: Dict[str, List[Row]] = {}
        defs = {view.name: view for view in views}
        for step in steps:
            if step.parent is None:
                rows = self._compute_from_fact(fact_rows, step.view)
            else:
                rows = self._compute_from_parent(
                    results[step.parent], defs[step.parent], step.view
                )
            results[step.view.name] = rows
        return results

    def compute_one_from_fact(
        self, fact_rows: Sequence[Row], view: ViewDefinition
    ) -> List[Row]:
        """Compute a single view straight from fact rows (used for deltas)."""
        return self._compute_from_fact(fact_rows, view)

    def compute_from_fact_rows(self, fact_rows, view: ViewDefinition):
        """Public step API: aggregate a fact-row stream into one view.

        Engines use this to drive plan steps against their own physical
        sources (e.g. a heap-file scan of the fact table).
        """
        return self._compute_from_fact(fact_rows, view)

    def compute_from_parent_rows(
        self, parent_rows, parent: ViewDefinition, child: ViewDefinition
    ):
        """Public step API: derive a child view from a parent-row stream."""
        return self._compute_from_parent(parent_rows, parent, child)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sorted(self, rows, key):
        if self.sorter is not None:
            result = self.sorter(rows, key)
            return result if isinstance(result, list) else list(result)
        rows.sort(key=key)
        return rows

    def _source_key(self, hierarchy: Hierarchy) -> str:
        for fact_key in self.schema.fact_keys:
            if self.schema.dimensions[fact_key].name == hierarchy.dimension:
                return fact_key
        raise SchemaError(
            f"hierarchy over unknown dimension {hierarchy.dimension!r}"
        )

    def _group_columns(self, view: ViewDefinition, source_columns):
        """Resolve group attributes against source columns.

        Returns ``(indexes, rollups)`` where ``indexes[j]`` is the source
        column of group attribute ``j`` and ``rollups`` maps the positions
        that must additionally be rolled up through a hierarchy.  A view
        whose attributes are all plain source columns gets an empty
        ``rollups`` — the projection then runs as one ``itemgetter``.
        """
        indexes: List[int] = []
        rollups: List[Tuple[int, Hierarchy]] = []
        for j, attr in enumerate(view.group_by):
            if attr in source_columns:
                indexes.append(source_columns.index(attr))
            else:
                hierarchy = self.hierarchies.get(attr)
                if hierarchy is None:
                    raise SchemaError(
                        f"view {view.name!r}: attribute {attr!r} is neither "
                        f"a fact key nor a known hierarchy attribute"
                    )
                source = self._source_key(hierarchy)
                indexes.append(source_columns.index(source))
                rollups.append((j, hierarchy))
        return indexes, rollups

    def _project(self, rows, group_idxs, rollups, extra_idxs):
        """Project ``group columns + extra columns`` from every row.

        The all-plain-columns case (no hierarchy roll-ups) is a single
        ``itemgetter`` per row; roll-ups patch their positions afterwards.
        """
        getter = make_row_projector(tuple(group_idxs) + tuple(extra_idxs))
        if not rollups:
            return [getter(row) for row in rows]
        out: List[Row] = []
        for row in rows:
            flat = list(getter(row))
            for j, hierarchy in rollups:
                flat[j] = hierarchy.roll_up(flat[j])
            out.append(tuple(flat))
        return out

    def _compute_from_fact(
        self, fact_rows: Sequence[Row], view: ViewDefinition
    ) -> List[Row]:
        fact_columns = self.schema.fact_columns
        group_idxs, rollups = self._group_columns(view, fact_columns)
        k = view.arity

        # Project the measure column of each aggregate (COUNT needs none;
        # it reuses the primary measure's slot, which it ignores).
        primary_idx = len(self.schema.fact_keys)
        measure_slots: List[int] = []
        measure_idxs: List[int] = []
        for spec in view.aggregates:
            attr = spec.attribute or self.schema.measure
            if attr not in self.schema.measures:
                raise SchemaError(
                    f"view {view.name!r}: {attr!r} is not a measure"
                )
            src = fact_columns.index(attr) if spec.attribute else primary_idx
            if src not in measure_idxs:
                measure_idxs.append(src)
            measure_slots.append(k + measure_idxs.index(src))

        projected = self._project(fact_rows, group_idxs, rollups, measure_idxs)
        projected = self._sorted(projected, make_key_extractor(range(k)))
        measures = [
            (spec.func, slot)
            for spec, slot in zip(view.aggregates, measure_slots)
        ]
        return list(
            sort_group_aggregate(projected, list(range(k)), measures)
        )

    def _compute_from_parent(
        self,
        parent_rows: Sequence[Row],
        parent: ViewDefinition,
        child: ViewDefinition,
    ) -> List[Row]:
        parent_attrs = tuple(parent.group_by)
        k_child = child.arity
        group_idxs, rollups = self._group_columns(child, parent_attrs)

        state_offset = parent.arity
        width = parent.total_state_width
        state_idxs = range(state_offset, state_offset + width)
        projected = self._project(parent_rows, group_idxs, rollups, state_idxs)
        projected = self._sorted(projected, make_key_extractor(range(k_child)))

        # State slices relative to the projected rows.
        slices = []
        offset = k_child
        for spec, w in zip(child.aggregates, child.state_widths):
            slices.append((spec.func, slice(offset, offset + w)))
            offset += w
        return list(
            reaggregate_states(projected, list(range(k_child)), slices)
        )
