"""Sort-based cube computation from the smallest parent.

Implements the [AAD+96]-style strategy the paper uses (Fig. 10/11): the set
of materialized views is computed as a pipeline where each view is derived
from the smallest already-computed view that can answer it, falling back to
the fact table only when necessary.  Hierarchy attributes (``brand``,
``month``...) are resolved by rolling fact keys up through their
:class:`~repro.warehouse.hierarchy.Hierarchy`.

The output per view is a list of *state rows* (group attribute values
followed by mergeable aggregate states), sorted by the view's group-by
attributes — the sorted runs that both storage engines load from (the sort
"can be hardly considered as an overhead, since sorting is at the same time
used for computing the views", Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cube.cost import estimate_view_size
from repro.errors import SchemaError
from repro.relational.executor import (
    reaggregate_states,
    sort_group_aggregate,
)
from repro.relational.view import ViewDefinition
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import StarSchema

Row = Tuple[object, ...]


@dataclass(frozen=True)
class CubePlanStep:
    """One step of the computation plan: a view and its source."""

    view: ViewDefinition
    parent: Optional[str]  # parent view name; None means the fact table

    def describe(self) -> str:
        """One-line rendering, e.g. ``V_p <- V_ps``."""
        source = self.parent if self.parent is not None else "F"
        return f"{self.view.name} <- {source}"


class CubeComputation:
    """Plans and executes the computation of a set of aggregate views."""

    def __init__(
        self,
        schema: StarSchema,
        hierarchies: Optional[Mapping[str, Hierarchy]] = None,
        sorter=None,
    ) -> None:
        """``sorter(rows, key) -> sorted rows`` lets engines route the sort
        through the paged substrate (external sort); the default sorts in
        memory."""
        self.schema = schema
        self.sorter = sorter
        self.hierarchies: Dict[str, Hierarchy] = dict(hierarchies or {})
        self._distinct = {
            attr: float(schema.distinct_count(attr))
            for attr in schema.groupable_attributes()
        }
        for attr, hierarchy in self.hierarchies.items():
            self._distinct.setdefault(attr, float(hierarchy.distinct_count()))

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def estimated_size(self, view: ViewDefinition, num_facts: int) -> float:
        """Expected tuple count of a view (Cardenas estimate)."""
        for attr in view.group_by:
            if attr not in self._distinct:
                raise SchemaError(
                    f"view {view.name!r}: attribute {attr!r} is neither a "
                    f"fact key nor a known hierarchy attribute"
                )
        return estimate_view_size(view.group_by, self._distinct, num_facts)

    def can_derive(
        self, child: ViewDefinition, parent: ViewDefinition
    ) -> bool:
        """True when the child is computable from the parent's tuples."""
        if child.aggregates != parent.aggregates:
            return False
        parent_attrs = set(parent.group_by)
        for attr in child.group_by:
            if attr in parent_attrs:
                continue
            hierarchy = self.hierarchies.get(attr)
            if hierarchy is None:
                return False
            source = self._source_key(hierarchy)
            if source not in parent_attrs:
                return False
        return True

    def plan(
        self, views: Sequence[ViewDefinition], num_facts: int
    ) -> List[CubePlanStep]:
        """Order views largest-first and pick each one's smallest parent."""
        ordered = sorted(
            views,
            key=lambda v: self.estimated_size(v, num_facts),
            reverse=True,
        )
        steps: List[CubePlanStep] = []
        for view in ordered:
            parent_name: Optional[str] = None
            parent_size = float(num_facts)
            for earlier in steps:
                if not self.can_derive(view, earlier.view):
                    continue
                size = self.estimated_size(earlier.view, num_facts)
                if size <= parent_size:
                    parent_name = earlier.view.name
                    parent_size = size
            steps.append(CubePlanStep(view, parent_name))
        return steps

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        fact_rows: Sequence[Row],
        views: Sequence[ViewDefinition],
    ) -> Dict[str, List[Row]]:
        """Compute every view; returns name -> sorted state rows."""
        steps = self.plan(views, len(fact_rows))
        results: Dict[str, List[Row]] = {}
        defs = {view.name: view for view in views}
        for step in steps:
            if step.parent is None:
                rows = self._compute_from_fact(fact_rows, step.view)
            else:
                rows = self._compute_from_parent(
                    results[step.parent], defs[step.parent], step.view
                )
            results[step.view.name] = rows
        return results

    def compute_one_from_fact(
        self, fact_rows: Sequence[Row], view: ViewDefinition
    ) -> List[Row]:
        """Compute a single view straight from fact rows (used for deltas)."""
        return self._compute_from_fact(fact_rows, view)

    def compute_from_fact_rows(self, fact_rows, view: ViewDefinition):
        """Public step API: aggregate a fact-row stream into one view.

        Engines use this to drive plan steps against their own physical
        sources (e.g. a heap-file scan of the fact table).
        """
        return self._compute_from_fact(fact_rows, view)

    def compute_from_parent_rows(
        self, parent_rows, parent: ViewDefinition, child: ViewDefinition
    ):
        """Public step API: derive a child view from a parent-row stream."""
        return self._compute_from_parent(parent_rows, parent, child)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sorted(self, rows, key):
        if self.sorter is not None:
            return list(self.sorter(rows, key))
        rows.sort(key=key)
        return rows

    def _source_key(self, hierarchy: Hierarchy) -> str:
        for fact_key in self.schema.fact_keys:
            if self.schema.dimensions[fact_key].name == hierarchy.dimension:
                return fact_key
        raise SchemaError(
            f"hierarchy over unknown dimension {hierarchy.dimension!r}"
        )

    def _fact_extractors(self, view: ViewDefinition):
        """Per group attribute: a function fact_row -> coordinate value."""
        fact_columns = self.schema.fact_columns
        extractors = []
        for attr in view.group_by:
            if attr in fact_columns:
                idx = fact_columns.index(attr)
                extractors.append(
                    lambda row, i=idx: row[i]
                )
            else:
                hierarchy = self.hierarchies.get(attr)
                if hierarchy is None:
                    raise SchemaError(
                        f"view {view.name!r}: attribute {attr!r} is neither "
                        f"a fact key nor a known hierarchy attribute"
                    )
                source = self._source_key(hierarchy)
                idx = fact_columns.index(source)
                extractors.append(
                    lambda row, i=idx, h=hierarchy: h.roll_up(row[i])
                )
        return extractors

    def _compute_from_fact(
        self, fact_rows: Sequence[Row], view: ViewDefinition
    ) -> List[Row]:
        extractors = self._fact_extractors(view)
        k = len(extractors)
        fact_columns = self.schema.fact_columns

        # Project the measure column of each aggregate (COUNT needs none;
        # it reuses the primary measure's slot, which it ignores).
        primary_idx = len(self.schema.fact_keys)
        measure_slots: List[int] = []
        measure_idxs: List[int] = []
        for spec in view.aggregates:
            attr = spec.attribute or self.schema.measure
            if attr not in self.schema.measures:
                raise SchemaError(
                    f"view {view.name!r}: {attr!r} is not a measure"
                )
            src = fact_columns.index(attr) if spec.attribute else primary_idx
            if src not in measure_idxs:
                measure_idxs.append(src)
            measure_slots.append(k + measure_idxs.index(src))

        projected = [
            tuple(extract(row) for extract in extractors)
            + tuple(row[i] for i in measure_idxs)
            for row in fact_rows
        ]
        projected = self._sorted(projected, lambda r: r[:k])
        measures = [
            (spec.func, slot)
            for spec, slot in zip(view.aggregates, measure_slots)
        ]
        return list(
            sort_group_aggregate(projected, list(range(k)), measures)
        )

    def _compute_from_parent(
        self,
        parent_rows: Sequence[Row],
        parent: ViewDefinition,
        child: ViewDefinition,
    ) -> List[Row]:
        parent_attrs = list(parent.group_by)
        k_child = child.arity

        # Column extractors against parent state rows.
        extractors = []
        for attr in child.group_by:
            if attr in parent_attrs:
                idx = parent_attrs.index(attr)
                extractors.append(lambda row, i=idx: row[i])
            else:
                hierarchy = self.hierarchies[attr]
                source = self._source_key(hierarchy)
                idx = parent_attrs.index(source)
                extractors.append(
                    lambda row, i=idx, h=hierarchy: h.roll_up(row[i])
                )

        state_offset = parent.arity
        width = parent.total_state_width
        projected = [
            tuple(extract(row) for extract in extractors)
            + tuple(row[state_offset : state_offset + width])
            for row in parent_rows
        ]
        projected = self._sorted(projected, lambda r: r[:k_child])

        # State slices relative to the projected rows.
        slices = []
        offset = k_child
        for spec, w in zip(child.aggregates, child.state_widths):
            slices.append((spec.func, slice(offset, offset + w)))
            offset += w
        return list(
            reaggregate_states(projected, list(range(k_child)), slices)
        )
