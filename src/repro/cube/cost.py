"""Linear cost model for view/index selection (GHRU97 style).

The 1-greedy algorithm of [GHRU97] "computes the cost of answering a query
q as the total number of tuples that have to be accessed on every table and
index that is used to answer q".  This module provides:

* :func:`cardenas_estimate` / :func:`estimate_view_size` — expected number
  of distinct groups, so selection can run before anything is materialized
  (the optimizer's situation);
* :func:`query_cost` — tuples accessed to answer one slice query from one
  materialized view, with or without a usable B-tree index.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

Node = FrozenSet[str]


def cardenas_estimate(domain: float, rows: int) -> float:
    """Expected distinct values drawn in ``rows`` trials over ``domain``.

    Cardenas' formula ``D * (1 - (1 - 1/D)^n)``, evaluated stably.
    """
    if rows <= 0:
        return 0.0
    if domain <= 0:
        return 0.0
    if domain == 1:
        return 1.0
    # (1 - 1/D)^n = exp(n * log(1 - 1/D)); stable for large D.
    return domain * (1.0 - math.exp(rows * math.log1p(-1.0 / domain)))


def estimate_view_size(
    attrs: Sequence[str],
    distinct_counts: Mapping[str, float],
    num_facts: int,
    correlated_domains: Mapping[FrozenSet[str], float] | None = None,
) -> float:
    """Expected tuple count of a view grouping by ``attrs``.

    The group-key domain is the product of per-attribute distinct counts —
    unless a ``correlated_domains`` entry covers a subset of the attributes
    (e.g. TPC-D's PARTSUPP limits (partkey, suppkey) pairs to 4 per part),
    in which case that joint domain replaces its attributes' product.
    """
    attrs_set = frozenset(attrs)
    if not attrs_set:
        return 1.0
    domain = 1.0
    remaining = set(attrs_set)
    for group, joint in (correlated_domains or {}).items():
        if group <= attrs_set:
            domain *= joint
            remaining -= group
    for attr in remaining:
        domain *= float(distinct_counts[attr])
    return cardenas_estimate(domain, num_facts)


def query_cost(
    view_size: float,
    bound_attrs: Sequence[str],
    index_keys: Sequence[Tuple[str, ...]],
    distinct_counts: Mapping[str, float],
) -> float:
    """Tuples accessed to answer one slice query from one view.

    Parameters
    ----------
    view_size:
        Tuple count of the answering view.
    bound_attrs:
        Attributes carrying equality predicates.
    index_keys:
        Search keys (attribute concatenations) of the B-tree indexes built
        on this view; the Cubetree engine models its native multidimensional
        access by passing one pseudo-index per sort order.
    distinct_counts:
        Per-attribute distinct counts (selectivity denominators).

    Without a usable index the whole view is scanned.  With an index whose
    key prefix lies inside the bound attributes, the expected number of
    matching tuples under that prefix is read instead.
    """
    bound = set(bound_attrs)
    best = view_size
    for key in index_keys:
        selectivity = 1.0
        for attr in key:
            if attr not in bound:
                break
            selectivity *= float(distinct_counts[attr])
        if selectivity > 1.0:
            best = min(best, max(1.0, view_size / selectivity))
    return best


def workload_cost(
    query_types: Sequence[Tuple[Node, FrozenSet[str]]],
    materialized: Mapping[Node, float],
    indexes: Mapping[Node, Sequence[Tuple[str, ...]]],
    distinct_counts: Mapping[str, float],
    derives_from,
) -> float:
    """Total cost of a slice-query workload under a configuration.

    ``query_types`` are (grouping node, bound attribute set) pairs;
    ``materialized`` maps materialized nodes to their sizes; ``indexes``
    lists each node's index keys.  Each query picks its cheapest answering
    view.  Queries no materialized view can answer cost ``inf`` — callers
    always include the fact table as the top-most "view".
    """
    total = 0.0
    for node, bound in query_types:
        best = math.inf
        for view_node, size in materialized.items():
            if not derives_from(node, view_node):
                continue
            cost = query_cost(
                size, bound, indexes.get(view_node, ()), distinct_counts
            )
            best = min(best, cost)
        total += best
    return total


def build_distinct_counts(schema) -> Dict[str, float]:
    """Distinct counts for every groupable attribute of a star schema."""
    return {
        attr: float(schema.distinct_count(attr))
        for attr in schema.groupable_attributes()
    }
