"""The Data Cube lattice (Fig. 9) and its derives-from partial order.

Each node is a set of grouping attributes; node ``V`` *derives from*
``W`` when ``V``'s groups can be computed from ``W``'s tuples, i.e. when
``V``'s attributes are a subset of ``W``'s (after resolving hierarchy
attributes to the keys that determine them).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError

Node = FrozenSet[str]


class CubeLattice:
    """Lattice over a tuple of base attributes.

    Parameters
    ----------
    base_attributes:
        The fact-table grouping attributes in canonical order (e.g.
        ``('partkey', 'suppkey', 'custkey')``).
    hierarchies:
        Optional ``attribute -> determining base attribute`` map, e.g.
        ``{'brand': 'partkey'}``.  Hierarchy attributes may appear in view
        definitions; :meth:`derives_from` resolves them before the subset
        test.
    """

    def __init__(
        self,
        base_attributes: Sequence[str],
        hierarchies: Optional[Dict[str, str]] = None,
    ) -> None:
        if len(set(base_attributes)) != len(base_attributes):
            raise SchemaError("duplicate base attributes")
        self.base_attributes: Tuple[str, ...] = tuple(base_attributes)
        self.hierarchies: Dict[str, str] = dict(hierarchies or {})
        for attr, source in self.hierarchies.items():
            if source not in self.base_attributes:
                raise SchemaError(
                    f"hierarchy {attr!r} rolls up from unknown "
                    f"attribute {source!r}"
                )

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        """Every lattice node, top (all attributes) first."""
        n = len(self.base_attributes)
        for size in range(n, -1, -1):
            for combo in combinations(self.base_attributes, size):
                yield frozenset(combo)

    @property
    def top(self) -> Node:
        """The finest grouping (the apex view of Fig. 9)."""
        return frozenset(self.base_attributes)

    @property
    def bottom(self) -> Node:
        """The 'none' node — the super aggregate over the whole fact table."""
        return frozenset()

    def num_nodes(self) -> int:
        """Total lattice nodes (2^d)."""
        return 2 ** len(self.base_attributes)

    def canonical_order(self, node: Node) -> Tuple[str, ...]:
        """A node's attributes in base-attribute order."""
        missing = node - set(self.base_attributes) - set(self.hierarchies)
        if missing:
            raise SchemaError(f"unknown attributes {sorted(missing)}")
        base = [a for a in self.base_attributes if a in node]
        extra = sorted(a for a in node if a in self.hierarchies)
        return tuple(extra + base)

    # ------------------------------------------------------------------
    # the derives-from relation
    # ------------------------------------------------------------------
    def resolve(self, attrs: Sequence[str]) -> Node:
        """Replace hierarchy attributes with their determining keys."""
        out = set()
        for attr in attrs:
            if attr in self.hierarchies:
                out.add(self.hierarchies[attr])
            elif attr in self.base_attributes:
                out.add(attr)
            else:
                raise SchemaError(f"unknown attribute {attr!r}")
        return frozenset(out)

    def derives_from(
        self, target: Sequence[str], source: Sequence[str]
    ) -> bool:
        """Can a view grouping by ``target`` be computed from ``source``?

        True when every target attribute is either present in the source or
        is a hierarchy attribute whose determining key is present.  A
        hierarchy attribute in the *source* only supports itself (rolling
        back down is impossible).
        """
        source_set = set(source)
        for attr in target:
            if attr in source_set:
                continue
            determining = self.hierarchies.get(attr)
            if determining is None or determining not in source_set:
                return False
        return True

    def parents(self, node: Node) -> List[Node]:
        """Direct parents: nodes with exactly one more base attribute."""
        extra = [a for a in self.base_attributes if a not in node]
        return [node | {a} for a in extra]

    def children(self, node: Node) -> List[Node]:
        """Direct children: nodes with exactly one fewer attribute."""
        return [node - {a} for a in node]

    def ancestors(self, node: Node) -> List[Node]:
        """Every node the given node derives from (excluding itself)."""
        return [
            other
            for other in self.nodes()
            if node < other
        ]

    def descendants(self, node: Node) -> List[Node]:
        """Every node derivable from the given node (excluding itself)."""
        return [other for other in self.nodes() if other < node]
