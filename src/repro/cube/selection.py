"""View and index selection: HRU greedy extended with indexes (GHRU 1-greedy).

The paper selects its materialized set with "the 1-greedy algorithm
presented in [GHRU97] ... At every step the algorithm picks a view or an
index that gives the greatest benefit in terms of the number of tuples that
need to be processed for answering a given set of queries."

Implementation notes:

* The workload is the paper's slice-query model: for every lattice node,
  one query type per subset of bound (equality-predicate) attributes —
  ``sum over nodes of 2^|node|`` types (27 for three dimensions), equally
  weighted.
* A step may pick (a) a view, (b) an index on an already-selected view, or
  (c) a view *bundled with its single best index* — GHRU's fix for views
  (like the apex view) that have no benefit without an index.
* Selection is budgeted by space measured in tuples (each index entry
  counts as one tuple), with benefit-per-unit-space greedy ordering, and
  stops early when nothing beneficial fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations, permutations
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.cube.cost import estimate_view_size, query_cost
from repro.cube.lattice import CubeLattice

Node = FrozenSet[str]
IndexKey = Tuple[str, ...]


@dataclass
class GreedySelection:
    """Result of a selection run."""

    views: List[Tuple[str, ...]] = field(default_factory=list)
    indexes: List[IndexKey] = field(default_factory=list)
    total_cost: float = 0.0
    initial_cost: float = 0.0
    space_used: float = 0.0
    steps: List[str] = field(default_factory=list)

    @property
    def view_sets(self) -> List[FrozenSet[str]]:
        """Selected views as attribute frozensets."""
        return [frozenset(v) for v in self.views]


def slice_query_types(lattice: CubeLattice) -> List[Tuple[Node, FrozenSet[str]]]:
    """All slice-query types: (grouping node, bound attribute subset)."""
    types: List[Tuple[Node, FrozenSet[str]]] = []
    for node in lattice.nodes():
        attrs = sorted(node)
        for size in range(len(attrs) + 1):
            for bound in combinations(attrs, size):
                types.append((node, frozenset(bound)))
    return types


class _Configuration:
    """Mutable selection state with incremental cost evaluation."""

    def __init__(
        self,
        lattice: CubeLattice,
        distinct_counts: Mapping[str, float],
        num_facts: int,
        correlated_domains: Optional[Mapping[FrozenSet[str], float]],
    ) -> None:
        self.lattice = lattice
        self.distinct = dict(distinct_counts)
        self.num_facts = num_facts
        self.correlated = dict(correlated_domains or {})
        self.queries = slice_query_types(lattice)
        # Access paths: (node, size, index keys).  The fact table is always
        # present — any query can be answered by scanning it.
        self.fact_path = (lattice.top, float(num_facts), [])
        self.views: Dict[Node, float] = {}
        self.indexes: Dict[Node, List[IndexKey]] = {}

    def view_size(self, node: Node) -> float:
        return estimate_view_size(
            tuple(node), self.distinct, self.num_facts, self.correlated
        )

    def total_cost(
        self,
        extra_view: Optional[Node] = None,
        extra_index: Optional[Tuple[Node, IndexKey]] = None,
    ) -> float:
        """Workload cost of the current config plus hypothetical extras."""
        paths: List[Tuple[Node, float, Sequence[IndexKey]]] = [self.fact_path]
        for node, size in self.views.items():
            keys: List[IndexKey] = list(self.indexes.get(node, ()))
            if extra_index is not None and extra_index[0] == node:
                keys = keys + [extra_index[1]]
            paths.append((node, size, keys))
        if extra_view is not None and extra_view not in self.views:
            keys = []
            if extra_index is not None and extra_index[0] == extra_view:
                keys = [extra_index[1]]
            paths.append((extra_view, self.view_size(extra_view), keys))

        total = 0.0
        for node, bound in self.queries:
            best = math.inf
            for path_node, size, keys in paths:
                if not node <= path_node:
                    continue
                best = min(
                    best, query_cost(size, bound, keys, self.distinct)
                )
            total += best
        return total


def select_views_hru(
    lattice: CubeLattice,
    distinct_counts: Mapping[str, float],
    num_facts: int,
    k: int,
    correlated_domains: Optional[Mapping[FrozenSet[str], float]] = None,
) -> GreedySelection:
    """The classic HRU96 greedy: pick ``k`` views, no indexes.

    Benefit of a view is the total reduction in *linear* query cost over
    the lattice (each node queried once, answered by scanning its smallest
    materialized ancestor) — the formulation [GHRU97] extends with
    indexes.  Kept as the baseline selection strategy; the paper's
    experiments use :func:`select_views_and_indexes`.
    """
    config = _Configuration(
        lattice, distinct_counts, num_facts, correlated_domains
    )
    # HRU queries each node once with no bound attributes (pure scans).
    config.queries = [(node, frozenset()) for node in lattice.nodes()]

    result = GreedySelection()
    current = config.total_cost()
    result.initial_cost = current
    for _ in range(k):
        best_gain = 0.0
        best_node = None
        best_cost = current
        for node in lattice.nodes():
            if node in config.views:
                continue
            cost = config.total_cost(extra_view=node)
            gain = current - cost
            if gain > best_gain:
                best_gain = gain
                best_node = node
                best_cost = cost
        if best_node is None:
            break
        config.views[best_node] = config.view_size(best_node)
        order = lattice.canonical_order(best_node)
        result.views.append(order)
        result.steps.append(f"view {order}")
        result.space_used += config.views[best_node]
        current = best_cost
    result.total_cost = current
    return result


def select_views_and_indexes(
    lattice: CubeLattice,
    distinct_counts: Mapping[str, float],
    num_facts: int,
    space_budget_tuples: Optional[float] = None,
    max_structures: Optional[int] = None,
    correlated_domains: Optional[Mapping[FrozenSet[str], float]] = None,
) -> GreedySelection:
    """Run GHRU 1-greedy over the lattice's slice-query workload.

    Parameters
    ----------
    lattice:
        Candidate view space.
    distinct_counts:
        Per-attribute distinct counts.
    num_facts:
        Fact-table cardinality.
    space_budget_tuples:
        Stop once the selected structures exceed this many tuples
        (views + index entries).  Defaults to ``4.5 * num_facts``, which at
        TPC-D statistics reproduces the paper's selected sets.
    max_structures:
        Optional hard cap on the number of picked structures.
    correlated_domains:
        Joint domains for correlated attribute groups (PARTSUPP etc.).
    """
    if space_budget_tuples is None:
        space_budget_tuples = 4.5 * num_facts
    config = _Configuration(
        lattice, distinct_counts, num_facts, correlated_domains
    )
    result = GreedySelection()
    current = config.total_cost()
    result.initial_cost = current

    def structures_picked() -> int:
        return len(config.views) + sum(
            len(keys) for keys in config.indexes.values()
        )

    while True:
        if max_structures is not None and structures_picked() >= max_structures:
            break
        best_gain_rate = 0.0
        best_action = None  # ("view"|"index"|"pair", payload, space, cost)

        # (a) a view alone.
        for node in lattice.nodes():
            if node in config.views:
                continue
            size = config.view_size(node)
            if result.space_used + size > space_budget_tuples:
                continue
            cost = config.total_cost(extra_view=node)
            gain = current - cost
            rate = gain / max(size, 1.0)
            if gain > 0 and rate > best_gain_rate:
                best_gain_rate = rate
                best_action = ("view", node, None, size, cost)

        # (b) an index on a selected view.
        for node in list(config.views):
            size = config.views[node]
            existing = set(config.indexes.get(node, ()))
            for key in permutations(sorted(node)):
                if not key or key in existing:
                    continue
                if result.space_used + size > space_budget_tuples:
                    continue
                cost = config.total_cost(extra_index=(node, key))
                gain = current - cost
                rate = gain / max(size, 1.0)
                if gain > 0 and rate > best_gain_rate:
                    best_gain_rate = rate
                    best_action = ("index", node, key, size, cost)

        # (c) a view bundled with its best index (rescues zero-benefit
        #     views like the apex).
        for node in lattice.nodes():
            if node in config.views or not node:
                continue
            view_size = config.view_size(node)
            space = 2 * view_size  # view tuples + index entries
            if result.space_used + space > space_budget_tuples:
                continue
            for key in permutations(sorted(node)):
                cost = config.total_cost(
                    extra_view=node, extra_index=(node, key)
                )
                gain = current - cost
                rate = gain / max(space, 1.0)
                if gain > 0 and rate > best_gain_rate:
                    best_gain_rate = rate
                    best_action = ("pair", node, key, space, cost)

        if best_action is None:
            break

        kind, node, key, space, cost = best_action
        order = lattice.canonical_order(node)
        if kind in ("view", "pair"):
            config.views[node] = config.view_size(node)
            result.views.append(order)
            result.steps.append(f"view {order}")
        if kind in ("index", "pair"):
            config.indexes.setdefault(node, []).append(key)
            result.indexes.append(key)
            result.steps.append(f"index {key}")
        result.space_used += space
        current = cost

    result.total_cost = current
    return result
