"""Process-parallel cube computation over the plan DAG.

Gray et al.'s cube operator is decomposable two ways, and this module
uses both:

* **Across the DAG** — once a parent view is computed, every child
  derived from it is independent of its siblings, so plan steps run as a
  dependency DAG: each step starts as soon as its parent's rows exist.
* **Within a step** — when a step's first group attribute is a plain
  source column (no hierarchy roll-up), its input rows are partitioned
  by that coordinate's residue mod the worker count.  Equal group keys
  share a first coordinate, so no group spans two partitions: each
  worker aggregates complete groups from a stable subsequence of the
  input, and a k-way merge of the (disjoint-key, sorted) partial outputs
  reproduces the serial result *bit for bit* — including float aggregate
  states, which are folded over exactly the same rows in exactly the
  same order as the serial pipeline.

Within-step partitioning is what actually wins wall-clock here: the
paper's 6-view lattice is dominated by the fact-rooted apex view plus a
sequential parent chain, so shipping whole steps to workers roughly
doubles their latency (pickle out, compute, pickle back) without enough
sibling overlap to pay for it.  Steps that are too small to amortize a
round-trip — and the rare non-partitionable ones — are computed inline
in the parent, which also keeps the DAG loop trivially correct.

The parallel path is only taken when it cannot disturb the simulated-I/O
model: workers sort purely in memory, which matches the serial substrate
sorter exactly as long as no projected row list exceeds the sorter's
spill threshold.  Larger inputs (which the serial sorter would spill to
the buffer pool, charging I/O) and single-worker configurations fall
back to the serial pipeline, so results — including I/O charges — are
identical in every configuration.
"""

from __future__ import annotations

import heapq
from concurrent.futures import FIRST_COMPLETED, wait
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cube.computation import CubeComputation, CubePlanStep
from repro.parallel import MIN_PARALLEL_ROWS, shared_pool, worker_count
from repro.relational.executor import make_key_extractor
from repro.relational.view import ViewDefinition
from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import StarSchema

Row = Tuple[object, ...]

#: Below this many source rows a step is computed inline: a worker
#: round-trip (payload pickle out, result pickle back, dispatch) costs
#: milliseconds, which small aggregations don't amortize.
DEFAULT_MIN_PARALLEL_ROWS = MIN_PARALLEL_ROWS


def _compute_step(
    payload: Tuple[
        StarSchema,
        Dict[str, Hierarchy],
        ViewDefinition,
        Optional[ViewDefinition],
        Sequence[Row],
    ],
) -> List[Row]:
    """Worker body: compute one view from its source rows (pure CPU)."""
    schema, hierarchies, view, parent, source_rows = payload
    computation = CubeComputation(schema, hierarchies)  # in-memory sorts
    if parent is None:
        return computation.compute_from_fact_rows(source_rows, view)
    return computation.compute_from_parent_rows(source_rows, parent, view)


class ParallelCubeComputation(CubeComputation):
    """A :class:`CubeComputation` that fans plan steps out to processes.

    Parameters
    ----------
    workers:
        Process count; ``None`` reads ``REPRO_WORKERS``.  One worker means
        the serial pipeline, untouched.
    serial_row_threshold:
        Fall back to the serial pipeline when the fact input exceeds this
        many rows — the size at which the serial substrate sorter starts
        spilling runs through the buffer pool (charging simulated I/O that
        in-memory workers would not charge).  Keep it equal to the
        engine's ``sort_chunk_rows``.
    min_parallel_rows:
        Steps with fewer source rows than this are computed inline; fact
        inputs below it skip the parallel path entirely.
    """

    def __init__(
        self,
        schema: StarSchema,
        hierarchies: Optional[Mapping[str, Hierarchy]] = None,
        sorter=None,
        workers: Optional[int] = None,
        serial_row_threshold: int = 100_000,
        min_parallel_rows: int = DEFAULT_MIN_PARALLEL_ROWS,
    ) -> None:
        super().__init__(schema, hierarchies, sorter)
        self.workers = worker_count() if workers is None else max(1, workers)
        self.serial_row_threshold = serial_row_threshold
        self.min_parallel_rows = min_parallel_rows

    def execute(
        self,
        fact_rows: Sequence[Row],
        views: Sequence[ViewDefinition],
    ) -> Dict[str, List[Row]]:
        """Compute every view; returns name -> sorted state rows.

        Results are identical to the serial pipeline's: the same plan, the
        same stable sorts, and the output dict in the same (plan-step)
        insertion order.
        """
        if (
            self.workers <= 1
            or len(fact_rows) > self.serial_row_threshold
            or len(fact_rows) < self.min_parallel_rows
        ):
            return super().execute(fact_rows, views)
        steps = self.plan(views, len(fact_rows))
        computed = self._execute_dag(steps, list(fact_rows))
        return {step.view.name: computed[step.view.name] for step in steps}

    # ------------------------------------------------------------------
    def _partition_column(
        self, view: ViewDefinition, parent: Optional[ViewDefinition]
    ) -> Optional[int]:
        """Source column to partition a step's input on, if any.

        Only the view's *first* group attribute qualifies, and only when
        it is a plain source column: two source values that roll up to the
        same hierarchy member could land in different partitions, which
        would split a group across workers.
        """
        if view.arity < 1:
            return None
        columns: Sequence[str] = (
            self.schema.fact_columns if parent is None else parent.group_by
        )
        attr = view.group_by[0]
        if attr not in columns:
            return None
        return list(columns).index(attr)

    def _execute_dag(
        self, steps: Sequence[CubePlanStep], fact_rows: List[Row]
    ) -> Dict[str, List[Row]]:
        defs = {step.view.name: step.view for step in steps}
        children: Dict[Optional[str], List[CubePlanStep]] = {}
        for step in steps:
            children.setdefault(step.parent, []).append(step)

        results: Dict[str, List[Row]] = {}
        partials: Dict[str, List[Optional[List[Row]]]] = {}
        pending: Dict[object, Tuple[CubePlanStep, int]] = {}
        pool = shared_pool(self.workers)

        def start(step: CubePlanStep) -> None:
            parent = defs[step.parent] if step.parent else None
            source = results[step.parent] if step.parent else fact_rows
            buckets = self._split(step.view, parent, source)
            if buckets is None:
                if parent is None:
                    rows = self._compute_from_fact(source, step.view)
                else:
                    rows = self._compute_from_parent(source, parent, step.view)
                finish(step, rows)
                return
            partials[step.view.name] = [None] * len(buckets)
            for i, rows in enumerate(buckets):
                payload = (
                    self.schema, self.hierarchies, step.view, parent, rows,
                )
                pending[pool.submit(_compute_step, payload)] = (step, i)

        def finish(step: CubePlanStep, rows: List[Row]) -> None:
            results[step.view.name] = rows
            for child in children.get(step.view.name, ()):
                start(child)

        for step in children.get(None, ()):
            start(step)
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                step, i = pending.pop(future)
                parts = partials[step.view.name]
                parts[i] = future.result()
                if all(part is not None for part in parts):
                    key = make_key_extractor(range(step.view.arity))
                    finish(step, list(heapq.merge(*parts, key=key)))
        return results

    def _split(
        self,
        view: ViewDefinition,
        parent: Optional[ViewDefinition],
        source: Sequence[Row],
    ) -> Optional[List[List[Row]]]:
        """Partition a step's input for the pool, or None to run inline.

        Partitions are keyed on the first group coordinate, so group keys
        never span partitions and each partition preserves the source's
        row order — both required for bit-identical merged output.
        """
        if len(source) < self.min_parallel_rows:
            return None
        idx = self._partition_column(view, parent)
        if idx is None:
            return None
        n = self.workers
        buckets: List[List[Row]] = [[] for _ in range(n)]
        for row in source:
            buckets[hash(row[idx]) % n].append(row)
        buckets = [bucket for bucket in buckets if bucket]
        return buckets if len(buckets) > 1 else None
