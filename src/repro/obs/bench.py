"""The ``repro bench`` harness: named suites with machine-readable output.

Each suite runs a small, deterministic slice of the paper's workload
(loading, querying, merge-pack refresh, scalability) and emits one
schema-versioned JSON document: an environment fingerprint, per-phase
simulated-I/O and buffer-pool deltas, wall-clock timings, and a full
snapshot of the process-wide metrics registry.  Two documents from the
same suite can be diffed with :func:`compare`, which flags phases whose
*simulated* milliseconds regressed past a threshold — wall-clock noise
never fails a comparison; only the deterministic cost model does.

Used by CI (smoke suite per push, artifact uploaded) and by hand when
touching storage-layer code::

    python -m repro bench --suite smoke --out BENCH_smoke.json
    ... hack hack hack ...
    python -m repro bench --suite smoke --compare BENCH_smoke.json
"""

from __future__ import annotations

import json
import platform
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro import __version__
from repro.constants import (
    PAGE_SIZE,
    RANDOM_IO_MS,
    ROW_OP_OVERHEAD_MS,
    SEQUENTIAL_IO_MS,
)
from repro.obs import get_registry, set_tracing
from repro.obs.trace import tracing_override

#: Bumped whenever the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Suites in the order ``--suite`` lists them.
SUITES = (
    "smoke", "loading", "queries", "updates", "scalability", "serving",
    "sharding", "columnar",
)

#: Default scale factor per suite (kept tiny: the bench guards against
#: regressions, it does not reproduce the paper's figures).
_DEFAULT_SCALES = {  # repro: read-only
    "smoke": 0.001,
    "loading": 0.002,
    "queries": 0.002,
    "updates": 0.002,
    "scalability": 0.0005,
    "serving": 0.001,
    "sharding": 0.002,
    "columnar": 0.002,
}

#: Default queries per lattice node.  The queries suite is a throughput
#: workload (Fig. 13's shape): batches must be large enough to amortize
#: a shared run pass, or the cost gate correctly refuses to share and
#: the suite measures nothing but the fallback.
_DEFAULT_QUERIES = {  # repro: read-only
    "smoke": 5,
    "loading": 5,
    "queries": 50,
    "updates": 5,
    "scalability": 5,
    "serving": 5,
    "sharding": 5,
    "columnar": 5,
}


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
class BenchRun:
    """Accumulates the phases of one suite run."""

    def __init__(self, suite: str, config: Dict[str, object]) -> None:
        self.suite = suite
        self.config = config
        self.phases: List[Dict[str, object]] = []

    @contextmanager
    def phase(self, name: str, pool) -> Iterator[None]:
        """Record one phase: I/O, buffer, and wall-clock deltas around
        the body, taken from the pool's disk cost model and stats."""
        io_before = pool.disk.cost_model.snapshot()
        buf_before = pool.stats.copy()
        wall_start = time.perf_counter()
        yield
        wall_ms = (time.perf_counter() - wall_start) * 1000.0
        io = pool.disk.cost_model.stats - io_before
        buf = pool.stats - buf_before
        self.phases.append(
            {
                "name": name,
                "simulated_ms": io.simulated_ms,
                "overhead_ms": io.overhead_ms,
                "wall_ms": wall_ms,
                "io": {
                    "sequential_reads": io.sequential_reads,
                    "random_reads": io.random_reads,
                    "sequential_writes": io.sequential_writes,
                    "random_writes": io.random_writes,
                },
                "buffer": _buffer_record(buf),
            }
        )

    def result(self) -> Dict[str, object]:
        """The finished JSON document (metrics snapshot taken here)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": self.suite,
            "config": self.config,
            "env": environment_fingerprint(),
            "phases": self.phases,
            "totals": {
                "simulated_ms": sum(
                    p["simulated_ms"] for p in self.phases  # type: ignore[misc]
                ),
                "wall_ms": sum(
                    p["wall_ms"] for p in self.phases  # type: ignore[misc]
                ),
            },
            "metrics": get_registry().snapshot(),
        }


def environment_fingerprint() -> Dict[str, object]:
    """What produced this document (for apples-to-apples comparisons)."""
    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "page_size": PAGE_SIZE,
        "random_io_ms": RANDOM_IO_MS,
        "sequential_io_ms": SEQUENTIAL_IO_MS,
        "row_op_overhead_ms": ROW_OP_OVERHEAD_MS,
    }


# ----------------------------------------------------------------------
# suites
# ----------------------------------------------------------------------
def run_suite(
    suite: str,
    scale: Optional[float] = None,
    seed: int = 42,
    queries_per_node: Optional[int] = None,
) -> Dict[str, object]:
    """Run one named suite and return its JSON-ready result dict.

    The metrics registry is reset at the start so the embedded snapshot
    covers exactly this run; tracing is forced on for the duration (the
    spans land in the snapshot) and restored afterwards.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; pick one of {SUITES}")
    if scale is None:
        scale = _DEFAULT_SCALES[suite]
    if queries_per_node is None:
        queries_per_node = _DEFAULT_QUERIES[suite]

    registry = get_registry()
    registry.reset()
    forced_before = tracing_override()
    set_tracing(True)
    try:
        runner = globals()[f"_suite_{suite}"]
        return runner(scale, seed, queries_per_node)
    finally:
        set_tracing(forced_before)


def _make_config(suite: str, scale: float, seed: int, queries: int):
    from repro.experiments.common import ExperimentConfig
    from repro.parallel import worker_count

    config = ExperimentConfig(
        scale_factor=scale, seed=seed, queries_per_node=queries
    )
    run = BenchRun(
        suite,
        {
            "scale_factor": scale,
            "seed": seed,
            "queries_per_node": queries,
            "buffer_pages": config.buffer_pages,
            # Worker count only moves wall-clock numbers; simulated I/O
            # is identical at any setting (see repro.parallel).
            "workers": worker_count(),
        },
    )
    return config, run


def _compute_phase(run: BenchRun, name: str, config, data, rows) -> None:
    """Record a pure-CPU cube-computation phase (simulated I/O ~ 0).

    Exercises the batched-codec / fused-aggregation / parallel pipeline in
    isolation so its wall-ms win is visible outside the load totals.
    """
    from repro.core.sorting import make_substrate_sorter
    from repro.cube.parallel import ParallelCubeComputation
    from repro.experiments.common import paper_views
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import DiskManager

    pool = BufferPool(DiskManager(), capacity=config.buffer_pages)
    computation = ParallelCubeComputation(
        data.schema,
        sorter=make_substrate_sorter(pool, config.sort_chunk_rows),
        serial_row_threshold=config.sort_chunk_rows,
    )
    with run.phase(name, pool):
        computation.execute(rows, paper_views())


def _suite_smoke(scale: float, seed: int, queries: int) -> Dict[str, object]:
    """Load → query → refresh, one engine: the CI tripwire."""
    from repro.experiments.common import (
        FIG12_NODES,
        build_cubetree_engine,
        build_warehouse,
    )
    from repro.query.generator import RandomQueryGenerator

    config, run = _make_config("smoke", scale, seed, queries)
    generator, data = build_warehouse(config)

    wall_start = time.perf_counter()
    engine, _ = build_cubetree_engine(config, data)
    # The engine's pool did the loading I/O before we could wrap it, so
    # record the load phase from absolute counters instead.
    run.phases.append(
        _absolute_phase(
            "load", engine.pool,
            (time.perf_counter() - wall_start) * 1000.0,
        )
    )

    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)
    with run.phase("queries", engine.pool):
        for node in FIG12_NODES[:3]:
            for query in qgen.generate_for_node(node, queries):
                engine.query(query)

    delta = generator.generate_increment(config.increment_fraction)
    with run.phase("update", engine.pool):
        engine.update(delta)

    return run.result()


def _absolute_phase(name: str, pool, wall_ms: float = 0.0) -> Dict[str, object]:
    """A phase record built from a pool's lifetime counters (used when
    the work happened inside a constructor we could not wrap)."""
    return _stats_phase(name, pool.disk.cost_model.stats, pool.stats, wall_ms)


def _stats_phase(name: str, io, buf, wall_ms: float = 0.0) -> Dict[str, object]:
    """A phase record from explicit IOStats/BufferStats (absolute or
    delta) — the sharded engine reports critical-path combined stats
    rather than a single pool's counters."""
    return {
        "name": name,
        "simulated_ms": io.simulated_ms,
        "overhead_ms": io.overhead_ms,
        "wall_ms": wall_ms,
        "io": {
            "sequential_reads": io.sequential_reads,
            "random_reads": io.random_reads,
            "sequential_writes": io.sequential_writes,
            "random_writes": io.random_writes,
        },
        "buffer": _buffer_record(buf),
    }


def _buffer_record(buf) -> Dict[str, object]:
    """The per-phase buffer-stats dict (shared by both phase builders)."""
    return {
        "hits": buf.hits,
        "misses": buf.misses,
        "evictions": buf.evictions,
        "new_pages": buf.new_pages,
        "unpins": buf.unpins,
        "scan_admissions": buf.scan_admissions,
        "promotions": buf.promotions,
        "readahead_pages": buf.readahead_pages,
        "accesses": buf.accesses,
        # null (not 0.0) when the phase made no lookups.
        "hit_ratio": buf.hit_ratio if buf.accesses > 0 else None,
    }


def _suite_loading(scale: float, seed: int, queries: int) -> Dict[str, object]:
    """Cubetree bulk load vs. conventional load+index (Table 6's shape)."""
    from repro.experiments.common import (
        build_conventional_engine,
        build_cubetree_engine,
        build_warehouse,
    )

    config, run = _make_config("loading", scale, seed, queries)
    _generator, data = build_warehouse(config)

    _compute_phase(run, "cube_compute", config, data, data.facts)

    wall_start = time.perf_counter()
    cube, _ = build_cubetree_engine(config, data)
    run.phases.append(
        _absolute_phase(
            "cubetree_load", cube.pool,
            (time.perf_counter() - wall_start) * 1000.0,
        )
    )

    wall_start = time.perf_counter()
    conv, _ = build_conventional_engine(config, data)
    run.phases.append(
        _absolute_phase(
            "conventional_load", conv.pool,
            (time.perf_counter() - wall_start) * 1000.0,
        )
    )
    return run.result()


def _suite_queries(scale: float, seed: int, queries: int) -> Dict[str, object]:
    """Query cost over every Fig. 12 lattice node, three execution modes.

    Per node the same query set runs three ways from a cold cache:
    ``serial:<node>`` through the classic interior descent (the guarded
    baseline), ``fast:<node>`` through the packed-run fast path, and
    ``batch:<node>`` through one shared run pass.  The mode phases answer
    identical queries with identical rows, so their simulated-ms ratio
    *is* the fast-path/batching win.
    """
    from repro.experiments.common import (
        FIG12_NODES,
        build_cubetree_engine,
        build_warehouse,
    )
    from repro.query.generator import RandomQueryGenerator

    config, run = _make_config("queries", scale, seed, queries)
    _generator, data = build_warehouse(config)
    engine, _ = build_cubetree_engine(config, data)
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)

    for node in FIG12_NODES:
        label = ",".join(node) or "none"
        node_queries = list(qgen.generate_for_node(node, queries))

        # Fast/batch modes protect index pages; drop the shelter before
        # the serial phase so it measures the untouched classic engine.
        for page_id in engine.pool.protected_page_ids:
            engine.pool.unprotect_page(page_id)
        engine.pool.clear()
        with run.phase(f"serial:{label}", engine.pool):
            for query in node_queries:
                engine.query(query, fast=False)

        engine.pool.clear()
        with run.phase(f"fast:{label}", engine.pool):
            for query in node_queries:
                engine.query(query, fast=True)

        engine.pool.clear()
        with run.phase(f"batch:{label}", engine.pool):
            engine.query_batch(node_queries)
    return run.result()


def _suite_updates(scale: float, seed: int, queries: int) -> Dict[str, object]:
    """Merge-pack refresh vs. conventional incremental refresh."""
    from repro.experiments.common import (
        build_conventional_engine,
        build_cubetree_engine,
        build_warehouse,
    )

    config, run = _make_config("updates", scale, seed, queries)
    generator, data = build_warehouse(config)
    delta = generator.generate_increment(config.increment_fraction)

    _compute_phase(run, "delta_compute", config, data, delta)

    cube, _ = build_cubetree_engine(config, data)
    with run.phase("cubetree_merge_pack", cube.pool):
        cube.update(delta)

    conv, _ = build_conventional_engine(config, data)
    with run.phase("conventional_incremental", conv.pool):
        conv.update_incremental(delta)
    return run.result()


def _suite_scalability(
    scale: float, seed: int, queries: int
) -> Dict[str, object]:
    """Load cost as the warehouse doubles (Fig. 14's shape)."""
    from repro.experiments.common import (
        ExperimentConfig,
        build_cubetree_engine,
        build_warehouse,
    )

    _config, run = _make_config("scalability", scale, seed, queries)
    for multiple in (1, 2, 4):
        step = ExperimentConfig(
            scale_factor=scale * multiple, seed=seed,
            queries_per_node=queries,
        )
        wall_start = time.perf_counter()
        _generator, data = build_warehouse(step)
        engine, _ = build_cubetree_engine(step, data)
        run.phases.append(
            _absolute_phase(
                f"load_x{multiple}", engine.pool,
                (time.perf_counter() - wall_start) * 1000.0,
            )
        )
    return run.result()


def _empty_io() -> Dict[str, int]:
    return {
        "sequential_reads": 0,
        "random_reads": 0,
        "sequential_writes": 0,
        "random_writes": 0,
    }


def _wall_only_phase(
    name: str, wall_ms: float, serving: Dict[str, Any]
) -> Dict[str, object]:
    """A concurrency phase: wall-clock + serving stats, no cost model.

    Concurrent schedules are timing-dependent, so these phases carry
    ``wall_only: True`` and :func:`compare` never gates on them — the
    deterministic phases of the same suite still guard the cost model.
    """
    return {
        "name": name,
        "wall_only": True,
        "simulated_ms": 0.0,
        "overhead_ms": 0.0,
        "wall_ms": wall_ms,
        "io": _empty_io(),
        "buffer": {
            "hits": 0, "misses": 0, "evictions": 0, "new_pages": 0,
            "unpins": 0, "scan_admissions": 0, "promotions": 0,
            "readahead_pages": 0, "accesses": 0, "hit_ratio": None,
        },
        "serving": serving,
    }


def _percentile(ordered: List[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def _concurrent_load(
    server, workload, threads: int, rounds: int, refresher=None
) -> Dict[str, Any]:
    """Hammer the server from ``threads`` client threads; summarize.

    Each thread replays the workload ``rounds`` times, staggered by
    thread index so concurrent arrivals hit different queries (that is
    what exercises per-round coalescing across clients).  ``refresher``,
    when given, runs on its own thread between a start barrier and the
    clients draining — the "qps under refresh" configuration.
    """
    import threading as _threading

    latencies: List[float] = []
    generations: List[int] = []
    errors: List[str] = []
    lock = _threading.Lock()
    barrier = _threading.Barrier(threads + 1 + (1 if refresher else 0))

    def client(offset: int) -> None:
        local_lat: List[float] = []
        local_gen: List[int] = []
        local_err: List[str] = []
        barrier.wait()
        for round_index in range(rounds):
            for index in range(len(workload)):
                query = workload[(offset + index) % len(workload)]
                start = time.perf_counter()
                try:
                    served = server.query(query)
                except Exception as exc:  # noqa: BLE001 - tallied, not raised
                    local_err.append(str(exc))
                    continue
                local_lat.append((time.perf_counter() - start) * 1000.0)
                local_gen.append(served.generation)
        with lock:
            latencies.extend(local_lat)
            generations.extend(local_gen)
            errors.extend(local_err)

    workers = [
        _threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(threads)
    ]
    refresh_outcomes: List[Dict[str, object]] = []
    stop_refresh = _threading.Event()
    if refresher is not None:
        def run_refresher() -> None:
            barrier.wait()
            refresh_outcomes.extend(refresher(stop_refresh))

        refresh_thread = _threading.Thread(target=run_refresher, daemon=True)
        refresh_thread.start()
    for worker in workers:
        worker.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for worker in workers:
        worker.join()
    wall_s = time.perf_counter() - wall_start
    if refresher is not None:
        stop_refresh.set()
        refresh_thread.join()
    ordered = sorted(latencies)
    total = len(latencies)
    return {
        "threads": threads,
        "rounds": rounds,
        "queries": total,
        "errors": len(errors),
        "error_samples": errors[:3],
        "qps": total / wall_s if wall_s > 0 else 0.0,
        "p50_ms": _percentile(ordered, 0.50),
        "p95_ms": _percentile(ordered, 0.95),
        "generations_observed": sorted(set(generations)),
        "refreshes": refresh_outcomes,
        "wall_s": wall_s,
    }


def _suite_serving(scale: float, seed: int, queries: int) -> Dict[str, object]:
    """Concurrent serving under refresh (the PR 7 server, Sec. 5's claim).

    Two deterministic phases guard the cost model — ``serve_queries``
    (the admission path answers the workload serially) and ``refresh``
    (builder load + merge-pack + publish, measured on the builder's own
    pool) — then two ``wall_only`` phases measure concurrency itself:
    ``concurrent_baseline`` (client threads, no refresh) and
    ``concurrent_refresh`` (same load with refresh cycles publishing new
    generations mid-flight).  The headline number is the qps ratio
    between those two: zero-downtime refresh means it stays near 1.
    """
    import shutil
    import tempfile

    from repro.experiments.common import FIG12_NODES, build_warehouse
    from repro.query.generator import RandomQueryGenerator
    from repro.server import CubetreeServer, ServerConfig, bootstrap_database

    config, run = _make_config("serving", scale, seed, queries)
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-serving-")
    try:
        bootstrap_database(tmpdir, scale=scale, seed=seed)
        generator, _data = build_warehouse(config)
        server = CubetreeServer(tmpdir, ServerConfig(retain=2)).start()
        try:
            qgen = RandomQueryGenerator(
                server.schema, seed=config.query_seed
            )
            workload = [
                query
                for node in FIG12_NODES[:4]
                for query in qgen.generate_for_node(node, queries)
            ]

            handle = server.manager.acquire()
            try:
                with run.phase("serve_queries", handle.engine.pool):
                    for query in workload:
                        server.query(query)
            finally:
                server.manager.release(handle)

            delta = generator.generate_increment(
                config.increment_fraction, stream="bench-refresh-0"
            )
            wall_start = time.perf_counter()
            server.submit_delta(delta)
            outcome = server.refresh_now()
            if outcome.status != "published":
                raise RuntimeError(
                    f"serving bench refresh failed: {outcome.error}"
                )
            handle = server.manager.acquire()
            try:
                # The published engine IS the refresh builder, so its
                # pool's lifetime counters are exactly the refresh cost:
                # reload + merge-pack + checkpoint.
                run.phases.append(
                    _absolute_phase(
                        "refresh", handle.engine.pool,
                        (time.perf_counter() - wall_start) * 1000.0,
                    )
                )
            finally:
                server.manager.release(handle)

            threads, rounds = 4, 4
            wall_start = time.perf_counter()
            baseline = _concurrent_load(server, workload, threads, rounds)
            run.phases.append(
                _wall_only_phase(
                    "concurrent_baseline",
                    (time.perf_counter() - wall_start) * 1000.0,
                    baseline,
                )
            )

            def refresher(stop) -> List[Dict[str, object]]:
                # Two refresh cycles spaced across the client run: long
                # enough to overlap real query traffic, short enough
                # that merge-pack (pure Python, GIL-bound) does not
                # dominate the measured window.
                outcomes: List[Dict[str, object]] = []
                stream = 1
                while not stop.is_set() and stream <= 2:
                    if stop.wait(0.05):
                        break
                    rows = generator.generate_increment(
                        config.increment_fraction / 5,
                        stream=f"bench-refresh-{stream}",
                    )
                    server.submit_delta(rows)
                    outcomes.append(server.refresh_now().as_dict())
                    stream += 1
                return outcomes

            wall_start = time.perf_counter()
            under_refresh = _concurrent_load(
                server, workload, threads, rounds, refresher=refresher
            )
            run.phases.append(
                _wall_only_phase(
                    "concurrent_refresh",
                    (time.perf_counter() - wall_start) * 1000.0,
                    under_refresh,
                )
            )

            baseline_qps = float(baseline["qps"])
            refresh_qps = float(under_refresh["qps"])
            result = run.result()
            result["serving_summary"] = {
                "baseline_qps": baseline_qps,
                "refresh_qps": refresh_qps,
                "qps_ratio": (
                    refresh_qps / baseline_qps if baseline_qps else 0.0
                ),
                "errors": int(baseline["errors"])
                + int(under_refresh["errors"]),
                "generations_observed": under_refresh[
                    "generations_observed"
                ],
            }
            return result
        finally:
            server.close()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def _suite_sharding(scale: float, seed: int, queries: int) -> Dict[str, object]:
    """Sharded forest vs. unsharded: load, merge-pack, point queries.

    The same warehouse is loaded at N=1 and N=4 shards.  Sharded phases
    charge the *critical-path* shard (max over per-shard deltas), so the
    n4/n1 simulated-ms ratio is the modeled parallel speedup — the
    acceptance bar is <= 0.5x for both bulk load and merge-pack.  Point
    queries restrict the leading group coordinate of the view they route
    to (``V_c``, ``V_s``, ``V_ps``), so the scatter-gather router must
    touch exactly one shard each; the summary records the worst case.
    All phases are deterministic simulated I/O and gate comparisons;
    wall-clock rides along report-only as everywhere else.
    """
    from repro.experiments.common import (
        build_sharded_engine,
        build_warehouse,
    )
    from repro.query.slice import SliceQuery

    config, run = _make_config("sharding", scale, seed, queries)
    generator, data = build_warehouse(config)
    delta = generator.generate_increment(config.increment_fraction)

    #: (view routed to, bound attribute) — each binds the leading group
    #: coordinate of its target view, the single-shard case.
    point_shapes = (
        ((), "custkey"),           # -> V_c
        ((), "suppkey"),           # -> V_s
        (("suppkey",), "partkey"),  # -> V_ps
    )
    sim_ms: Dict[str, float] = {}
    max_touched = 0

    for num_shards in (1, 4):
        tag = f"n{num_shards}"
        wall_start = time.perf_counter()
        engine, _ = build_sharded_engine(config, data, shards=num_shards)
        load_io = engine.io_totals()
        run.phases.append(
            _stats_phase(
                f"load_{tag}", load_io, engine.buffer_totals(),
                (time.perf_counter() - wall_start) * 1000.0,
            )
        )
        sim_ms[f"load_{tag}"] = load_io.simulated_ms

        point_queries = [
            SliceQuery(
                group_by=tuple(group_by),
                bindings=((attr, 1 + (repeat * len(point_shapes) + i) % 7),),
            )
            for repeat in range(max(1, queries))
            for i, (group_by, attr) in enumerate(point_shapes)
        ]
        snapshots = engine.io_snapshot()
        buf_before = engine.buffer_totals()
        wall_start = time.perf_counter()
        for query in point_queries:
            routed_before = [s.routed_queries for s in engine.shards]
            engine.query(query, fast=True)
            touched = sum(
                1
                for before, shard in zip(routed_before, engine.shards)
                if shard.routed_queries > before
            )
            max_touched = max(max_touched, touched)
        query_io = engine.io_delta(snapshots)
        run.phases.append(
            _stats_phase(
                f"point_queries_{tag}", query_io,
                engine.buffer_totals() - buf_before,
                (time.perf_counter() - wall_start) * 1000.0,
            )
        )
        sim_ms[f"point_queries_{tag}"] = query_io.simulated_ms

        snapshots = engine.io_snapshot()
        buf_before = engine.buffer_totals()
        wall_start = time.perf_counter()
        engine.update(delta)
        merge_io = engine.io_delta(snapshots)
        run.phases.append(
            _stats_phase(
                f"merge_pack_{tag}", merge_io,
                engine.buffer_totals() - buf_before,
                (time.perf_counter() - wall_start) * 1000.0,
            )
        )
        sim_ms[f"merge_pack_{tag}"] = merge_io.simulated_ms

    result = run.result()
    result["sharding_summary"] = {
        "load_ratio_n4_vs_n1": (
            sim_ms["load_n4"] / sim_ms["load_n1"]
            if sim_ms["load_n1"] else 0.0
        ),
        "merge_pack_ratio_n4_vs_n1": (
            sim_ms["merge_pack_n4"] / sim_ms["merge_pack_n1"]
            if sim_ms["merge_pack_n1"] else 0.0
        ),
        "point_query_max_shards_touched": max_touched,
    }
    return result


def _suite_columnar(scale: float, seed: int, queries: int) -> Dict[str, object]:
    """Row vs. columnar (v3) leaf format, kernels, and the streaming build.

    The original five phases stand: ``load_row`` / ``queries_row`` with
    the classic row-major leaves, ``load_columnar`` /
    ``queries_columnar`` with delta+varint columnar leaves (queried
    through the vectorized kernels), and ``load_stream`` — a columnar
    load through the bounded-memory external sort.  The row/columnar
    query phases answer the identical workload (row equality is
    asserted), so their page counts and simulated-ms ratio *are* the
    columnar win.

    The kernel phases then answer the same workload both ways over the
    same columnar engine: ``queries_columnar_scalar`` against
    ``queries_columnar_vector`` (several cold-start passes each, so one
    20-query pass's timing noise can't swamp the ratio), and
    ``batch_columnar_scalar`` / ``batch_columnar_vector`` for the
    shared-pass executor.  Scalar and vectorized execution scan the same
    leaves, so their page counts are identical by construction — the
    wall-ms ratio is the vectorization win, reported in
    ``columnar_summary`` (wall-clock never gates a comparison).
    Finally ``load_columnar_small`` / ``queries_small_scalar`` /
    ``queries_small_vector`` rerun the workload several passes under a
    buffer pool too small to hold the leaf run, where scan churn makes
    the decoded-column side-cache earn its keep — pass one populates it,
    later passes hit it while the scalar side re-decodes every evicted
    page; the hit/miss counters land in the summary.
    """
    from dataclasses import replace

    from repro.core.extsort import set_build_memory
    from repro.experiments.common import (
        FIG12_NODES,
        build_cubetree_engine,
        build_warehouse,
    )
    from repro.query.generator import RandomQueryGenerator
    from repro.rtree.kernels import set_vector_kernels
    from repro.rtree.node import set_leaf_format

    #: Streaming-build sort buffer (entries) — small enough that the
    #: bench corpus spills several runs.
    stream_budget = 1024
    #: Small-pool pages for the decoded-cache showcase — far below the
    #: columnar leaf-run size, so every pass re-fetches evicted pages.
    small_pool_pages = 24
    #: Workload passes in the small-pool phases: pass 1 populates the
    #: decoded-column cache, later passes hit it (the scalar side
    #: re-decodes every evicted page each pass).
    small_pool_passes = 3
    #: Workload passes in the scalar-vs-vector phases — enough wall
    #: time that the ratio reflects execution mode, not timer noise.
    kernel_passes = 5

    config, run = _make_config("columnar", scale, seed, queries)
    _generator, data = build_warehouse(config)
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)
    workload = [
        query
        for node in FIG12_NODES[:4]
        for query in qgen.generate_for_node(node, queries)
    ]

    try:
        # Pin kernel dispatch on for the suite so the phases measure the
        # same thing regardless of the ambient REPRO_VECTOR_KERNELS.
        set_vector_kernels(True)
        results: Dict[str, object] = {}
        pages: Dict[str, int] = {}
        engine = None
        for mode in ("row", "columnar"):
            set_leaf_format(mode)
            wall_start = time.perf_counter()
            engine, _ = build_cubetree_engine(config, data)
            run.phases.append(
                _absolute_phase(
                    f"load_{mode}", engine.pool,
                    (time.perf_counter() - wall_start) * 1000.0,
                )
            )
            pages[mode] = engine.forest.num_pages
            engine.pool.clear()
            with run.phase(f"queries_{mode}", engine.pool):
                answers = [
                    tuple(sorted(engine.query(query, fast=True).rows))
                    for query in workload
                ]
            results[mode] = answers
        columnar_engine = engine

        if results["row"] != results["columnar"]:
            raise RuntimeError(
                "columnar bench: row and columnar formats answered the "
                "same workload differently"
            )

        set_leaf_format("columnar")
        set_build_memory(stream_budget)
        wall_start = time.perf_counter()
        stream_engine, _ = build_cubetree_engine(config, data)
        run.phases.append(
            _absolute_phase(
                "load_stream", stream_engine.pool,
                (time.perf_counter() - wall_start) * 1000.0,
            )
        )
        if stream_engine.forest.num_pages != pages["columnar"]:
            raise RuntimeError(
                "columnar bench: streaming build produced a different "
                "page count than the in-memory columnar build"
            )
        set_build_memory(None)

        # -- vectorized vs scalar, single-query path -------------------
        # Both sides run the identical multi-pass protocol (cold pool,
        # then kernel_passes passes over the workload) so the wall
        # ratio compares execution modes, not pool temperatures, and a
        # single 20-query pass's timing noise doesn't swamp it.
        kernel_answers: Dict[str, object] = {}
        for kernel_mode, enabled in (
            ("queries_columnar_scalar", False),
            ("queries_columnar_vector", True),
        ):
            set_vector_kernels(enabled)
            columnar_engine.pool.clear()
            with run.phase(kernel_mode, columnar_engine.pool):
                for _ in range(kernel_passes):
                    kernel_answers[kernel_mode] = [
                        tuple(
                            sorted(
                                columnar_engine.query(
                                    query, fast=True
                                ).rows
                            )
                        )
                        for query in workload
                    ]
        if (
            kernel_answers["queries_columnar_scalar"]
            != kernel_answers["queries_columnar_vector"]
            or kernel_answers["queries_columnar_vector"]
            != results["columnar"]
        ):
            raise RuntimeError(
                "columnar bench: scalar and vectorized kernels answered "
                "the same workload differently"
            )

        # -- vectorized vs scalar, batch executor ----------------------
        batch_answers: Dict[str, object] = {}
        for kernel_mode, enabled in (
            ("batch_columnar_scalar", False),
            ("batch_columnar_vector", True),
        ):
            set_vector_kernels(enabled)
            columnar_engine.pool.clear()
            with run.phase(kernel_mode, columnar_engine.pool):
                batch = columnar_engine.query_batch(workload)
            batch_answers[kernel_mode] = [
                tuple(sorted(result.rows)) for result in batch.results
            ]
        if (
            batch_answers["batch_columnar_scalar"]
            != batch_answers["batch_columnar_vector"]
            or batch_answers["batch_columnar_vector"]
            != results["columnar"]
        ):
            raise RuntimeError(
                "columnar bench: batched execution disagreed with the "
                "serial answers"
            )

        # -- decoded-column cache under scan churn ---------------------
        small_config = replace(config, buffer_pages=small_pool_pages)
        wall_start = time.perf_counter()
        small_engine, _ = build_cubetree_engine(small_config, data)
        run.phases.append(
            _absolute_phase(
                "load_columnar_small", small_engine.pool,
                (time.perf_counter() - wall_start) * 1000.0,
            )
        )
        small_answers: Dict[str, object] = {}
        for kernel_mode, enabled in (
            ("queries_small_scalar", False),
            ("queries_small_vector", True),
        ):
            set_vector_kernels(enabled)
            small_engine.pool.clear()
            with run.phase(kernel_mode, small_engine.pool):
                for _ in range(small_pool_passes):
                    small_answers[kernel_mode] = [
                        tuple(
                            sorted(
                                small_engine.query(query, fast=True).rows
                            )
                        )
                        for query in workload
                    ]
        if (
            small_answers["queries_small_scalar"]
            != small_answers["queries_small_vector"]
            or small_answers["queries_small_vector"] != results["columnar"]
        ):
            raise RuntimeError(
                "columnar bench: small-pool runs disagreed with the "
                "full-pool answers"
            )
        # Kernel dispatch must not move a single page: compare the
        # integer I/O counts (simulated_ms deltas of back-to-back phases
        # differ in the last float ulp because the shared cost model's
        # running total sits at a different value when each starts).
        phase_by_name = {p["name"]: p for p in run.phases}
        if (
            phase_by_name["queries_small_scalar"]["io"]
            != phase_by_name["queries_small_vector"]["io"]
            or phase_by_name["queries_columnar_scalar"]["io"]
            != phase_by_name["queries_columnar_vector"]["io"]
        ):
            raise RuntimeError(
                "columnar bench: kernel dispatch changed simulated I/O"
            )

        def _wall(name: str) -> float:
            return float(phase_by_name[name]["wall_ms"])

        metrics = get_registry().snapshot()
        counters = metrics.get("counters", {})
        result = run.result()
        result["columnar_summary"] = {
            "row_pages": pages["row"],
            "columnar_pages": pages["columnar"],
            "storage_ratio_row_vs_columnar": (
                pages["row"] / pages["columnar"]
                if pages["columnar"] else 0.0
            ),
            "queries_match": True,
            "stream_budget_entries": stream_budget,
            "stream_peak_buffered": counters.get(
                "extsort.peak_buffered", 0
            ),
            "stream_spilled_runs": counters.get("extsort.spilled_runs", 0),
            "stream_spilled_entries": counters.get(
                "extsort.spilled_entries", 0
            ),
            # Wall-clock ratios (report-only): >1 means vectorized wins.
            "vector_speedup_wall": (
                _wall("queries_columnar_scalar")
                / _wall("queries_columnar_vector")
                if _wall("queries_columnar_vector") else 0.0
            ),
            "kernel_passes": kernel_passes,
            "batch_vector_speedup_wall": (
                _wall("batch_columnar_scalar")
                / _wall("batch_columnar_vector")
                if _wall("batch_columnar_vector") else 0.0
            ),
            "small_pool_vector_speedup_wall": (
                _wall("queries_small_scalar") / _wall("queries_small_vector")
                if _wall("queries_small_vector") else 0.0
            ),
            "small_pool_passes": small_pool_passes,
            "aggregate_pushdowns": counters.get(
                "query.cubetree.pushdowns", 0
            ),
            "column_cache": {
                "hits": counters.get("buffer.column_cache.hits", 0),
                "misses": counters.get("buffer.column_cache.misses", 0),
                "evictions": counters.get(
                    "buffer.column_cache.evictions", 0
                ),
                "invalidations": counters.get(
                    "buffer.column_cache.invalidations", 0
                ),
            },
        }
        return result
    finally:
        set_leaf_format(None)
        set_build_memory(None)
        set_vector_kernels(None)


# ----------------------------------------------------------------------
# comparison + reporting
# ----------------------------------------------------------------------
def compare(
    old: Dict[str, object],
    new: Dict[str, object],
    threshold: float = 0.2,
) -> List[Dict[str, object]]:
    """Flag phases whose simulated time regressed past ``threshold``.

    Phases are matched by name; phases present on only one side are
    ignored (renames should not fail CI), and near-zero baselines are
    skipped (a 0.1 ms phase tripling is noise, not a regression).
    Returns one record per regression; empty list means "no worse".
    """
    if old.get("suite") != new.get("suite"):
        raise ValueError(
            f"cannot compare suite {new.get('suite')!r} against a "
            f"{old.get('suite')!r} baseline"
        )
    old_phases = {p["name"]: p for p in old.get("phases", [])}  # type: ignore[index]
    regressions: List[Dict[str, object]] = []
    for phase in new.get("phases", []):  # type: ignore[union-attr]
        name = phase["name"]  # type: ignore[index]
        base = old_phases.get(name)
        if base is None:
            continue
        # Concurrency phases measure wall-clock schedules, not the
        # deterministic cost model; they never gate a comparison.
        if phase.get("wall_only") or base.get("wall_only"):  # type: ignore[union-attr]
            continue
        old_ms = float(base["simulated_ms"])  # type: ignore[index, arg-type]
        new_ms = float(phase["simulated_ms"])  # type: ignore[index, arg-type]
        if old_ms < 1.0:
            continue
        if new_ms > old_ms * (1.0 + threshold):
            regressions.append(
                {
                    "phase": name,
                    "old_simulated_ms": old_ms,
                    "new_simulated_ms": new_ms,
                    "ratio": new_ms / old_ms,
                }
            )
    return regressions


def format_report(result: Dict[str, object]) -> str:
    """Aligned text table of a result's phases (the ``--report`` view)."""
    headers = (
        "phase", "sim ms", "wall ms", "reads", "writes", "hit ratio",
    )
    rows: List[List[str]] = []
    for phase in result.get("phases", []):  # type: ignore[union-attr]
        io = phase["io"]  # type: ignore[index]
        buf = phase["buffer"]  # type: ignore[index]
        reads = io["sequential_reads"] + io["random_reads"]  # type: ignore[index]
        writes = io["sequential_writes"] + io["random_writes"]  # type: ignore[index]
        ratio = buf["hit_ratio"]  # type: ignore[index]
        rows.append(
            [
                str(phase["name"]),  # type: ignore[index]
                f"{phase['simulated_ms']:.1f}",  # type: ignore[index]
                f"{phase['wall_ms']:.1f}",  # type: ignore[index]
                str(reads),
                str(writes),
                "-" if ratio is None else f"{ratio:.3f}",
            ]
        )
    totals = result.get("totals", {})
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        f"suite: {result.get('suite')}  "
        f"(schema v{result.get('schema_version')})",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
    ]
    lines.append("-" * len(lines[-1]))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(
        f"total: {totals.get('simulated_ms', 0.0):.1f} ms simulated, "
        f"{totals.get('wall_ms', 0.0):.1f} ms wall"
    )
    return "\n".join(lines)


def load_result(path: str) -> Dict[str, object]:
    """Read a bench JSON document, checking its schema version."""
    with open(path) as handle:
        result = json.load(handle)
    version = result.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} is not {SCHEMA_VERSION}"
        )
    return result
