"""Observability: a process-wide metrics registry, span tracing, and the
``repro bench`` reproducibility harness.

Every hot path in the storage substrate and both engines reports into one
:class:`~repro.obs.registry.MetricsRegistry` (counters, gauges, histograms
with p50/p95/max), so experiments, benches, and tests read page I/O, buffer
hit ratios, and per-operation timings from a single ``snapshot()`` instead
of stitching together ad-hoc accumulators.  Span tracing
(:func:`~repro.obs.trace.trace`) adds wall-clock timings for coarse
operations (pack, merge-pack, bulk load, materialize) and is free when
disabled.

Design constraints (see ``docs/OBSERVABILITY.md``):

* counters never touch the simulated I/O cost model — observability reads
  the system, it does not price it;
* with tracing disabled the overhead per page access is one attribute
  increment, so experiment runtimes are unaffected;
* ``registry().reset()`` zeroes metrics *in place*, so module-level metric
  handles stay valid.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    set_tracing,
    trace,
    tracing_enabled,
    tracing_override,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_tracing",
    "trace",
    "tracing_enabled",
    "tracing_override",
]
