"""The process-wide metrics registry.

Three metric kinds cover everything the experiments measure:

* :class:`Counter` — monotonically growing totals (page reads, evictions,
  merged entries).  Hot paths update counters with a bare
  ``counter.value += 1`` so a page access costs one attribute increment.
* :class:`Gauge` — last-written values (pages on disk, leaf utilization).
* :class:`Histogram` — sample distributions with ``p50``/``p95``/``max``
  (per-query latency, span durations).  Samples are kept in a bounded
  reservoir so long benches cannot grow memory without limit.

Metrics are owned by a :class:`MetricsRegistry`; the module-level
:func:`get_registry` instance is what the storage substrate and engines
report into.  ``reset()`` zeroes every metric *in place* — registered
handles held by other modules keep working across resets, which is what
lets tests snapshot/reset around a single operation.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

Number = Union[int, float]

#: Histogram reservoir size.  Big enough that p95 over an experiment batch
#: is exact in practice; bounded so histograms cannot leak memory.
DEFAULT_RESERVOIR = 8192


class Counter:
    """A monotonically increasing total.

    Hot paths may bypass :meth:`inc` and do ``counter.value += n``
    directly; both are supported and equivalent.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (may be fractional, e.g. milliseconds)."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter in place."""
        self.value = 0

    def snapshot(self) -> Number:
        """Current total."""
        return self.value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the current level."""
        self.value = value

    def reset(self) -> None:
        """Zero the gauge in place."""
        self.value = 0

    def snapshot(self) -> Number:
        """Current level."""
        return self.value


class Histogram:
    """A sample distribution summarized as count/sum/p50/p95/max.

    Keeps at most ``reservoir`` samples: once full, every second sample is
    dropped and the keep-rate halves, so the summary stays representative
    while memory stays bounded.  ``count``/``sum``/``max`` remain exact
    regardless of downsampling.
    """

    __slots__ = ("name", "count", "total", "max", "_samples", "_keep_every",
                 "_skip", "_reservoir")

    def __init__(self, name: str, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self.name = name
        self._reservoir = max(2, reservoir)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: List[float] = []
        self._keep_every = 1
        self._skip = 0

    def observe(self, value: Number) -> None:
        """Record one sample."""
        v = float(value)
        self.count += 1
        self.total += v
        if v > self.max:
            self.max = v
        self._skip += 1
        if self._skip >= self._keep_every:
            self._skip = 0
            self._samples.append(v)
            if len(self._samples) >= self._reservoir:
                # Halve the reservoir and the keep rate.
                self._samples = self._samples[::2]
                self._keep_every *= 2

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained samples (0 if empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]

    def reset(self) -> None:
        """Zero the histogram in place."""
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples.clear()
        self._keep_every = 1
        self._skip = 0

    def snapshot(self) -> Dict[str, float]:
        """Summary dict: count, sum, mean, p50, p95, max."""
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": self.total,
            "mean": mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "max": self.max,
        }


class MetricsRegistry:
    """Owns every metric; hands out (and deduplicates) handles by name.

    Registration is locked (modules register at import time from any
    thread); the update paths are deliberately lock-free — CPython
    attribute increments are atomic enough for monitoring counters, and
    the repo's engines are single-threaded per simulation anyway.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(
        self, name: str, reservoir: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    name, Histogram(name, reservoir)
                )
        return metric

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One JSON-serializable view of every registered metric.

        Zero-valued counters/gauges and empty histograms are included —
        a bench consumer can rely on a metric existing once the code
        path that registers it has been imported.
        """
        return {
            "counters": {
                name: metric.snapshot()
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.snapshot()
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.snapshot()
                for name, metric in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid)."""
        with self._lock:
            for group in (self._counters, self._gauges, self._histograms):
                for metric in group.values():
                    metric.reset()

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        """Look up a metric of any kind by name (None when unregistered)."""
        return (
            self._counters.get(name)
            or self._gauges.get(name)
            or self._histograms.get(name)
        )


#: The process-wide registry every subsystem reports into.
_REGISTRY = MetricsRegistry()  # repro: guarded-by(MetricsRegistry._lock)


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY
