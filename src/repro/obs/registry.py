"""The process-wide metrics registry.

Three metric kinds cover everything the experiments measure:

* :class:`Counter` — monotonically growing totals (page reads, evictions,
  merged entries).  Hot paths update counters with a bare
  ``counter.value += 1`` so a page access costs one attribute increment.
* :class:`Gauge` — last-written values (pages on disk, leaf utilization).
* :class:`Histogram` — sample distributions with ``p50``/``p95``/``max``
  (per-query latency, span durations).  Samples are kept in a bounded
  reservoir so long benches cannot grow memory without limit.

Metrics are owned by a :class:`MetricsRegistry`; the module-level
:func:`get_registry` instance is what the storage substrate and engines
report into.  ``reset()`` zeroes every metric *in place* — registered
handles held by other modules keep working across resets, which is what
lets tests snapshot/reset around a single operation.

Thread-safety contract
----------------------
The serving layer (:mod:`repro.server`) updates metrics from HTTP worker
threads, the admission executor, and the refresh thread concurrently, so
every *method* entry point — :meth:`Counter.inc`, :meth:`Gauge.set`,
:meth:`Gauge.add`, :meth:`Histogram.observe`, and each ``reset`` /
``snapshot`` — takes the metric's own lock and is safe under concurrent
writers.  The bare ``counter.value += 1`` fast path deliberately stays
lock-free: it is reserved for the single-writer simulation hot paths
(engine execution is serialized per engine by the admission queue and the
refresh lock), where a lock per page access would be pure overhead.
Multi-threaded writers must use the method API.  Registry-level
``snapshot``/``reset`` copy the metric tables under the registry lock, so
they cannot race concurrent registration either.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

Number = Union[int, float]

#: Histogram reservoir size.  Big enough that p95 over an experiment batch
#: is exact in practice; bounded so histograms cannot leak memory.
DEFAULT_RESERVOIR = 8192


class Counter:
    """A monotonically increasing total.

    Hot paths on single-writer simulation code may bypass :meth:`inc` and
    do ``counter.value += n`` directly; concurrent writers (server
    threads) must use :meth:`inc`, which is lock-guarded.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (may be fractional, e.g. milliseconds).

        Safe under concurrent writers: the read-modify-write happens
        under this metric's lock.
        """
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        """Zero the counter in place."""
        with self._lock:
            self.value = 0

    def snapshot(self) -> Number:
        """Current total."""
        return self.value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        """Record the current level."""
        with self._lock:
            self.value = value

    def add(self, delta: Number) -> None:
        """Shift the level by ``delta`` (atomic read-modify-write).

        The serving layer uses this for up/down levels — in-flight
        queries, pinned generations, admission depth — where two threads
        adjusting concurrently must never lose an update.
        """
        with self._lock:
            self.value += delta

    def reset(self) -> None:
        """Zero the gauge in place."""
        with self._lock:
            self.value = 0

    def snapshot(self) -> Number:
        """Current level."""
        return self.value


class Histogram:
    """A sample distribution summarized as count/sum/p50/p95/max.

    Keeps at most ``reservoir`` samples: once full, every second sample is
    dropped and the keep-rate halves, so the summary stays representative
    while memory stays bounded.  ``count``/``sum``/``max`` remain exact
    regardless of downsampling.  :meth:`observe` is a multi-step update
    (totals plus reservoir bookkeeping), so it — and every reader of the
    reservoir — takes the histogram's lock; interleaved lock-free calls
    could tear the reservoir state.
    """

    __slots__ = ("name", "count", "total", "max", "_samples", "_keep_every",
                 "_skip", "_reservoir", "_lock")

    def __init__(self, name: str, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self.name = name
        self._reservoir = max(2, reservoir)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: List[float] = []
        self._keep_every = 1
        self._skip = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        """Record one sample (safe under concurrent writers)."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            if v > self.max:
                self.max = v
            self._skip += 1
            if self._skip >= self._keep_every:
                self._skip = 0
                self._samples.append(v)
                if len(self._samples) >= self._reservoir:
                    # Halve the reservoir and the keep rate.
                    self._samples = self._samples[::2]
                    self._keep_every *= 2

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained samples (0 if empty)."""
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]

    def reset(self) -> None:
        """Zero the histogram in place."""
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.max = 0.0
            self._samples.clear()
            self._keep_every = 1
            self._skip = 0

    def snapshot(self) -> Dict[str, float]:
        """Summary dict: count, sum, mean, p50, p95, max.

        Taken under the lock so a concurrent :meth:`observe` cannot be
        seen half-applied (count moved, sum not yet).
        """
        with self._lock:
            count = self.count
            total = self.total
            maximum = self.max
            ordered = sorted(self._samples)

        def _pct(fraction: float) -> float:
            if not ordered:
                return 0.0
            rank = min(len(ordered) - 1, int(fraction * len(ordered)))
            return ordered[rank]

        mean = total / count if count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": mean,
            "p50": _pct(0.50),
            "p95": _pct(0.95),
            "max": maximum,
        }


class MetricsRegistry:
    """Owns every metric; hands out (and deduplicates) handles by name.

    Registration is locked (modules register at import time from any
    thread).  Update paths go through each metric's own lock (method API)
    or stay lock-free on single-writer hot paths (bare ``value += 1``;
    see the module docstring for the contract).  ``snapshot``/``reset``
    copy the metric tables under the registry lock so concurrent
    registration cannot invalidate the iteration.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(
        self, name: str, reservoir: int = DEFAULT_RESERVOIR
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(
                    name, Histogram(name, reservoir)
                )
        return metric

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """One JSON-serializable view of every registered metric.

        Zero-valued counters/gauges and empty histograms are included —
        a bench consumer can rely on a metric existing once the code
        path that registers it has been imported.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {
                name: metric.snapshot() for name, metric in counters
            },
            "gauges": {
                name: metric.snapshot() for name, metric in gauges
            },
            "histograms": {
                name: metric.snapshot() for name, metric in histograms
            },
        }

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid)."""
        with self._lock:
            groups = [
                list(self._counters.values()),
                list(self._gauges.values()),
                list(self._histograms.values()),
            ]
        for group in groups:
            for metric in group:
                metric.reset()

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        """Look up a metric of any kind by name (None when unregistered)."""
        return (
            self._counters.get(name)
            or self._gauges.get(name)
            or self._histograms.get(name)
        )


#: The process-wide registry every subsystem reports into.
_REGISTRY = MetricsRegistry()  # repro: guarded-by(MetricsRegistry._lock)


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY
