"""Lightweight span tracing over the metrics registry.

Usage::

    from repro.obs import trace

    with trace("rtree.merge_pack", entries=n):
        ...

Each completed span records its wall-clock duration into the histogram
``span.<name>.ms`` and bumps ``span.<name>.count``; numeric keyword tags
accumulate into ``span.<name>.<tag>`` counters (e.g. pages packed per
merge).  Spans may nest freely — they are independent measurements, not a
causal trace tree.

Tracing is **off by default** and costs one module-global check plus a
shared no-op context manager per call site when disabled, so instrumented
hot paths stay at production speed.  Enable it with the environment
variable :data:`TRACE_ENV` (``REPRO_TRACE=1``) or programmatically with
:func:`set_tracing` (tests, the bench harness).
"""

from __future__ import annotations

import os
import time
from typing import Optional, Union

from repro.obs.registry import get_registry

#: Environment variable that switches span tracing on for a process.
TRACE_ENV = "REPRO_TRACE"

_FORCED: Optional[bool] = None  # repro: worker-local
_ENABLED: bool = False  # resolved cache; recomputed on set_tracing()  # repro: worker-local


def _resolve() -> bool:
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(TRACE_ENV, "").lower() not in ("", "0", "false", "no")


def set_tracing(enabled: Optional[bool]) -> None:
    """Force tracing on/off; ``None`` defers to ``REPRO_TRACE`` again."""
    global _FORCED, _ENABLED
    _FORCED = enabled
    _ENABLED = _resolve()


def tracing_enabled() -> bool:
    """True when spans are being recorded."""
    return _ENABLED


def tracing_override() -> Optional[bool]:
    """The current :func:`set_tracing` override (None = env-driven).

    Callers that force tracing temporarily (the bench harness) save this
    and pass it back to :func:`set_tracing` to restore the prior state.
    """
    return _FORCED


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()  # repro: read-only


class Span:
    """One timed operation; records itself on exit (even on error)."""

    __slots__ = ("name", "tags", "_start")

    def __init__(self, name: str, tags: dict) -> None:
        self.name = name
        self.tags = tags
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed_ms = (time.perf_counter() - self._start) * 1000.0
        registry = get_registry()
        registry.histogram(f"span.{self.name}.ms").observe(elapsed_ms)
        registry.counter(f"span.{self.name}.count").inc()
        for tag, value in self.tags.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                registry.counter(f"span.{self.name}.{tag}").inc(value)


def trace(name: str, **tags: Union[int, float, str]) -> Union[Span, _NoopSpan]:
    """Open a span named ``name``; free when tracing is disabled."""
    if not _ENABLED:
        return _NOOP
    return Span(name, tags)


# Resolve the environment once at import; set_tracing() re-resolves.
_ENABLED = _resolve()
