"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InternalError(ReproError):
    """An internal invariant did not hold — a bug in the library itself.

    Used where production code would otherwise reach for ``assert``:
    unlike asserts, these checks survive ``python -O``.
    """


class StorageError(ReproError):
    """Low-level storage failure (bad page id, page overflow, ...)."""


class IntegrityError(StorageError):
    """A structural invariant of an on-disk structure is violated.

    Raised by the :mod:`repro.analysis.fsck` verifier (and by the debug
    post-conditions on bulk load / merge-pack) when a packed tree is not
    in the state the storage format promises.
    """


class PageOverflowError(StorageError):
    """A record or node does not fit in a single page."""


class InvalidRecordError(StorageError):
    """A record does not match the schema it is being encoded against."""


class IndexError_(ReproError):
    """Base class for index (B+-tree / R-tree) errors."""


class DuplicateKeyError(IndexError_):
    """An insert found an existing entry with the same unique key."""


class KeyNotFoundError(IndexError_):
    """A lookup/update targeted a key that is not in the index."""


class SchemaError(ReproError):
    """A table/view definition is inconsistent."""


class CatalogError(ReproError):
    """Unknown or duplicate table/index/view name."""


class InvalidCoordinateError(ReproError):
    """A view tuple mapped to a Cubetree has a non-positive coordinate.

    The valid-mapping transformation pads unused coordinates with zero, so
    real coordinate values must be strictly positive integers (paper,
    Sec. 2.2).
    """


class MappingError(ReproError):
    """A set of views cannot be mapped as requested (e.g. two views of the
    same arity forced into one Cubetree)."""


class QueryError(ReproError):
    """A query references unknown attributes or cannot be routed to any
    materialized view."""


class SQLError(ReproError):
    """The SQL front end could not tokenize, parse, or bind a statement."""


class UpdateTimeoutError(ReproError):
    """An (simulated) update run exceeded its down-time window deadline."""
