"""Star schema model: dimensions linked by a central fact table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import SchemaError


@dataclass
class Dimension:
    """One dimension table.

    Parameters
    ----------
    name:
        Dimension name (``part``, ``supplier``, ...).
    key:
        Primary-key attribute referenced by the fact table.
    attributes:
        All attribute names, with ``key`` first.
    rows:
        Tuples parallel to ``attributes``.  Attribute values used for
        grouping (brands, months, ...) are integer-coded so they can be
        Cubetree coordinates directly.
    """

    name: str
    key: str
    attributes: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.attributes or self.attributes[0] != self.key:
            raise SchemaError(
                f"dimension {self.name!r}: first attribute must be the key"
            )

    def __len__(self) -> int:
        return len(self.rows)

    def attribute_index(self, attr: str) -> int:
        """Position of an attribute within this dimension's rows."""
        try:
            return self.attributes.index(attr)
        except ValueError:
            raise SchemaError(
                f"dimension {self.name!r} has no attribute {attr!r}"
            ) from None

    def column_map(self, attr: str) -> Dict[int, object]:
        """key value -> attribute value (for joining / hierarchy lookups)."""
        idx = self.attribute_index(attr)
        return {row[0]: row[idx] for row in self.rows}

    def distinct_count(self, attr: str) -> int:
        """Number of distinct values of an attribute."""
        idx = self.attribute_index(attr)
        return len({row[idx] for row in self.rows})


@dataclass
class StarSchema:
    """The warehouse: a fact table schema plus its dimensions.

    Parameters
    ----------
    fact_keys:
        Foreign-key attributes of the fact table, in column order.
    measure:
        The primary measure attribute name (``quantity``).
    dimensions:
        ``fact key attribute -> Dimension``.
    extra_measures:
        Further measure columns after the primary one (TPC-D's
        ``extendedprice`` etc.); views may aggregate any of them.
    """

    fact_keys: Tuple[str, ...]
    measure: str
    dimensions: Dict[str, Dimension]
    extra_measures: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for key in self.fact_keys:
            if key not in self.dimensions:
                raise SchemaError(f"no dimension for fact key {key!r}")
        names = (self.measure,) + self.extra_measures
        if len(set(names)) != len(names):
            raise SchemaError("duplicate measure names")

    @property
    def measures(self) -> Tuple[str, ...]:
        """Every measure column, primary first."""
        return (self.measure,) + self.extra_measures

    @property
    def fact_columns(self) -> Tuple[str, ...]:
        """Fact-table column names: foreign keys then the measures."""
        return self.fact_keys + self.measures

    def dimension_of(self, fact_key: str) -> Dimension:
        """The dimension referenced by a fact foreign key."""
        try:
            return self.dimensions[fact_key]
        except KeyError:
            raise SchemaError(f"unknown fact key {fact_key!r}") from None

    def distinct_count(self, attr: str) -> int:
        """Distinct values of a groupable attribute (fact key or hierarchy
        attribute of some dimension)."""
        if attr in self.dimensions:
            return len(self.dimensions[attr])
        for dim in self.dimensions.values():
            if attr in dim.attributes:
                return dim.distinct_count(attr)
        raise SchemaError(f"unknown attribute {attr!r}")

    def groupable_attributes(self) -> Tuple[str, ...]:
        """Every attribute a view may group by."""
        out: List[str] = list(self.fact_keys)
        for fact_key in self.fact_keys:
            dim = self.dimensions[fact_key]
            out.extend(a for a in dim.attributes[1:] if a not in out)
        return tuple(out)

    def key_domain(self, fact_key: str) -> Sequence[int]:
        """The key values of a dimension (query generators draw from it)."""
        return [row[0] for row in self.dimension_of(fact_key).rows]
