"""Deterministic TPC-D-style data generation (DBGEN-alike).

The paper generated its data with TPC-D's DBGEN at scale factor 1 (1 GB,
6,001,215 fact rows over 200k parts / 10k suppliers / 150k customers) and a
10% increment for the refresh experiment.  This module reproduces those
cardinality *ratios* at any scale factor so the experiments run at laptop
scale; only the three foreign keys and the ``quantity`` measure matter to
the evaluation.

Everything is seeded: the same (scale factor, seed) always produces the
same warehouse, and increments are generated from an independent stream so
base data and deltas are reproducible separately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import Dimension, StarSchema

# TPC-D scale-factor-1 cardinalities.
PARTS_PER_SF = 200_000
SUPPLIERS_PER_SF = 10_000
CUSTOMERS_PER_SF = 150_000
LINEITEMS_PER_SF = 6_001_215

#: TPC-D value domains.
NUM_BRANDS = 25
NUM_TYPES = 150
NUM_CONTAINERS = 40
NUM_NATIONS = 25
MAX_QUANTITY = 50

#: TPC-D's PARTSUPP gives every part exactly four eligible suppliers.
SUPPLIERS_PER_PART = 4

#: Time dimension: 7 years of days (TPC-D covers 1992–1998).
NUM_YEARS = 7
DAYS_PER_YEAR = 365

FactRow = Tuple[int, int, int, int]


@dataclass
class WarehouseData:
    """A generated warehouse instance."""

    scale_factor: float
    schema: StarSchema
    facts: List[Tuple]

    @property
    def num_facts(self) -> int:
        """Number of fact rows in this instance."""
        return len(self.facts)

    def hierarchy(self, fact_key: str, attribute: str) -> Hierarchy:
        """Hierarchy level for a dimension attribute (e.g. part -> brand)."""
        return Hierarchy.from_dimension(
            self.schema.dimension_of(fact_key), attribute
        )


class TPCDGenerator:
    """Generates warehouses and increments at a configurable scale.

    Parameters
    ----------
    scale_factor:
        Fraction of TPC-D SF 1 (default 0.01 -> ~60k fact rows).
    seed:
        Master seed; all streams derive from it.
    include_time:
        When true, fact rows carry a ``timekey`` foreign key and the
        schema gains the ``time`` dimension (used by the Sec. 2.4
        worked example with month/year roll-ups).
    """

    def __init__(
        self,
        scale_factor: float = 0.01,
        seed: int = 42,
        include_time: bool = False,
        include_price: bool = False,
    ) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed
        self.include_time = include_time
        self.include_price = include_price
        self.num_parts = max(1, round(PARTS_PER_SF * scale_factor))
        self.num_suppliers = max(1, round(SUPPLIERS_PER_SF * scale_factor))
        self.num_customers = max(1, round(CUSTOMERS_PER_SF * scale_factor))
        self.num_facts = max(1, round(LINEITEMS_PER_SF * scale_factor))
        self.num_days = NUM_YEARS * DAYS_PER_YEAR

    # ------------------------------------------------------------------
    # dimensions
    # ------------------------------------------------------------------
    def part_dimension(self) -> Dimension:
        """Generate the part dimension (brand/type/size/container)."""
        rng = random.Random(f"{self.seed}/part")
        rows = [
            (
                key,
                f"Part#{key:06d}",
                rng.randint(1, NUM_BRANDS),
                rng.randint(1, NUM_TYPES),
                rng.randint(1, 50),
                rng.randint(1, NUM_CONTAINERS),
            )
            for key in range(1, self.num_parts + 1)
        ]
        return Dimension(
            "part",
            "partkey",
            ("partkey", "name", "brand", "type", "size", "container"),
            rows,
        )

    def supplier_dimension(self) -> Dimension:
        """Generate the supplier dimension."""
        rng = random.Random(f"{self.seed}/supplier")
        rows = [
            (key, f"Supplier#{key:06d}", rng.randint(1, NUM_NATIONS))
            for key in range(1, self.num_suppliers + 1)
        ]
        return Dimension(
            "supplier", "suppkey", ("suppkey", "name", "nation"), rows
        )

    def customer_dimension(self) -> Dimension:
        """Generate the customer dimension."""
        rng = random.Random(f"{self.seed}/customer")
        rows = [
            (key, f"Customer#{key:06d}", rng.randint(1, NUM_NATIONS))
            for key in range(1, self.num_customers + 1)
        ]
        return Dimension(
            "customer", "custkey", ("custkey", "name", "nation"), rows
        )

    def time_dimension(self) -> Dimension:
        """Generate the time dimension (day -> month -> year)."""
        rows = []
        for key in range(1, self.num_days + 1):
            year = (key - 1) // DAYS_PER_YEAR + 1
            month = (key - 1) // 30 + 1  # integer-coded running month
            rows.append((key, month, year))
        return Dimension("time", "timekey", ("timekey", "month", "year"), rows)

    def schema(self) -> StarSchema:
        """The star schema for this generator's configuration."""
        dims = {
            "partkey": self.part_dimension(),
            "suppkey": self.supplier_dimension(),
            "custkey": self.customer_dimension(),
        }
        keys: Tuple[str, ...] = ("partkey", "suppkey", "custkey")
        if self.include_time:
            dims["timekey"] = self.time_dimension()
            keys = keys + ("timekey",)
        extra = ("extendedprice",) if self.include_price else ()
        return StarSchema(fact_keys=keys, measure="quantity",
                          dimensions=dims, extra_measures=extra)

    # ------------------------------------------------------------------
    # facts
    # ------------------------------------------------------------------
    def generate(self) -> WarehouseData:
        """Generate the base warehouse."""
        facts = self._fact_rows(self.num_facts, stream="base")
        return WarehouseData(self.scale_factor, self.schema(), facts)

    def generate_increment(
        self, fraction: float = 0.1, stream: str = "increment"
    ) -> List[Tuple]:
        """Generate a refresh increment (default 10%, as in the paper)."""
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        count = max(1, round(self.num_facts * fraction))
        return self._fact_rows(count, stream=stream)

    def eligible_suppliers(self, partkey: int) -> List[int]:
        """The ``SUPPLIERS_PER_PART`` suppliers that stock a part.

        TPC-D's PARTSUPP table gives every part exactly four suppliers,
        derived arithmetically from the part key; lineitems draw their
        supplier from that set.  This correlation is what keeps
        ``V{partkey,suppkey}`` at ~4x the part count instead of ~|F|
        distinct pairs — the effect the paper's view-selection outcome
        depends on.
        """
        s = self.num_suppliers
        return [
            (partkey + i * (s // SUPPLIERS_PER_PART + (partkey - 1) // s)) % s
            + 1
            for i in range(SUPPLIERS_PER_PART)
        ]

    def part_price(self, partkey: int) -> int:
        """Deterministic part retail price (TPC-D-style arithmetic)."""
        return 900 + partkey % 1000

    def _fact_rows(self, count: int, stream: str) -> List[Tuple]:
        rng = random.Random(f"{self.seed}/{stream}")
        parts, custs = self.num_parts, self.num_customers
        days = self.num_days
        rows: List[Tuple] = []
        for _ in range(count):
            partkey = rng.randint(1, parts)
            suppkey = rng.choice(self.eligible_suppliers(partkey))
            custkey = rng.randint(1, custs)
            row: Tuple = (partkey, suppkey, custkey)
            if self.include_time:
                row += (rng.randint(1, days),)
            quantity = rng.randint(1, MAX_QUANTITY)
            row += (quantity,)
            if self.include_price:
                row += (quantity * self.part_price(partkey),)
            rows.append(row)
        return rows
