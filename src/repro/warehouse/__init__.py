"""Star-schema warehouse model and TPC-D-style data generation.

The paper's experiments use the TPC-D business warehouse restricted to the
part / supplier / customer dimensions with the ``quantity`` measure
(Fig. 1).  :mod:`repro.warehouse.tpcd` is a deterministic DBGEN-alike for
that subset (plus a ``time`` dimension for the Sec. 2.4 example), with 10%
increments for the refresh experiment.
"""

from repro.warehouse.hierarchy import Hierarchy
from repro.warehouse.star import Dimension, StarSchema
from repro.warehouse.tpcd import TPCDGenerator, WarehouseData

__all__ = [
    "Dimension",
    "Hierarchy",
    "StarSchema",
    "TPCDGenerator",
    "WarehouseData",
]
