"""Attribute hierarchies along dimensions (day -> month -> year, etc.).

A hierarchy maps a dimension's key values to a coarser integer-coded
attribute, enabling the paper's roll-up/drill-down views (e.g. grouping
fact rows by ``part.brand`` requires the part-key -> brand mapping that a
join with the ``part`` dimension would produce).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from repro.errors import SchemaError
from repro.warehouse.star import Dimension


@dataclass(frozen=True)
class Hierarchy:
    """One level of a dimension hierarchy.

    Parameters
    ----------
    dimension:
        Dimension name this level belongs to.
    attribute:
        The coarser attribute (``brand``, ``month``, ...).
    mapping:
        dimension key value -> integer-coded attribute value.
    """

    dimension: str
    attribute: str
    mapping: Dict[int, int]

    @classmethod
    def from_dimension(cls, dim: Dimension, attribute: str) -> "Hierarchy":
        """Extract a level from a dimension table's column."""
        column = dim.column_map(attribute)
        for key, value in column.items():
            if not isinstance(value, int):
                raise SchemaError(
                    f"hierarchy attribute {attribute!r} of {dim.name!r} "
                    f"must be integer-coded, found {type(value).__name__}"
                )
        return cls(dim.name, attribute, column)  # type: ignore[arg-type]

    def roll_up(self, key: int) -> int:
        """Map a fine key to its coarse value."""
        try:
            return self.mapping[key]
        except KeyError:
            raise SchemaError(
                f"{self.dimension}.{self.attribute}: unknown key {key}"
            ) from None

    def distinct_count(self) -> int:
        """Number of distinct coarse values of this level."""
        return len(set(self.mapping.values()))

    def roll_up_rows(
        self, rows: Iterable[Tuple], key_index: int
    ) -> Iterator[Tuple]:
        """Replace column ``key_index`` of each row with its coarse value.

        This is the pre-joined form of ``F JOIN dim GROUP BY dim.attr``.
        """
        for row in rows:
            coarse = self.roll_up(row[key_index])  # type: ignore[arg-type]
            yield row[:key_index] + (coarse,) + row[key_index + 1 :]
