"""Integer hyper-rectangles (MBRs) for the R-tree layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box ``[lows[i], highs[i]]`` per dimension."""

    lows: Tuple[int, ...]
    highs: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ValueError("lows/highs dimensionality mismatch")
        for lo, hi in zip(self.lows, self.highs):
            if lo > hi:
                raise ValueError(f"degenerate rect: low {lo} > high {hi}")

    @property
    def dims(self) -> int:
        """Dimensionality."""
        return len(self.lows)

    @classmethod
    def from_point(cls, point: Sequence[int]) -> "Rect":
        """The degenerate rect covering exactly one point."""
        p = tuple(point)
        return cls(p, p)

    @classmethod
    def cover(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rect containing every input rect."""
        rects = list(rects)
        if not rects:
            raise ValueError("cover of no rects")
        dims = rects[0].dims
        lows = tuple(min(r.lows[d] for r in rects) for d in range(dims))
        highs = tuple(max(r.highs[d] for r in rects) for d in range(dims))
        return cls(lows, highs)

    @classmethod
    def cover_points(cls, points: Iterable[Sequence[int]]) -> "Rect":
        """Smallest rect containing every point."""
        pts = [tuple(p) for p in points]
        if not pts:
            raise ValueError("cover of no points")
        dims = len(pts[0])
        lows = tuple(min(p[d] for p in pts) for d in range(dims))
        highs = tuple(max(p[d] for p in pts) for d in range(dims))
        return cls(lows, highs)

    def contains_point(self, point: Sequence[int]) -> bool:
        """True when the point lies inside this box."""
        return all(
            lo <= c <= hi
            for lo, c, hi in zip(self.lows, point, self.highs)
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True when the other box lies fully inside this one."""
        return all(
            slo <= olo and ohi <= shi
            for slo, shi, olo, ohi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the boxes overlap (closed bounds)."""
        return all(
            slo <= ohi and olo <= shi
            for slo, shi, olo, ohi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def union(self, other: "Rect") -> "Rect":
        """Smallest box covering both."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def area(self) -> int:
        """Hyper-volume (0 for degenerate boxes)."""
        result = 1
        for lo, hi in zip(self.lows, self.highs):
            result *= hi - lo
        return result

    def margin(self) -> int:
        """Sum of side lengths (used by some split heuristics)."""
        return sum(hi - lo for lo, hi in zip(self.lows, self.highs))

    def enlargement(self, other: "Rect") -> int:
        """Extra area needed to absorb ``other`` (Guttman's criterion)."""
        return self.union(other).area() - self.area()
