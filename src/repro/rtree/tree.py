"""R-tree search plus classic dynamic (Guttman) insertion.

The Cubetree engine never inserts one point at a time — it always packs
(:mod:`repro.rtree.packing`) or merge-packs (:mod:`repro.rtree.merge`).
Dynamic insertion with quadratic splits is kept as the ablation baseline
demonstrating *why*: dynamically-built trees have ~50-70% leaf utilization
and random write patterns, packed trees have ~100% and sequential writes.

Pin protocol: ``_fetch_node`` pins and returns ``(node, page)``; callers
``_release`` (read-only) or ``_flush_node`` (write + unpin dirty) once.
"""

from __future__ import annotations

from contextlib import closing
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.constants import PAGE_SIZE
from repro.errors import InvalidCoordinateError, StorageError
from repro.obs import get_registry
from repro.rtree.geometry import Rect
from repro.rtree.kernels import (
    FoldAccumulator,
    leaf_columns,
    select_rows,
    vector_kernels_enabled,
)
from repro.rtree.node import (
    LEAF_TYPES,
    RInteriorNode,
    RLeafNode,
    columnar_leaf_size,
    interior_capacity,
    leaf_capacity,
    node_type_of,
)
from repro.storage.buffer import BufferPool
from repro.storage.page import Page

Point = Tuple[int, ...]
Values = Tuple[float, ...]
#: (view_id, padded point, aggregate values) — what searches yield.
Match = Tuple[int, Point, Values]

#: Sentinel extent the packer records for a view that materialized zero
#: rows.  A real extent is a pair of leaf page ids (both >= 0), so the
#: pair (-1, -1) is unambiguous; ``run_bounds`` maps it to the empty
#: position range and run seeks/scans yield nothing instead of
#: misfiring on a degenerate ``(first, last)`` pair.
EMPTY_EXTENT: Tuple[int, int] = (-1, -1)

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_SEARCHES = _REG.counter("rtree.searches")
_OBS_INSERTS = _REG.counter("rtree.inserts")
_OBS_RUN_SEARCHES = _REG.counter("rtree.run_searches")
_OBS_RUN_SCANS = _REG.counter("rtree.run_scans")

#: Leaves prefetched per read-ahead window during a run scan.
RUN_READAHEAD = 8

#: Reversed-coordinate key — the order packed runs are sorted in.
RunKey = Tuple[int, ...]
#: A slice request against one view's leaf run: the full filter rect plus
#: lower/upper bounds on the leading run-key prefix (empty = unbounded).
RunRequest = Tuple[Rect, RunKey, RunKey]


def _discriminating_dim(rect: Rect) -> Optional[int]:
    """A dimension whose equality bound can index a run request.

    Zero is the padding value every point of a run shares, so a ``0==0``
    bound carries no information; returns None for pure scans and
    all-range requests, which must be tested against every point.
    """
    for dim, (lo, hi) in enumerate(zip(rect.lows, rect.highs)):
        if lo == hi and lo != 0:
            return dim
    return None


class RTree:
    """A d-dimensional R-tree over the paged substrate.

    Parameters
    ----------
    pool:
        Shared buffer pool.
    dims:
        Dimensionality of the indexed space.
    n_aggs:
        Aggregate values carried per point (for dynamically built trees;
        packed leaves carry their own per-view value counts).
    """

    def __init__(self, pool: BufferPool, dims: int, n_aggs: int = 1) -> None:
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.pool = pool
        self.dims = dims
        self.n_aggs = n_aggs
        self.interior_capacity = interior_capacity(dims)
        self.dynamic_leaf_capacity = leaf_capacity(dims, n_aggs)
        self.count = 0
        self.height = 0
        self.root_page_id = -1
        #: Leaf page ids in sort order; maintained by the packer/merger so
        #: merge-pack can stream the old tree sequentially.
        self.leaf_page_ids: List[int] = []
        #: Every page this tree owns (leaves + interiors), maintained by
        #: the packer and by dynamic inserts so the tree can be retired
        #: without re-reading it from disk.
        self.owned_page_ids: List[int] = []
        #: Per-view leaf-run extents ``view_id -> (first, last)`` leaf
        #: page ids, recorded by the packer and persisted in the catalog.
        #: Empty for dynamically built trees and for trees restored from
        #: checkpoints that predate the field — run fast paths then fall
        #: back to the interior descent.
        self.view_extents: Dict[int, Tuple[int, int]] = {}
        #: Lazily resolved ``view_id -> (lo, hi)`` positions of each
        #: extent inside :attr:`leaf_page_ids`.
        self._run_index: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def search(self, rect: Rect) -> Iterator[Match]:
        """Yield every stored point inside ``rect``."""
        if rect.dims != self.dims:
            raise ValueError(
                f"query rect has {rect.dims} dims, tree has {self.dims}"
            )
        _OBS_SEARCHES.value += 1
        if self.root_page_id == -1:
            return
        yield from self._search(self.root_page_id, rect)

    def scan_leaf_chain(self) -> Iterator[RLeafNode]:
        """Yield leaves in packed (sort) order via the next-leaf chain.

        Each page's pin is released in a ``finally`` block, so a consumer
        that abandons the iterator early (``break``, exception,
        ``close()``) still leaves the pool fully unpinned.
        """
        if not self.leaf_page_ids:
            return
        page_id = self.leaf_page_ids[0]
        while page_id != -1:
            node, page = self._fetch_node(page_id)
            try:
                if not isinstance(node, RLeafNode):
                    raise StorageError("leaf chain points at a non-leaf page")
                next_id = node.next_leaf
                yield node
            finally:
                self._release(page)
            page_id = next_id

    def scan_points(self) -> Iterator[Match]:
        """Yield every stored point in leaf-chain order."""
        with closing(self.scan_leaf_chain()) as leaves:
            for leaf in leaves:
                for point, values in zip(leaf.points, leaf.values):
                    yield (
                        leaf.view_id,
                        leaf.padded_point(point, self.dims),
                        values,
                    )

    # ------------------------------------------------------------------
    # packed-run fast paths
    # ------------------------------------------------------------------
    def run_bounds(self, view_id: int) -> Optional[Tuple[int, int]]:
        """Positions ``(lo, hi)`` of ``view_id``'s leaf run inside
        :attr:`leaf_page_ids`, or None when no extent is recorded."""
        cached = self._run_index.get(view_id)
        if cached is not None:
            return cached
        extent = self.view_extents.get(view_id)
        if extent is None:
            return None
        if extent == EMPTY_EXTENT:
            # Zero-row view: an empty position range (hi < lo), so every
            # run scan/seek degenerates to yielding nothing.
            self._run_index[view_id] = (0, -1)
            return (0, -1)
        first, last = extent
        try:
            lo = self.leaf_page_ids.index(first)
            hi = self.leaf_page_ids.index(last, lo)
        except ValueError as exc:
            raise StorageError(
                f"leaf-run extent {extent} of view {view_id} not found "
                "in the leaf chain"
            ) from exc
        self._run_index[view_id] = (lo, hi)
        return (lo, hi)

    def scan_run(self, view_id: int) -> Iterator[RLeafNode]:
        """Yield the view's packed leaves as one sequential run scan.

        Pages are fetched through the pool's probationary (scan) segment
        with read-ahead, so an unbound slice query costs one positioning
        seek plus sequential transfers and cannot wipe the hot set.
        """
        bounds = self.run_bounds(view_id)
        if bounds is None:
            raise StorageError(
                f"no leaf-run extent recorded for view {view_id}"
            )
        _OBS_RUN_SCANS.value += 1
        yield from self._scan_leaves(bounds[0], bounds[1], view_id)

    def search_run(
        self,
        view_id: int,
        rect: Rect,
        lo_key: RunKey = (),
        hi_key: RunKey = (),
    ) -> Iterator[Match]:
        """Answer ``rect`` over the view's leaf run without descending
        interior nodes.

        ``lo_key``/``hi_key`` bound the leading prefix of the run's
        reversed-coordinate sort key (empty tuples = unbounded).  When a
        prefix is bound, the starting leaf is located by binary search on
        leaf first-keys and the scan stops at the first leaf past
        ``hi_key``; every candidate point is still filtered through the
        full ``rect``, so the match set (and its order) is identical to
        :meth:`search` restricted to this view.

        Columnar (type 3) leaves are evaluated through the vectorized
        kernels (:mod:`repro.rtree.kernels`) while they are enabled: the
        rectangle alone selects the entries column-at-a-time.  That is
        equivalent to the scalar key-then-rect filtering — the slice
        compiler derives ``lo_key``/``hi_key`` *from* the rectangle's
        per-dimension bounds, and componentwise containment implies the
        lexicographic prefix bounds — so the per-point key checks are
        redundant within a scanned leaf.  Row leaves (and a disabled
        gate) keep the scalar path.
        """
        if rect.dims != self.dims:
            raise ValueError(
                f"query rect has {rect.dims} dims, tree has {self.dims}"
            )
        bounds = self.run_bounds(view_id)
        if bounds is None:
            raise StorageError(
                f"no leaf-run extent recorded for view {view_id}"
            )
        _OBS_RUN_SEARCHES.value += 1
        lo_idx, hi_idx = bounds
        lo = tuple(lo_key)
        hi = tuple(hi_key)
        start = self._run_seek(lo_idx, hi_idx, lo) if lo else lo_idx
        use_kernel = vector_kernels_enabled()
        with closing(
            self._scan_leaves(start, hi_idx, view_id, cache=use_kernel)
        ) as leaves:
            for leaf in leaves:
                points = leaf.points
                if not points:
                    continue
                if hi and tuple(reversed(points[0]))[: len(hi)] > hi:
                    break
                if use_kernel and leaf.columnar:
                    sel = select_rows(leaf_columns(leaf), rect, self.dims)
                    if sel is None:
                        continue
                    pad = (0,) * (self.dims - leaf.arity)
                    values = leaf.values
                    vid = leaf.view_id
                    for i in sel:
                        yield vid, points[i] + pad, values[i]
                elif lo or hi:
                    keys = [tuple(reversed(pt)) for pt in points]
                    for point, key, values in zip(
                        points, keys, leaf.values
                    ):
                        if key[: len(lo)] < lo:
                            continue
                        if hi and key[: len(hi)] > hi:
                            break
                        padded = leaf.padded_point(point, self.dims)
                        if rect.contains_point(padded):
                            yield leaf.view_id, padded, values
                else:
                    # Unbounded scan: no run keys to build or compare.
                    for point, values in zip(points, leaf.values):
                        padded = leaf.padded_point(point, self.dims)
                        if rect.contains_point(padded):
                            yield leaf.view_id, padded, values

    def search_run_fold(
        self,
        view_id: int,
        rect: Rect,
        acc: FoldAccumulator,
        lo_key: RunKey = (),
        hi_key: RunKey = (),
    ) -> None:
        """Fold every match of ``rect`` into ``acc`` without building
        per-row match tuples (aggregate pushdown).

        Scans exactly the leaves :meth:`search_run` would — same seek,
        same early break, same scan admission — so simulated I/O is
        identical; only the per-match consumption differs.  Columnar
        leaves fold whole measure-column slices through the kernel
        selection; row leaves fall back to per-row folds.  Fold order is
        run order, the same serial order
        :func:`repro.core.answer.finalize_matches` combines matches in.
        """
        if rect.dims != self.dims:
            raise ValueError(
                f"query rect has {rect.dims} dims, tree has {self.dims}"
            )
        bounds = self.run_bounds(view_id)
        if bounds is None:
            raise StorageError(
                f"no leaf-run extent recorded for view {view_id}"
            )
        _OBS_RUN_SEARCHES.value += 1
        lo_idx, hi_idx = bounds
        lo = tuple(lo_key)
        hi = tuple(hi_key)
        start = self._run_seek(lo_idx, hi_idx, lo) if lo else lo_idx
        use_kernel = vector_kernels_enabled()
        with closing(
            self._scan_leaves(start, hi_idx, view_id, cache=use_kernel)
        ) as leaves:
            for leaf in leaves:
                points = leaf.points
                if not points:
                    continue
                if hi and tuple(reversed(points[0]))[: len(hi)] > hi:
                    break
                if use_kernel and leaf.columnar:
                    cols = leaf_columns(leaf)
                    sel = select_rows(cols, rect, self.dims)
                    if sel is not None:
                        acc.add_block(cols.measures, sel)
                elif lo or hi:
                    for point, values in zip(points, leaf.values):
                        key = tuple(reversed(point))
                        if key[: len(lo)] < lo:
                            continue
                        if hi and key[: len(hi)] > hi:
                            break
                        if rect.contains_point(
                            leaf.padded_point(point, self.dims)
                        ):
                            acc.add(values)
                else:
                    for point, values in zip(points, leaf.values):
                        if rect.contains_point(
                            leaf.padded_point(point, self.dims)
                        ):
                            acc.add(values)

    def search_run_group(
        self,
        view_id: int,
        requests: Sequence[RunRequest],
        folds: Optional[Sequence[Optional[FoldAccumulator]]] = None,
    ) -> List[List[Match]]:
        """Answer a batch of slice requests in one shared pass over the
        view's leaf run.

        ``requests`` holds ``(rect, lo_key, hi_key)`` triples sorted (or
        not — the pass is order-insensitive) by their run-key bounds; the
        scan starts at the earliest lower bound and each request drops
        out once the run moves past its upper bound.  Per-request match
        lists come back in run order, exactly as :meth:`search_run`
        would have produced one at a time.

        ``folds`` (aligned with ``requests``) marks requests consumed by
        aggregate pushdown: their matches are folded into the given
        :class:`FoldAccumulator` in run order instead of being collected
        (the returned list stays empty for them).  Folding never changes
        which leaves are scanned, so a mixed batch costs the same I/O.

        Columnar leaves are evaluated per request through the vectorized
        kernels while enabled (see :meth:`search_run` for why rectangle
        selection subsumes the per-point key checks); row leaves keep
        the scalar point-major pass.
        """
        results: List[List[Match]] = [[] for _ in requests]
        if not requests:
            return results
        bounds = self.run_bounds(view_id)
        if bounds is None:
            raise StorageError(
                f"no leaf-run extent recorded for view {view_id}"
            )
        lo_idx, hi_idx = bounds
        specs: List[RunRequest] = []
        for rect, lo_key, hi_key in requests:
            if rect.dims != self.dims:
                raise ValueError(
                    f"query rect has {rect.dims} dims, tree has {self.dims}"
                )
            specs.append((rect, tuple(lo_key), tuple(hi_key)))
        sinks: List[Optional[FoldAccumulator]] = (
            list(folds) if folds is not None else [None] * len(specs)
        )
        if len(sinks) != len(specs):
            raise ValueError(
                f"{len(sinks)} fold slot(s) for {len(specs)} request(s)"
            )
        _OBS_RUN_SEARCHES.value += len(specs)
        start = lo_idx
        if all(spec[1] for spec in specs):
            start = self._run_seek(
                lo_idx, hi_idx, min(spec[1] for spec in specs)
            )
        # Point-major matching: a request with a discriminating equality
        # bound is indexed by that (dimension, value); each point then
        # probes the index with its own coordinates, so per-point work
        # scales with the handful of bound dimensions, not the number of
        # requests.  Requests with no equality bound (pure scans,
        # all-range bindings) are tested against every point.  The run
        # prefix bounds prune at leaf granularity only: a request whose
        # hi_key lies before a leaf's first key is retired, and the pass
        # stops once every request has retired.
        active = [True] * len(specs)
        remaining = len(specs)
        eq_index: Dict[Tuple[int, int], List[int]] = {}
        residual: List[int] = []
        for r, (rect, _lo, _hi) in enumerate(specs):
            dim = _discriminating_dim(rect)
            if dim is None:
                residual.append(r)
            else:
                eq_index.setdefault((dim, rect.lows[dim]), []).append(r)
        probe_dims = sorted({dim for dim, _value in eq_index})
        use_kernel = vector_kernels_enabled()
        with closing(
            self._scan_leaves(start, hi_idx, view_id, cache=use_kernel)
        ) as leaves:
            for leaf in leaves:
                if not leaf.points:
                    continue
                first = tuple(reversed(leaf.points[0]))
                for r, (_rect, _lo, hi) in enumerate(specs):
                    if active[r] and hi and first[: len(hi)] > hi:
                        active[r] = False
                        remaining -= 1
                if remaining == 0:
                    break
                if use_kernel and leaf.columnar:
                    cols = leaf_columns(leaf)
                    pad = (0,) * (self.dims - leaf.arity)
                    points = leaf.points
                    values = leaf.values
                    vid = leaf.view_id
                    for r in range(len(specs)):
                        if not active[r]:
                            continue
                        sel = select_rows(cols, specs[r][0], self.dims)
                        if sel is None:
                            continue
                        sink = sinks[r]
                        if sink is not None:
                            sink.add_block(cols.measures, sel)
                        else:
                            out = results[r]
                            for i in sel:
                                out.append((vid, points[i] + pad, values[i]))
                    continue
                for j, pt in enumerate(leaf.points):
                    candidates: List[int] = []
                    for dim in probe_dims:
                        if dim >= len(pt):
                            continue  # stored points are arity-truncated
                        found = eq_index.get((dim, pt[dim]))
                        if found:
                            candidates.extend(found)
                    if not candidates and not residual:
                        continue
                    point = leaf.padded_point(pt, self.dims)
                    values = leaf.values[j]
                    for r in candidates:
                        if active[r] and specs[r][0].contains_point(point):
                            sink = sinks[r]
                            if sink is None:
                                results[r].append(
                                    (leaf.view_id, point, values)
                                )
                            else:
                                sink.add(values)
                    for r in residual:
                        if active[r] and specs[r][0].contains_point(point):
                            sink = sinks[r]
                            if sink is None:
                                results[r].append(
                                    (leaf.view_id, point, values)
                                )
                            else:
                                sink.add(values)
        return results

    def _scan_leaves(
        self,
        lo: int,
        hi: int,
        view_id: Optional[int] = None,
        cache: bool = False,
    ) -> Iterator[RLeafNode]:
        """Yield leaves ``leaf_page_ids[lo..hi]`` through the scan
        (probationary) segment, reading ahead a window at a time.

        ``cache`` routes columnar-leaf decodes through the buffer pool's
        decoded-column side-cache (kernel consumers only)."""
        run = self.leaf_page_ids
        for idx in range(lo, hi + 1):
            if (idx - lo) % RUN_READAHEAD == 0:
                self.pool.prefetch_run(
                    run[idx : min(idx + RUN_READAHEAD, hi + 1)]
                )
            node, page = self._fetch_node(run[idx], scan=True, cache=cache)
            try:
                if not isinstance(node, RLeafNode):
                    raise StorageError(
                        "leaf run contains a non-leaf page"
                    )
                if view_id is not None and node.view_id != view_id:
                    raise StorageError(
                        f"leaf run of view {view_id} contains a page of "
                        f"view {node.view_id}"
                    )
                yield node
            finally:
                self._release(page)

    def _leaf_first_key(self, idx: int) -> RunKey:
        """Reversed-coordinate key of the first point in leaf ``idx``."""
        node, page = self._fetch_node(self.leaf_page_ids[idx], scan=True)
        try:
            if not isinstance(node, RLeafNode) or not node.points:
                raise StorageError(
                    "packed leaf run contains an empty or non-leaf page"
                )
            return tuple(reversed(node.points[0]))
        finally:
            self._release(page)

    def _run_seek(self, lo_idx: int, hi_idx: int, lo_key: RunKey) -> int:
        """Binary-search the run for the leaf where matches can start.

        Returns the position just before the leftmost leaf whose
        first-key prefix reaches ``lo_key`` — keys equal to the bound may
        begin in the preceding leaf, so the scan starts one leaf early.
        """
        p = len(lo_key)
        lo, hi = lo_idx, hi_idx + 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._leaf_first_key(mid)[:p] < lo_key:
                lo = mid + 1
            else:
                hi = mid
        return max(lo_idx, lo - 1)

    # ------------------------------------------------------------------
    # dynamic insertion (ablation baseline)
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[int], values: Sequence[float]) -> None:
        """Guttman-style one-at-a-time insert of a full-dimensional point."""
        pt = tuple(int(c) for c in point)
        if len(pt) != self.dims:
            raise ValueError(f"point has {len(pt)} dims, tree has {self.dims}")
        if any(c < 0 for c in pt):
            raise InvalidCoordinateError(f"negative coordinate in {pt}")
        vals = tuple(float(v) for v in values)
        if len(vals) != self.n_aggs:
            raise ValueError(f"expected {self.n_aggs} aggregate values")
        _OBS_INSERTS.value += 1
        # Dynamic inserts split and reorder leaves, so any packed-run
        # extents recorded for this tree no longer describe the chain.
        if self.view_extents:
            self.view_extents = {}
        self._run_index.clear()

        if self.root_page_id == -1:
            leaf = RLeafNode(view_id=-1, arity=self.dims, n_aggs=self.n_aggs)
            leaf.points.append(pt)
            leaf.values.append(vals)
            page = self.pool.new_page()
            self.root_page_id = page.page_id
            self.leaf_page_ids = [page.page_id]
            self.owned_page_ids.append(page.page_id)
            self.height = 1
            self._flush_node(leaf, page)
            self.count = 1
            return

        split = self._insert(self.root_page_id, pt, vals)
        if split is not None:
            (left_mbr, right_id, right_mbr) = split
            new_root = RInteriorNode(self.dims)
            new_root.children = [self.root_page_id, right_id]
            new_root.mbrs = [left_mbr, right_mbr]
            page = self.pool.new_page()
            self.root_page_id = page.page_id
            self.owned_page_ids.append(page.page_id)
            self._flush_node(new_root, page)
            self.height += 1
        self.count += 1

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Pages owned by this tree."""
        if self.root_page_id == -1:
            return 0
        return self._count_pages(self.root_page_id)

    def leaf_utilization(self) -> float:
        """Average leaf fill fraction (1.0 = every leaf at capacity)."""
        total = 0.0
        leaves = 0
        for leaf in self.scan_leaf_chain():
            if leaf.columnar:
                # Columnar leaves are byte-filled, not slot-filled.
                total += (
                    columnar_leaf_size(leaf.points, leaf.arity, leaf.n_aggs)
                    / PAGE_SIZE
                )
            else:
                cap = leaf_capacity(leaf.arity, leaf.n_aggs)
                total += len(leaf) / cap
            leaves += 1
        return total / leaves if leaves else 0.0

    def check_invariants(self) -> None:
        """Verify MBR containment and the stored point count."""
        if self.root_page_id == -1:
            if self.count != 0:
                raise StorageError("empty tree with non-zero count")
            return
        found = self._check_node(self.root_page_id)
        if found != self.count:
            raise StorageError(
                f"point count mismatch: tree={found} counter={self.count}"
            )

    # ------------------------------------------------------------------
    # node I/O
    # ------------------------------------------------------------------
    def _fetch_node(
        self, page_id: int, scan: bool = False, cache: bool = False
    ):
        page = self.pool.fetch_page(page_id, scan=scan)
        if page.cached_obj is None:
            node = self.pool.cached_columns(page_id) if cache else None
            if node is None:
                raw = bytes(page.data)
                if node_type_of(raw) in LEAF_TYPES:
                    node = RLeafNode.from_bytes(raw)
                else:
                    node = RInteriorNode.from_bytes(raw)
                if cache and isinstance(node, RLeafNode) and node.columnar:
                    # Scan pages churn out of the (probationary) pool
                    # quickly; keeping the decoded node in the side-cache
                    # spares the re-decode without touching simulated I/O.
                    nbytes = (
                        len(node.points) * 8 * (node.arity + node.n_aggs)
                    )
                    self.pool.store_columns(page_id, node, nbytes)
            page.cached_obj = node
        return page.cached_obj, page

    def _release(self, page: Page) -> None:
        self.pool.unpin_page(page.page_id)

    def _flush_node(self, node, page: Page) -> None:
        page.data[:] = node.to_bytes()
        page.cached_obj = node
        self.pool.unpin_page(page.page_id, dirty=True)

    # ------------------------------------------------------------------
    # search machinery
    # ------------------------------------------------------------------
    def _search(self, page_id: int, rect: Rect) -> Iterator[Match]:
        node, page = self._fetch_node(page_id)
        try:
            if isinstance(node, RLeafNode):
                if (
                    node.coord_cols is not None
                    and self.view_extents
                    and vector_kernels_enabled()
                ):
                    # Packed columnar leaf (dynamic inserts wipe the
                    # extents, so these leaves still satisfy the kernel
                    # preconditions: lead column sorted, coords >= 1).
                    cols = leaf_columns(node)
                    sel = select_rows(cols, rect, self.dims)
                    if sel is not None:
                        pad = (0,) * (self.dims - node.arity)
                        points = node.points
                        values = node.values
                        vid = node.view_id
                        for i in sel:
                            yield vid, points[i] + pad, values[i]
                else:
                    for point, values in zip(node.points, node.values):
                        padded = node.padded_point(point, self.dims)
                        if rect.contains_point(padded):
                            yield node.view_id, padded, values
            else:
                children = [
                    child
                    for child, mbr in zip(node.children, node.mbrs)
                    if rect.intersects(mbr)
                ]
        finally:
            self._release(page)
        if isinstance(node, RInteriorNode):
            for child in children:
                yield from self._search(child, rect)

    # ------------------------------------------------------------------
    # dynamic-insert machinery (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def _insert(
        self, page_id: int, point: Point, values: Values
    ) -> Optional[Tuple[Rect, int, Rect]]:
        """Insert below ``page_id``.

        Returns None when no split happened, else
        ``(this node's new MBR, new sibling page id, sibling MBR)``.
        The caller is responsible for updating its own entry for
        ``page_id`` — searching works off interior MBRs, so we recompute
        them on the way back up.
        """
        node, page = self._fetch_node(page_id)
        if isinstance(node, RLeafNode):
            node.points.append(point)
            node.values.append(values)
            node.coord_cols = None
            node.measure_cols = None
            if len(node.points) <= self.dynamic_leaf_capacity:
                self._flush_node(node, page)
                return None
            return self._split_leaf(node, page)

        # ChooseSubtree: least enlargement, ties by smallest area.
        point_rect = Rect.from_point(point)
        best_idx = min(
            range(len(node.children)),
            key=lambda i: (
                node.mbrs[i].enlargement(point_rect),
                node.mbrs[i].area(),
            ),
        )
        child_id = node.children[best_idx]
        self._release(page)
        split = self._insert(child_id, point, values)

        node, page = self._fetch_node(page_id)
        if split is None:
            node.mbrs[best_idx] = node.mbrs[best_idx].union(point_rect)
            self._flush_node(node, page)
            return None
        child_mbr, right_id, right_mbr = split
        node.mbrs[best_idx] = child_mbr
        node.children.insert(best_idx + 1, right_id)
        node.mbrs.insert(best_idx + 1, right_mbr)
        if len(node.children) <= self.interior_capacity:
            self._flush_node(node, page)
            return None
        return self._split_interior(node, page)

    def _split_leaf(
        self, node: RLeafNode, page: Page
    ) -> Tuple[Rect, int, Rect]:
        entries = [
            (Rect.from_point(p), (p, v))
            for p, v in zip(node.points, node.values)
        ]
        left, right = _quadratic_split(entries)
        node.points = [p for _, (p, _) in left]
        node.values = [v for _, (_, v) in left]
        node.coord_cols = None
        node.measure_cols = None
        sibling = RLeafNode(node.view_id, node.arity, node.n_aggs)
        sibling.points = [p for _, (p, _) in right]
        sibling.values = [v for _, (_, v) in right]
        sibling.next_leaf = node.next_leaf
        right_page = self.pool.new_page()
        node.next_leaf = right_page.page_id
        self.owned_page_ids.append(right_page.page_id)
        try:
            idx = self.leaf_page_ids.index(page.page_id)
            self.leaf_page_ids.insert(idx + 1, right_page.page_id)
        except ValueError:
            self.leaf_page_ids.append(right_page.page_id)
        left_mbr = Rect.cover_points(node.points)
        right_mbr = Rect.cover_points(sibling.points)
        self._flush_node(sibling, right_page)
        self._flush_node(node, page)
        return left_mbr, right_page.page_id, right_mbr

    def _split_interior(
        self, node: RInteriorNode, page: Page
    ) -> Tuple[Rect, int, Rect]:
        entries = [
            (mbr, (child, mbr))
            for child, mbr in zip(node.children, node.mbrs)
        ]
        left, right = _quadratic_split(entries)
        node.children = [c for _, (c, _) in left]
        node.mbrs = [m for _, (_, m) in left]
        sibling = RInteriorNode(self.dims)
        sibling.children = [c for _, (c, _) in right]
        sibling.mbrs = [m for _, (_, m) in right]
        right_page = self.pool.new_page()
        self.owned_page_ids.append(right_page.page_id)
        left_mbr = node.mbr()
        right_mbr = sibling.mbr()
        self._flush_node(sibling, right_page)
        self._flush_node(node, page)
        return left_mbr, right_page.page_id, right_mbr

    # ------------------------------------------------------------------
    def _count_pages(self, page_id: int) -> int:
        node, page = self._fetch_node(page_id)
        try:
            if isinstance(node, RLeafNode):
                return 1
            children = list(node.children)
        finally:
            self._release(page)
        return 1 + sum(self._count_pages(c) for c in children)

    def _check_node(self, page_id: int, bound: Optional[Rect] = None) -> int:
        node, page = self._fetch_node(page_id)
        try:
            if isinstance(node, RLeafNode):
                if node.points:
                    mbr = node.mbr(self.dims)
                    if bound is not None and not bound.contains_rect(mbr):
                        raise StorageError("leaf escapes its parent MBR")
                return len(node.points)
            pairs = list(zip(node.children, node.mbrs))
            if bound is not None:
                for _child, mbr in pairs:
                    if not bound.contains_rect(mbr):
                        raise StorageError("child MBR escapes parent MBR")
        finally:
            self._release(page)
        return sum(self._check_node(c, m) for c, m in pairs)


def _quadratic_split(entries):
    """Guttman's quadratic split over (mbr, payload) entries.

    Returns two non-empty entry lists with a min fill of ~40%.
    """
    if len(entries) < 2:
        raise StorageError("cannot split fewer than 2 entries")
    min_fill = max(1, int(0.4 * len(entries)))

    # PickSeeds: the pair wasting the most area if grouped together.
    best_pair = (0, 1)
    best_waste = None
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            union = entries[i][0].union(entries[j][0])
            waste = union.area() - entries[i][0].area() - entries[j][0].area()
            if best_waste is None or waste > best_waste:
                best_waste = waste
                best_pair = (i, j)

    left = [entries[best_pair[0]]]
    right = [entries[best_pair[1]]]
    left_mbr = entries[best_pair[0]][0]
    right_mbr = entries[best_pair[1]][0]
    rest = [
        e for idx, e in enumerate(entries) if idx not in best_pair
    ]

    while rest:
        # Honour the minimum fill before PickNext preference.
        if len(left) + len(rest) == min_fill:
            left.extend(rest)
            break
        if len(right) + len(rest) == min_fill:
            right.extend(rest)
            break
        # PickNext: entry with the greatest preference for one group.
        best_idx = max(
            range(len(rest)),
            key=lambda i: abs(
                left_mbr.enlargement(rest[i][0])
                - right_mbr.enlargement(rest[i][0])
            ),
        )
        entry = rest.pop(best_idx)
        d_left = left_mbr.enlargement(entry[0])
        d_right = right_mbr.enlargement(entry[0])
        if (d_left, left_mbr.area(), len(left)) <= (
            d_right,
            right_mbr.area(),
            len(right),
        ):
            left.append(entry)
            left_mbr = left_mbr.union(entry[0])
        else:
            right.append(entry)
            right_mbr = right_mbr.union(entry[0])
    return left, right
