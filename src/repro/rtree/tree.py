"""R-tree search plus classic dynamic (Guttman) insertion.

The Cubetree engine never inserts one point at a time — it always packs
(:mod:`repro.rtree.packing`) or merge-packs (:mod:`repro.rtree.merge`).
Dynamic insertion with quadratic splits is kept as the ablation baseline
demonstrating *why*: dynamically-built trees have ~50-70% leaf utilization
and random write patterns, packed trees have ~100% and sequential writes.

Pin protocol: ``_fetch_node`` pins and returns ``(node, page)``; callers
``_release`` (read-only) or ``_flush_node`` (write + unpin dirty) once.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidCoordinateError, StorageError
from repro.obs import get_registry
from repro.rtree.geometry import Rect
from repro.rtree.node import (
    RInteriorNode,
    RLeafNode,
    interior_capacity,
    leaf_capacity,
    node_type_of,
)
from repro.storage.buffer import BufferPool
from repro.storage.page import Page

Point = Tuple[int, ...]
Values = Tuple[float, ...]
#: (view_id, padded point, aggregate values) — what searches yield.
Match = Tuple[int, Point, Values]

_REG = get_registry()
_OBS_SEARCHES = _REG.counter("rtree.searches")
_OBS_INSERTS = _REG.counter("rtree.inserts")


class RTree:
    """A d-dimensional R-tree over the paged substrate.

    Parameters
    ----------
    pool:
        Shared buffer pool.
    dims:
        Dimensionality of the indexed space.
    n_aggs:
        Aggregate values carried per point (for dynamically built trees;
        packed leaves carry their own per-view value counts).
    """

    def __init__(self, pool: BufferPool, dims: int, n_aggs: int = 1) -> None:
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.pool = pool
        self.dims = dims
        self.n_aggs = n_aggs
        self.interior_capacity = interior_capacity(dims)
        self.dynamic_leaf_capacity = leaf_capacity(dims, n_aggs)
        self.count = 0
        self.height = 0
        self.root_page_id = -1
        #: Leaf page ids in sort order; maintained by the packer/merger so
        #: merge-pack can stream the old tree sequentially.
        self.leaf_page_ids: List[int] = []
        #: Every page this tree owns (leaves + interiors), maintained by
        #: the packer and by dynamic inserts so the tree can be retired
        #: without re-reading it from disk.
        self.owned_page_ids: List[int] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def search(self, rect: Rect) -> Iterator[Match]:
        """Yield every stored point inside ``rect``."""
        if rect.dims != self.dims:
            raise ValueError(
                f"query rect has {rect.dims} dims, tree has {self.dims}"
            )
        _OBS_SEARCHES.value += 1
        if self.root_page_id == -1:
            return
        yield from self._search(self.root_page_id, rect)

    def scan_leaf_chain(self) -> Iterator[RLeafNode]:
        """Yield leaves in packed (sort) order via the next-leaf chain."""
        if not self.leaf_page_ids:
            return
        page_id = self.leaf_page_ids[0]
        while page_id != -1:
            node, page = self._fetch_node(page_id)
            if not isinstance(node, RLeafNode):
                self._release(page)
                raise StorageError("leaf chain points at a non-leaf page")
            yield node
            next_id = node.next_leaf
            self._release(page)
            page_id = next_id

    def scan_points(self) -> Iterator[Match]:
        """Yield every stored point in leaf-chain order."""
        for leaf in self.scan_leaf_chain():
            for point, values in zip(leaf.points, leaf.values):
                yield leaf.view_id, leaf.padded_point(point, self.dims), values

    # ------------------------------------------------------------------
    # dynamic insertion (ablation baseline)
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[int], values: Sequence[float]) -> None:
        """Guttman-style one-at-a-time insert of a full-dimensional point."""
        pt = tuple(int(c) for c in point)
        if len(pt) != self.dims:
            raise ValueError(f"point has {len(pt)} dims, tree has {self.dims}")
        if any(c < 0 for c in pt):
            raise InvalidCoordinateError(f"negative coordinate in {pt}")
        vals = tuple(float(v) for v in values)
        if len(vals) != self.n_aggs:
            raise ValueError(f"expected {self.n_aggs} aggregate values")
        _OBS_INSERTS.value += 1

        if self.root_page_id == -1:
            leaf = RLeafNode(view_id=-1, arity=self.dims, n_aggs=self.n_aggs)
            leaf.points.append(pt)
            leaf.values.append(vals)
            page = self.pool.new_page()
            self.root_page_id = page.page_id
            self.leaf_page_ids = [page.page_id]
            self.owned_page_ids.append(page.page_id)
            self.height = 1
            self._flush_node(leaf, page)
            self.count = 1
            return

        split = self._insert(self.root_page_id, pt, vals)
        if split is not None:
            (left_mbr, right_id, right_mbr) = split
            new_root = RInteriorNode(self.dims)
            new_root.children = [self.root_page_id, right_id]
            new_root.mbrs = [left_mbr, right_mbr]
            page = self.pool.new_page()
            self.root_page_id = page.page_id
            self.owned_page_ids.append(page.page_id)
            self._flush_node(new_root, page)
            self.height += 1
        self.count += 1

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Pages owned by this tree."""
        if self.root_page_id == -1:
            return 0
        return self._count_pages(self.root_page_id)

    def leaf_utilization(self) -> float:
        """Average leaf fill fraction (1.0 = every leaf at capacity)."""
        total = 0.0
        leaves = 0
        for leaf in self.scan_leaf_chain():
            cap = leaf_capacity(leaf.arity, leaf.n_aggs)
            total += len(leaf) / cap
            leaves += 1
        return total / leaves if leaves else 0.0

    def check_invariants(self) -> None:
        """Verify MBR containment and the stored point count."""
        if self.root_page_id == -1:
            if self.count != 0:
                raise StorageError("empty tree with non-zero count")
            return
        found = self._check_node(self.root_page_id)
        if found != self.count:
            raise StorageError(
                f"point count mismatch: tree={found} counter={self.count}"
            )

    # ------------------------------------------------------------------
    # node I/O
    # ------------------------------------------------------------------
    def _fetch_node(self, page_id: int):
        page = self.pool.fetch_page(page_id)
        if page.cached_obj is None:
            raw = bytes(page.data)
            if node_type_of(raw) == 1:
                page.cached_obj = RLeafNode.from_bytes(raw)
            else:
                page.cached_obj = RInteriorNode.from_bytes(raw)
        return page.cached_obj, page

    def _release(self, page: Page) -> None:
        self.pool.unpin_page(page.page_id)

    def _flush_node(self, node, page: Page) -> None:
        page.data[:] = node.to_bytes()
        page.cached_obj = node
        self.pool.unpin_page(page.page_id, dirty=True)

    # ------------------------------------------------------------------
    # search machinery
    # ------------------------------------------------------------------
    def _search(self, page_id: int, rect: Rect) -> Iterator[Match]:
        node, page = self._fetch_node(page_id)
        try:
            if isinstance(node, RLeafNode):
                for point, values in zip(node.points, node.values):
                    padded = node.padded_point(point, self.dims)
                    if rect.contains_point(padded):
                        yield node.view_id, padded, values
            else:
                children = [
                    child
                    for child, mbr in zip(node.children, node.mbrs)
                    if rect.intersects(mbr)
                ]
        finally:
            self._release(page)
        if isinstance(node, RInteriorNode):
            for child in children:
                yield from self._search(child, rect)

    # ------------------------------------------------------------------
    # dynamic-insert machinery (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def _insert(
        self, page_id: int, point: Point, values: Values
    ) -> Optional[Tuple[Rect, int, Rect]]:
        """Insert below ``page_id``.

        Returns None when no split happened, else
        ``(this node's new MBR, new sibling page id, sibling MBR)``.
        The caller is responsible for updating its own entry for
        ``page_id`` — searching works off interior MBRs, so we recompute
        them on the way back up.
        """
        node, page = self._fetch_node(page_id)
        if isinstance(node, RLeafNode):
            node.points.append(point)
            node.values.append(values)
            if len(node.points) <= self.dynamic_leaf_capacity:
                self._flush_node(node, page)
                return None
            return self._split_leaf(node, page)

        # ChooseSubtree: least enlargement, ties by smallest area.
        point_rect = Rect.from_point(point)
        best_idx = min(
            range(len(node.children)),
            key=lambda i: (
                node.mbrs[i].enlargement(point_rect),
                node.mbrs[i].area(),
            ),
        )
        child_id = node.children[best_idx]
        self._release(page)
        split = self._insert(child_id, point, values)

        node, page = self._fetch_node(page_id)
        if split is None:
            node.mbrs[best_idx] = node.mbrs[best_idx].union(point_rect)
            self._flush_node(node, page)
            return None
        child_mbr, right_id, right_mbr = split
        node.mbrs[best_idx] = child_mbr
        node.children.insert(best_idx + 1, right_id)
        node.mbrs.insert(best_idx + 1, right_mbr)
        if len(node.children) <= self.interior_capacity:
            self._flush_node(node, page)
            return None
        return self._split_interior(node, page)

    def _split_leaf(
        self, node: RLeafNode, page: Page
    ) -> Tuple[Rect, int, Rect]:
        entries = [
            (Rect.from_point(p), (p, v))
            for p, v in zip(node.points, node.values)
        ]
        left, right = _quadratic_split(entries)
        node.points = [p for _, (p, _) in left]
        node.values = [v for _, (_, v) in left]
        sibling = RLeafNode(node.view_id, node.arity, node.n_aggs)
        sibling.points = [p for _, (p, _) in right]
        sibling.values = [v for _, (_, v) in right]
        sibling.next_leaf = node.next_leaf
        right_page = self.pool.new_page()
        node.next_leaf = right_page.page_id
        self.owned_page_ids.append(right_page.page_id)
        try:
            idx = self.leaf_page_ids.index(page.page_id)
            self.leaf_page_ids.insert(idx + 1, right_page.page_id)
        except ValueError:
            self.leaf_page_ids.append(right_page.page_id)
        left_mbr = Rect.cover_points(node.points)
        right_mbr = Rect.cover_points(sibling.points)
        self._flush_node(sibling, right_page)
        self._flush_node(node, page)
        return left_mbr, right_page.page_id, right_mbr

    def _split_interior(
        self, node: RInteriorNode, page: Page
    ) -> Tuple[Rect, int, Rect]:
        entries = [
            (mbr, (child, mbr))
            for child, mbr in zip(node.children, node.mbrs)
        ]
        left, right = _quadratic_split(entries)
        node.children = [c for _, (c, _) in left]
        node.mbrs = [m for _, (_, m) in left]
        sibling = RInteriorNode(self.dims)
        sibling.children = [c for _, (c, _) in right]
        sibling.mbrs = [m for _, (_, m) in right]
        right_page = self.pool.new_page()
        self.owned_page_ids.append(right_page.page_id)
        left_mbr = node.mbr()
        right_mbr = sibling.mbr()
        self._flush_node(sibling, right_page)
        self._flush_node(node, page)
        return left_mbr, right_page.page_id, right_mbr

    # ------------------------------------------------------------------
    def _count_pages(self, page_id: int) -> int:
        node, page = self._fetch_node(page_id)
        try:
            if isinstance(node, RLeafNode):
                return 1
            children = list(node.children)
        finally:
            self._release(page)
        return 1 + sum(self._count_pages(c) for c in children)

    def _check_node(self, page_id: int, bound: Optional[Rect] = None) -> int:
        node, page = self._fetch_node(page_id)
        try:
            if isinstance(node, RLeafNode):
                if node.points:
                    mbr = node.mbr(self.dims)
                    if bound is not None and not bound.contains_rect(mbr):
                        raise StorageError("leaf escapes its parent MBR")
                return len(node.points)
            pairs = list(zip(node.children, node.mbrs))
            if bound is not None:
                for _child, mbr in pairs:
                    if not bound.contains_rect(mbr):
                        raise StorageError("child MBR escapes parent MBR")
        finally:
            self._release(page)
        return sum(self._check_node(c, m) for c, m in pairs)


def _quadratic_split(entries):
    """Guttman's quadratic split over (mbr, payload) entries.

    Returns two non-empty entry lists with a min fill of ~40%.
    """
    if len(entries) < 2:
        raise StorageError("cannot split fewer than 2 entries")
    min_fill = max(1, int(0.4 * len(entries)))

    # PickSeeds: the pair wasting the most area if grouped together.
    best_pair = (0, 1)
    best_waste = None
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            union = entries[i][0].union(entries[j][0])
            waste = union.area() - entries[i][0].area() - entries[j][0].area()
            if best_waste is None or waste > best_waste:
                best_waste = waste
                best_pair = (i, j)

    left = [entries[best_pair[0]]]
    right = [entries[best_pair[1]]]
    left_mbr = entries[best_pair[0]][0]
    right_mbr = entries[best_pair[1]][0]
    rest = [
        e for idx, e in enumerate(entries) if idx not in best_pair
    ]

    while rest:
        # Honour the minimum fill before PickNext preference.
        if len(left) + len(rest) == min_fill:
            left.extend(rest)
            break
        if len(right) + len(rest) == min_fill:
            right.extend(rest)
            break
        # PickNext: entry with the greatest preference for one group.
        best_idx = max(
            range(len(rest)),
            key=lambda i: abs(
                left_mbr.enlargement(rest[i][0])
                - right_mbr.enlargement(rest[i][0])
            ),
        )
        entry = rest.pop(best_idx)
        d_left = left_mbr.enlargement(entry[0])
        d_right = right_mbr.enlargement(entry[0])
        if (d_left, left_mbr.area(), len(left)) <= (
            d_right,
            right_mbr.area(),
            len(right),
        ):
            left.append(entry)
            left_mbr = left_mbr.union(entry[0])
        else:
            right.append(entry)
            right_mbr = right_mbr.union(entry[0])
    return left, right
