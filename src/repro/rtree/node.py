"""On-page layout of R-tree nodes, including compressed Cubetree leaves.

Leaf page layout (little-endian)::

    offset 0   uint8    node type (1 = leaf)
    offset 1   uint16   entry count
    offset 3   int32    view id (-1 when the leaf holds raw d-dim points)
    offset 7   uint8    stored arity k (coords actually written per entry)
    offset 8   uint8    number of aggregate values per entry
    offset 9   int64    next-leaf page id (-1 for none)
    offset 17  entries  each: k * int64 coords + n_aggs * float64 values

This is the paper's leaf *compression*: a leaf belongs to exactly one view,
so only that view's ``k`` meaningful coordinates are stored; the padding
zeros of the valid mapping are implicit (Sec. 2.4).  The arity-0 super
aggregate stores no coordinates at all — just its aggregate vector at the
origin.

Interior page layout::

    offset 0  uint8    node type (2 = interior)
    offset 1  uint16   entry count
    offset 3  uint8    dimensionality d
    offset 4  entries  each: int64 child page id + d int64 lows + d int64 highs
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.rtree.geometry import Rect
from repro.storage.codec import entry_codec

LEAF_TYPE = 1
INTERIOR_TYPE = 2

_LEAF_HEADER = struct.Struct("<BHiBBq")
_INTERIOR_HEADER = struct.Struct("<BHB")

Point = Tuple[int, ...]
Values = Tuple[float, ...]


def leaf_capacity(arity: int, n_aggs: int) -> int:
    """Max entries for a leaf storing ``arity`` coords + ``n_aggs`` values."""
    entry = arity * 8 + n_aggs * 8
    if entry == 0:
        return 1  # the arity-0 super aggregate with no values is degenerate
    return (PAGE_SIZE - _LEAF_HEADER.size) // entry


def interior_capacity(dims: int) -> int:
    """Max entries an interior node of the given dimensionality holds."""
    entry = 8 + 2 * dims * 8
    return (PAGE_SIZE - _INTERIOR_HEADER.size) // entry


class RLeafNode:
    """A deserialized leaf: points of one view plus aggregate vectors."""

    __slots__ = ("view_id", "arity", "n_aggs", "points", "values", "next_leaf")

    def __init__(self, view_id: int, arity: int, n_aggs: int) -> None:
        self.view_id = view_id
        self.arity = arity
        self.n_aggs = n_aggs
        self.points: List[Point] = []
        self.values: List[Values] = []
        self.next_leaf = -1

    def __len__(self) -> int:
        return len(self.points)

    def mbr(self, dims: int) -> Rect:
        """Full-dimensional MBR of this leaf's (padded) points."""
        padded = [self.padded_point(p, dims) for p in self.points]
        return Rect.cover_points(padded)

    def padded_point(self, point: Point, dims: int) -> Point:
        """Re-apply the valid mapping's zero padding up to ``dims``."""
        return tuple(point) + (0,) * (dims - len(point))

    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer."""
        codec = entry_codec(f"{self.arity}q{self.n_aggs}d")
        count = len(self.points)
        out = bytearray(PAGE_SIZE)
        _LEAF_HEADER.pack_into(
            out, 0, LEAF_TYPE, count, self.view_id,
            self.arity, self.n_aggs, self.next_leaf,
        )
        if _LEAF_HEADER.size + count * codec.item_size > PAGE_SIZE:
            raise StorageError("R-tree leaf overflow")
        flat: List[object] = []
        for point, values in zip(self.points, self.values):
            flat.extend(point)
            flat.extend(values)
        codec.pack_into(out, _LEAF_HEADER.size, flat, count)
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RLeafNode":
        """Deserialize from a page buffer."""
        node_type, count, view_id, arity, n_aggs, next_leaf = (
            _LEAF_HEADER.unpack_from(raw, 0)
        )
        if node_type != LEAF_TYPE:
            raise StorageError(f"expected R-tree leaf, found type {node_type}")
        node = cls(view_id, arity, n_aggs)
        node.next_leaf = next_leaf
        codec = entry_codec(f"{arity}q{n_aggs}d")
        points = node.points
        values = node.values
        for fields in codec.iter_unpack_from(raw, _LEAF_HEADER.size, count):
            points.append(fields[:arity])
            values.append(fields[arity:])
        return node


class RInteriorNode:
    """A deserialized interior node: child page ids and their MBRs."""

    __slots__ = ("dims", "children", "mbrs")

    def __init__(self, dims: int) -> None:
        self.dims = dims
        self.children: List[int] = []
        self.mbrs: List[Rect] = []

    def __len__(self) -> int:
        return len(self.children)

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of this node's entries."""
        return Rect.cover(self.mbrs)

    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer."""
        out = bytearray(PAGE_SIZE)
        _INTERIOR_HEADER.pack_into(
            out, 0, INTERIOR_TYPE, len(self.children), self.dims
        )
        codec = entry_codec(f"q{2 * self.dims}q")
        count = len(self.children)
        if _INTERIOR_HEADER.size + count * codec.item_size > PAGE_SIZE:
            raise StorageError("R-tree interior overflow")
        flat: List[object] = []
        for child, mbr in zip(self.children, self.mbrs):
            flat.append(child)
            flat.extend(mbr.lows)
            flat.extend(mbr.highs)
        codec.pack_into(out, _INTERIOR_HEADER.size, flat, count)
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RInteriorNode":
        """Deserialize from a page buffer."""
        node_type, count, dims = _INTERIOR_HEADER.unpack_from(raw, 0)
        if node_type != INTERIOR_TYPE:
            raise StorageError(
                f"expected R-tree interior, found type {node_type}"
            )
        node = cls(dims)
        codec = entry_codec(f"q{2 * dims}q")
        children = node.children
        mbrs = node.mbrs
        for fields in codec.iter_unpack_from(raw, _INTERIOR_HEADER.size, count):
            children.append(fields[0])
            mbrs.append(Rect(fields[1 : 1 + dims], fields[1 + dims :]))
        return node


def node_type_of(raw: bytes) -> int:
    """Peek the node-type byte of a serialized R-tree page."""
    return raw[0]
