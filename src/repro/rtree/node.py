"""On-page layout of R-tree nodes, including compressed Cubetree leaves.

Leaf page layout (little-endian)::

    offset 0   uint8    node type (1 = leaf)
    offset 1   uint16   entry count
    offset 3   int32    view id (-1 when the leaf holds raw d-dim points)
    offset 7   uint8    stored arity k (coords actually written per entry)
    offset 8   uint8    number of aggregate values per entry
    offset 9   int64    next-leaf page id (-1 for none)
    offset 17  entries  each: k * int64 coords + n_aggs * float64 values

This is the paper's leaf *compression*: a leaf belongs to exactly one view,
so only that view's ``k`` meaningful coordinates are stored; the padding
zeros of the valid mapping are implicit (Sec. 2.4).  The arity-0 super
aggregate stores no coordinates at all — just its aggregate vector at the
origin.

Columnar leaf page layout (type 3, format v3) shares the 17-byte header
(with type byte 3) and stores the same entries column-major::

    offset 0   uint8          node type (3 = columnar leaf)
    offset 1   uint16         entry count
    offset 3   int32          view id
    offset 7   uint8          stored arity k
    offset 8   uint8          number of aggregate values per entry
    offset 9   int64          next-leaf page id (-1 for none)
    offset 17  uint16 * k     byte length of each coordinate column
    ...        k columns      zigzag-varint delta streams (sorted runs)
    ...        n_aggs columns each: count * float64, packed

Packed runs are sorted, so coordinate deltas are tiny and most varints
take one byte — the source of the beyond-2:1 storage ratio.  Which
format the packer writes is selected by :func:`set_leaf_format` /
``REPRO_LEAF_FORMAT=columnar``; row-major (type 1) remains the default
and both decode transparently.

Interior page layout::

    offset 0  uint8    node type (2 = interior)
    offset 1  uint16   entry count
    offset 3  uint8    dimensionality d
    offset 4  entries  each: int64 child page id + d int64 lows + d int64 highs
"""

from __future__ import annotations

import os
import struct
from array import array
from typing import List, Optional, Sequence, Tuple

from repro.constants import PAGE_SIZE
from repro.errors import InvalidRecordError, StorageError
from repro.rtree.geometry import Rect
from repro.storage.codec import (
    decode_delta_column,
    encode_delta_column,
    entry_codec,
    varint_size,
    zigzag_encode,
)

LEAF_TYPE = 1
INTERIOR_TYPE = 2
LEAF_COLUMNAR_TYPE = 3

#: Node-type bytes that deserialize as :class:`RLeafNode`.
LEAF_TYPES = (LEAF_TYPE, LEAF_COLUMNAR_TYPE)

_LEAF_HEADER = struct.Struct("<BHiBBq")
_INTERIOR_HEADER = struct.Struct("<BHB")

# The count field is a uint16; columnar leaves can otherwise hold
# thousands of one-byte entries, so guard the header bound explicitly.
MAX_LEAF_ENTRIES = 0xFFFF

Point = Tuple[int, ...]
Values = Tuple[float, ...]

_LEAF_FORMAT: Optional[str] = None  # repro: worker-local


def set_leaf_format(fmt: Optional[str]) -> None:
    """Override the packer's leaf format: ``"row"``, ``"columnar"``, or
    ``None`` to fall back to the ``REPRO_LEAF_FORMAT`` environment gate."""
    global _LEAF_FORMAT
    if fmt not in (None, "row", "columnar"):
        raise ValueError(f"unknown leaf format {fmt!r}")
    _LEAF_FORMAT = fmt


def leaf_format() -> str:
    """The leaf format newly packed trees use (``"row"`` unless gated)."""
    if _LEAF_FORMAT is not None:
        return _LEAF_FORMAT
    env = os.environ.get("REPRO_LEAF_FORMAT", "").strip().lower()
    return "columnar" if env == "columnar" else "row"


def columnar_enabled() -> bool:
    """True when the packer should emit type-3 columnar leaves."""
    return leaf_format() == "columnar"


def leaf_capacity(arity: int, n_aggs: int) -> int:
    """Max entries for a leaf storing ``arity`` coords + ``n_aggs`` values."""
    entry = arity * 8 + n_aggs * 8
    if entry == 0:
        return 1  # the arity-0 super aggregate with no values is degenerate
    return (PAGE_SIZE - _LEAF_HEADER.size) // entry


def columnar_header_size(arity: int) -> int:
    """Fixed bytes of a columnar leaf: header + per-column length table."""
    return _LEAF_HEADER.size + 2 * arity


def columnar_entry_cost(
    prev_point: Optional[Point], point: Point, n_aggs: int
) -> int:
    """Encoded bytes one entry adds to a columnar leaf.

    ``prev_point`` is the preceding entry in the same leaf (``None`` for
    the first entry, whose coordinates are delta-coded against 0).
    """
    cost = 8 * n_aggs
    if prev_point is None:
        for coord in point:
            cost += varint_size(zigzag_encode(coord))
    else:
        for coord, prev in zip(point, prev_point):
            cost += varint_size(zigzag_encode(coord - prev))
    return cost


def columnar_leaf_size(
    points: Sequence[Point], arity: int, n_aggs: int
) -> int:
    """Total encoded byte size of a columnar leaf holding ``points``."""
    size = columnar_header_size(arity)
    prev: Optional[Point] = None
    for point in points:
        size += columnar_entry_cost(prev, point, n_aggs)
        prev = point
    return size


def interior_capacity(dims: int) -> int:
    """Max entries an interior node of the given dimensionality holds."""
    entry = 8 + 2 * dims * 8
    return (PAGE_SIZE - _INTERIOR_HEADER.size) // entry


class RLeafNode:
    """A deserialized leaf: points of one view plus aggregate vectors.

    ``columnar`` selects the on-page encoding (type 1 row-major vs type 3
    delta-varint columns); the in-memory representation is identical, so
    every traversal works on both formats unchanged.

    ``coord_cols``/``measure_cols`` stash the decoded column buffers
    (``array('q')`` per coordinate, ``array('d')`` per measure) for the
    vectorized kernels (:mod:`repro.rtree.kernels`).  They describe the
    same entries as ``points``/``values``; any code that mutates those
    lists in place must null the stash (see ``RTree._insert``).
    """

    __slots__ = (
        "view_id", "arity", "n_aggs", "points", "values", "next_leaf",
        "columnar", "coord_cols", "measure_cols",
    )

    def __init__(
        self, view_id: int, arity: int, n_aggs: int, columnar: bool = False
    ) -> None:
        self.view_id = view_id
        self.arity = arity
        self.n_aggs = n_aggs
        self.points: List[Point] = []
        self.values: List[Values] = []
        self.next_leaf = -1
        self.columnar = columnar
        self.coord_cols: Optional[Tuple[array, ...]] = None
        self.measure_cols: Optional[Tuple[array, ...]] = None

    def __len__(self) -> int:
        return len(self.points)

    def mbr(self, dims: int) -> Rect:
        """Full-dimensional MBR of this leaf's (padded) points."""
        padded = [self.padded_point(p, dims) for p in self.points]
        return Rect.cover_points(padded)

    def padded_point(self, point: Point, dims: int) -> Point:
        """Re-apply the valid mapping's zero padding up to ``dims``."""
        return tuple(point) + (0,) * (dims - len(point))

    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer (row or columnar layout)."""
        if self.columnar:
            return self._to_bytes_columnar()
        codec = entry_codec(f"{self.arity}q{self.n_aggs}d")
        count = len(self.points)
        out = bytearray(PAGE_SIZE)
        _LEAF_HEADER.pack_into(
            out, 0, LEAF_TYPE, count, self.view_id,
            self.arity, self.n_aggs, self.next_leaf,
        )
        if _LEAF_HEADER.size + count * codec.item_size > PAGE_SIZE:
            raise StorageError("R-tree leaf overflow")
        flat: List[object] = []
        for point, values in zip(self.points, self.values):
            flat.extend(point)
            flat.extend(values)
        codec.pack_into(out, _LEAF_HEADER.size, flat, count)
        return bytes(out)

    def _to_bytes_columnar(self) -> bytes:
        count = len(self.points)
        if count > MAX_LEAF_ENTRIES:
            raise StorageError("R-tree columnar leaf entry count overflow")
        columns = [
            encode_delta_column([point[c] for point in self.points])
            for c in range(self.arity)
        ]
        total = (
            columnar_header_size(self.arity)
            + sum(len(col) for col in columns)
            + count * 8 * self.n_aggs
        )
        if total > PAGE_SIZE:
            raise StorageError("R-tree columnar leaf overflow")
        out = bytearray(PAGE_SIZE)
        _LEAF_HEADER.pack_into(
            out, 0, LEAF_COLUMNAR_TYPE, count, self.view_id,
            self.arity, self.n_aggs, self.next_leaf,
        )
        struct.pack_into(
            f"<{self.arity}H", out, _LEAF_HEADER.size,
            *[len(col) for col in columns],
        )
        offset = columnar_header_size(self.arity)
        for col in columns:
            out[offset : offset + len(col)] = col
            offset += len(col)
        if self.n_aggs:
            measure = struct.Struct(f"<{count}d")
            for m in range(self.n_aggs):
                # One batched pack per measure *column*, not per record.
                measure.pack_into(  # lint: ignore[struct-in-loop]
                    out, offset, *[vals[m] for vals in self.values]
                )
                offset += measure.size
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RLeafNode":
        """Deserialize from a page buffer (either leaf layout)."""
        node_type, count, view_id, arity, n_aggs, next_leaf = (
            _LEAF_HEADER.unpack_from(raw, 0)
        )
        if node_type == LEAF_COLUMNAR_TYPE:
            return cls._from_bytes_columnar(
                raw, count, view_id, arity, n_aggs, next_leaf
            )
        if node_type != LEAF_TYPE:
            raise StorageError(f"expected R-tree leaf, found type {node_type}")
        node = cls(view_id, arity, n_aggs)
        node.next_leaf = next_leaf
        codec = entry_codec(f"{arity}q{n_aggs}d")
        points = node.points
        values = node.values
        for fields in codec.iter_unpack_from(raw, _LEAF_HEADER.size, count):
            points.append(fields[:arity])
            values.append(fields[arity:])
        return node

    @classmethod
    def _from_bytes_columnar(
        cls,
        raw: bytes,
        count: int,
        view_id: int,
        arity: int,
        n_aggs: int,
        next_leaf: int,
    ) -> "RLeafNode":
        header = columnar_header_size(arity)
        if header > len(raw):
            raise InvalidRecordError(
                f"columnar leaf column table overruns the page "
                f"(arity {arity})"
            )
        lengths = struct.unpack_from(f"<{arity}H", raw, _LEAF_HEADER.size)
        measures_size = count * 8 * n_aggs
        if header + sum(lengths) + measures_size > len(raw):
            raise InvalidRecordError(
                f"columnar leaf columns overrun the page "
                f"(count {count}, column bytes {sum(lengths)})"
            )
        node = cls(view_id, arity, n_aggs, columnar=True)
        node.next_leaf = next_leaf
        offset = header
        coord_cols = []
        for length in lengths:
            coord_cols.append(decode_delta_column(raw, offset, length, count))
            offset += length
        if arity:
            node.points = list(zip(*coord_cols))
        else:
            node.points = [()] * count
        if n_aggs:
            measure = struct.Struct(f"<{count}d")
            measure_cols = []
            for _ in range(n_aggs):
                # One batched unpack per measure *column*, not per record.
                measure_cols.append(
                    measure.unpack_from(raw, offset)  # lint: ignore[struct-in-loop]
                )
                offset += measure.size
            node.values = list(zip(*measure_cols))
        else:
            node.values = [()] * count
        # Stash the already-decoded columns as buffers for the
        # vectorized kernels — the columns exist right here anyway.
        node.coord_cols = tuple(array("q", col) for col in coord_cols)
        node.measure_cols = tuple(
            array("d", col) for col in measure_cols
        ) if n_aggs else ()
        return node


class RInteriorNode:
    """A deserialized interior node: child page ids and their MBRs."""

    __slots__ = ("dims", "children", "mbrs")

    def __init__(self, dims: int) -> None:
        self.dims = dims
        self.children: List[int] = []
        self.mbrs: List[Rect] = []

    def __len__(self) -> int:
        return len(self.children)

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of this node's entries."""
        return Rect.cover(self.mbrs)

    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer."""
        out = bytearray(PAGE_SIZE)
        _INTERIOR_HEADER.pack_into(
            out, 0, INTERIOR_TYPE, len(self.children), self.dims
        )
        codec = entry_codec(f"q{2 * self.dims}q")
        count = len(self.children)
        if _INTERIOR_HEADER.size + count * codec.item_size > PAGE_SIZE:
            raise StorageError("R-tree interior overflow")
        flat: List[object] = []
        for child, mbr in zip(self.children, self.mbrs):
            flat.append(child)
            flat.extend(mbr.lows)
            flat.extend(mbr.highs)
        codec.pack_into(out, _INTERIOR_HEADER.size, flat, count)
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RInteriorNode":
        """Deserialize from a page buffer."""
        node_type, count, dims = _INTERIOR_HEADER.unpack_from(raw, 0)
        if node_type != INTERIOR_TYPE:
            raise StorageError(
                f"expected R-tree interior, found type {node_type}"
            )
        node = cls(dims)
        codec = entry_codec(f"q{2 * dims}q")
        children = node.children
        mbrs = node.mbrs
        for fields in codec.iter_unpack_from(raw, _INTERIOR_HEADER.size, count):
            children.append(fields[0])
            mbrs.append(Rect(fields[1 : 1 + dims], fields[1 + dims :]))
        return node


def node_type_of(raw: bytes) -> int:
    """Peek the node-type byte of a serialized R-tree page."""
    return raw[0]
