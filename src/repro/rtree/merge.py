"""Merge-pack: bulk-incremental update of a packed R-tree.

The paper's Fig. 15 architecture: the warehouse increment is sorted with the
*same* order used to compute the views, then merged with the old Cubetree in
one linear pass.  Points present on both sides combine their aggregate
vectors; the output stream feeds straight into the packer, so the new tree
is written with sequential I/O and the old tree is read with sequential I/O
(its leaf chain is in sort order by construction).

This is the source of the paper's ~100:1 refresh advantage over per-tuple
maintenance of relational summary tables.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

from repro.errors import MappingError
from repro.obs import get_registry, trace
from repro.rtree.packing import PackedRun, free_tree, pack_rtree, sort_key
from repro.rtree.tree import EMPTY_EXTENT, RTree
from repro.storage.buffer import BufferPool

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_MERGES = _REG.counter("rtree.merge_pack.count")
_OBS_MERGED_ENTRIES = _REG.counter("rtree.merge_pack.entries")

Point = Tuple[int, ...]
Values = Tuple[float, ...]
#: (view_id, arity, n_aggs, point, values) — the merge stream element.
StreamEntry = Tuple[int, int, int, Point, Values]

#: Combines the aggregate vectors of an existing point and a delta point of
#: the same view: ``combine(view_id, old_values, delta_values) -> values``.
Combiner = Callable[[int, Values, Values], Values]


def add_combiner(_view_id: int, old: Values, delta: Values) -> Values:
    """Element-wise addition — correct for sum and count aggregates."""
    return tuple(a + b for a, b in zip(old, delta))


def tree_stream(tree: RTree) -> Iterator[StreamEntry]:
    """Stream a packed tree's points in global sort order (sequential read)."""
    for leaf in tree.scan_leaf_chain():
        for point, values in zip(leaf.points, leaf.values):
            yield leaf.view_id, leaf.arity, leaf.n_aggs, point, values


def runs_stream(runs: Sequence[PackedRun]) -> Iterator[StreamEntry]:
    """Stream delta runs (already sorted, ordered by ascending arity)."""
    for run in runs:
        for point, values in run.entries:
            yield run.view_id, run.arity, run.n_aggs, point, values


def merge_streams(
    dims: int,
    old: Iterator[StreamEntry],
    delta: Iterator[StreamEntry],
    combine: Combiner = add_combiner,
) -> Iterator[StreamEntry]:
    """Two-way merge of sorted point streams, combining equal points.

    Equal sort keys imply the same view: within one Cubetree there is at
    most one view per arity, and the sort key encodes the zero padding and
    hence the arity.  A view-id mismatch on equal keys means the delta was
    built for a different tree and raises :class:`MappingError`.
    """
    old_entry = next(old, None)
    delta_entry = next(delta, None)
    while old_entry is not None and delta_entry is not None:
        old_key = sort_key(old_entry[3], dims)
        delta_key = sort_key(delta_entry[3], dims)
        if old_key < delta_key:
            yield old_entry
            old_entry = next(old, None)
        elif delta_key < old_key:
            yield delta_entry
            delta_entry = next(delta, None)
        else:
            view_id, arity, n_aggs, point, old_values = old_entry
            if delta_entry[0] != view_id:
                raise MappingError(
                    f"delta view {delta_entry[0]} collides with stored view "
                    f"{view_id} at point {point}"
                )
            merged = combine(view_id, old_values, delta_entry[4])
            yield view_id, arity, n_aggs, point, merged
            old_entry = next(old, None)
            delta_entry = next(delta, None)
    while old_entry is not None:
        yield old_entry
        old_entry = next(old, None)
    while delta_entry is not None:
        yield delta_entry
        delta_entry = next(delta, None)


def merge_pack(
    pool: BufferPool,
    dims: int,
    old_tree: RTree,
    delta_runs: Sequence[PackedRun],
    combine: Combiner = add_combiner,
    retire_old: bool = True,
) -> RTree:
    """Merge a sorted delta into a packed tree, producing a new packed tree.

    Parameters
    ----------
    pool / dims:
        Substrate and dimensionality (must match the old tree).
    old_tree:
        The currently-live packed tree.
    delta_runs:
        Per-view sorted deltas, ordered by ascending arity.
    combine:
        Aggregate combiner for points present on both sides.
    retire_old:
        When true (default), the old tree's pages are freed after the new
        tree is built — the paper's create-new-then-swap discipline.
    """
    with trace("rtree.merge_pack", deltas=len(delta_runs)):
        return _merge_pack(
            pool, dims, old_tree, delta_runs, combine, retire_old
        )


def _merge_pack(
    pool: BufferPool,
    dims: int,
    old_tree: RTree,
    delta_runs: Sequence[PackedRun],
    combine: Combiner,
    retire_old: bool,
) -> RTree:
    _OBS_MERGES.value += 1
    for run in delta_runs:
        run.validate(dims)
    merged = merge_streams(
        dims, tree_stream(old_tree), runs_stream(delta_runs), combine
    )

    # Group the merged stream back into per-view runs for the packer.
    runs: List[PackedRun] = []
    current: List[Tuple[Point, Values]] = []
    current_meta: Tuple[int, int, int] | None = None
    for view_id, arity, n_aggs, point, values in merged:
        meta = (view_id, arity, n_aggs)
        if meta != current_meta:
            if current_meta is not None:
                runs.append(PackedRun(*current_meta, current))
            current_meta = meta
            current = []
        current.append((point, values))
    if current_meta is not None:
        runs.append(PackedRun(*current_meta, current))

    new_tree = pack_rtree(pool, dims, runs, validate=False)
    # A view that is still empty after the merge produces no stream
    # entries and hence no run above; carry its explicit empty extent
    # forward so the zero-row view keeps an (empty) run on the new tree.
    for view_id in old_tree.view_extents:
        new_tree.view_extents.setdefault(view_id, EMPTY_EXTENT)
    for run in delta_runs:
        new_tree.view_extents.setdefault(run.view_id, EMPTY_EXTENT)
    _OBS_MERGED_ENTRIES.value += new_tree.count
    # Debug post-condition: merge-pack must hand back a freshly packed
    # tree (full leaves, contiguous sorted view runs).  Checked before
    # the old tree is retired so a violation loses no data.  The import
    # is local because repro.analysis.fsck itself depends on this
    # package.
    from repro.analysis.fsck import debug_checks_enabled, verify_tree

    if debug_checks_enabled():
        verify_tree(new_tree, context="merge_pack post-condition")
    if retire_old:
        free_tree(pool, old_tree)
    return new_tree
