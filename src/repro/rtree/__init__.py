"""R-tree substrate for Cubetrees.

Cubetrees are *packed* R-trees (Roussopoulos & Leifker 1985): bulk-loaded
from sorted data with leaves filled to capacity and written sequentially.
This package provides:

* :mod:`repro.rtree.geometry` — integer hyper-rectangles;
* :mod:`repro.rtree.node` — page layouts, including *compressed* leaves
  that store only the meaningful coordinates of the view they belong to;
* :mod:`repro.rtree.tree` — range search plus classic dynamic (Guttman)
  inserts, kept as the ablation baseline that shows why packing matters;
* :mod:`repro.rtree.packing` — the sort-order bulk loader;
* :mod:`repro.rtree.merge` — the merge-pack bulk-incremental update.
"""

from repro.rtree.geometry import Rect
from repro.rtree.merge import merge_pack
from repro.rtree.packing import PackedRun, pack_rtree
from repro.rtree.tree import RTree

__all__ = ["Rect", "RTree", "PackedRun", "merge_pack", "pack_rtree"]
