"""Vectorized query kernels over columnar (type 3) leaves.

The v3 leaf format already decodes each page column-at-a-time
(:meth:`RLeafNode._from_bytes_columnar`); these kernels keep those
decoded columns — coordinates as ``array('q')``, measures as
``array('d')`` — and evaluate slice rectangles against whole columns
instead of building one reversed-key tuple and one ``contains_point``
call per entry:

* the *leading* run-key column (coordinate ``arity - 1``; packed runs
  are sorted by reversed coordinates, so that column is non-decreasing
  within a leaf) is narrowed by binary search,
* every other bound coordinate is filtered with one comparison pass
  over the narrowed range,
* unconstrained dimensions are skipped entirely — a packed run's
  coordinates are strictly positive (``PackedRun.validate``), so a
  ``[1, INT64_MAX]`` bound (what ``slice_spec`` emits for an unbound
  attribute) can never reject a point.

The selection comes back as an index ``range`` whenever it is
contiguous (the common case for prefix-bounded slices), which lets the
aggregate pushdown (:class:`FoldAccumulator`) consume measure columns
as slices while preserving the exact serial float fold order of the
row-at-a-time path.

Scalar row-leaf traversal stays in :mod:`repro.rtree.tree`; per-leaf
dispatch picks the kernel only for columnar leaves and only while
:func:`vector_kernels_enabled` (``REPRO_VECTOR_KERNELS``, default on).
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple, Union

from repro.rtree.geometry import Rect

#: Largest signed 64-bit coordinate — ``slice_spec``'s unbound high.
INT64_MAX = (1 << 63) - 1
#: Smallest coordinate a packed run may contain (validated at pack time).
MIN_COORD = 1

_VECTOR_KERNELS: Optional[bool] = None  # repro: worker-local

#: A leaf-entry selection: contiguous range or explicit index list.
Selection = Union[range, List[int]]


def set_vector_kernels(enabled: Optional[bool]) -> None:
    """Override kernel dispatch: ``True``/``False``, or ``None`` to fall
    back to the ``REPRO_VECTOR_KERNELS`` environment gate."""
    global _VECTOR_KERNELS
    if enabled not in (None, True, False):
        raise ValueError(f"unknown vector-kernels setting {enabled!r}")
    _VECTOR_KERNELS = enabled


def vector_kernels_enabled() -> bool:
    """True when columnar leaves should be queried through the kernels
    (default; set ``REPRO_VECTOR_KERNELS=0`` to force the scalar path)."""
    if _VECTOR_KERNELS is not None:
        return _VECTOR_KERNELS
    env = os.environ.get("REPRO_VECTOR_KERNELS", "").strip().lower()
    return env not in ("0", "false", "no", "off")


class LeafColumns:
    """Decoded column view of one leaf: coordinate and measure buffers."""

    __slots__ = ("count", "arity", "coords", "measures")

    def __init__(
        self,
        count: int,
        arity: int,
        coords: Tuple[array, ...],
        measures: Tuple[array, ...],
    ) -> None:
        self.count = count
        self.arity = arity
        self.coords = coords
        self.measures = measures


def leaf_columns(leaf) -> LeafColumns:
    """Column buffers for a leaf, built lazily and stashed on the node.

    Leaves decoded from columnar pages already carry their columns
    (:meth:`RLeafNode._from_bytes_columnar` stashes them at decode
    time); packer-built in-memory leaves materialize them on first use.
    """
    coords = leaf.coord_cols
    if coords is None:
        coords = tuple(
            array("q", [point[c] for point in leaf.points])
            for c in range(leaf.arity)
        )
        measures = tuple(
            array("d", [values[m] for values in leaf.values])
            for m in range(leaf.n_aggs)
        )
        leaf.coord_cols = coords
        leaf.measure_cols = measures
    return LeafColumns(
        len(leaf.points), leaf.arity, coords, leaf.measure_cols
    )


def select_rows(
    cols: LeafColumns, rect: Rect, dims: int
) -> Optional[Selection]:
    """Indices of the leaf entries whose padded points lie in ``rect``.

    Returns a ``range`` when the selection is contiguous, an index list
    otherwise, or ``None`` when no entry qualifies.  Equivalent — on a
    sorted packed leaf with strictly positive coordinates — to testing
    ``rect.contains_point`` on every padded point in order.
    """
    lows = rect.lows
    highs = rect.highs
    arity = cols.arity
    for dim in range(arity, dims):
        # Padding dimensions are implicitly zero for every entry.
        if lows[dim] > 0 or highs[dim] < 0:
            return None
    count = cols.count
    if count == 0:
        return None
    if arity == 0:
        return range(count)
    lead = arity - 1
    col = cols.coords[lead]
    lo = lows[lead]
    hi = highs[lead]
    start = bisect_left(col, lo) if col[0] < lo else 0
    stop = bisect_right(col, hi, start) if col[count - 1] > hi else count
    if start >= stop:
        return None
    selected: Optional[List[int]] = None
    for dim in range(lead):
        lo = lows[dim]
        hi = highs[dim]
        if lo <= MIN_COORD and hi >= INT64_MAX:
            continue  # unconstrained: packed coordinates are >= 1
        col = cols.coords[dim]
        if selected is None:
            selected = [i for i in range(start, stop) if lo <= col[i] <= hi]
        else:
            selected = [i for i in selected if lo <= col[i] <= hi]
        if not selected:
            return None
    if selected is None:
        return range(start, stop)
    return selected


class FoldAccumulator:
    """Left-fold of match states with exact serial float semantics.

    ``reducers`` holds one tag per flattened state component — ``"add"``
    for SUM/COUNT and both AVG components, ``"min"``/``"max"`` for
    MIN/MAX — mirroring ``combine_states`` applied pairwise in match
    order.  The fold is seeded from the *first* matching row's states
    (not zeros: ``0.0 + -0.0`` would flip a sign bit the row-at-a-time
    path preserves), so the result is bit-identical to folding
    :func:`repro.core.answer.finalize_matches`'s single group.
    """

    __slots__ = ("reducers", "states", "rows")

    def __init__(self, reducers: Sequence[str]) -> None:
        self.reducers = tuple(reducers)
        self.states: Optional[List[float]] = None
        self.rows = 0

    def add(self, values: Sequence[float]) -> None:
        """Fold one matching row (the scalar row-leaf path)."""
        self.rows += 1
        states = self.states
        if states is None:
            self.states = list(values)
            return
        for c, reducer in enumerate(self.reducers):
            value = values[c]
            if reducer == "add":
                states[c] = states[c] + value
            elif reducer == "min":
                states[c] = min(states[c], value)
            else:
                states[c] = max(states[c], value)

    def add_block(
        self, measures: Sequence[array], sel: Selection
    ) -> None:
        """Fold the selected rows of whole measure columns.

        ``sum(chunk, running)`` performs the identical left fold the
        row-at-a-time path does, and ``min(running, min(chunk))``
        preserves its first-seen tie semantics, so states stay
        bit-identical to :meth:`add` called per selected row in order.
        """
        n = len(sel)
        if n == 0:
            return
        self.rows += n
        states = self.states
        if states is None:
            first = sel[0]
            states = self.states = [col[first] for col in measures]
            if n == 1:
                return
            sel = sel[1:]
        if isinstance(sel, range):
            lo, hi = sel.start, sel.stop
            for c, reducer in enumerate(self.reducers):
                chunk = measures[c][lo:hi]
                if reducer == "add":
                    states[c] = sum(chunk, states[c])
                elif reducer == "min":
                    states[c] = min(states[c], min(chunk))
                else:
                    states[c] = max(states[c], max(chunk))
        else:
            for c, reducer in enumerate(self.reducers):
                col = measures[c]
                if reducer == "add":
                    running = states[c]
                    for i in sel:
                        running = running + col[i]
                    states[c] = running
                elif reducer == "min":
                    states[c] = min(states[c], min(col[i] for i in sel))
                else:
                    states[c] = max(states[c], max(col[i] for i in sel))
