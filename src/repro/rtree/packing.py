"""Sort-order bulk loading ("packing") of R-trees.

This is the core mechanism behind Cubetrees (paper Sec. 2.3–2.4): the
tuples of every view are sorted by *reversed* coordinate order — first by
the last coordinate, then the one before it, and so on — and streamed into
leaves that are filled to capacity and written sequentially.  Because the
valid mapping pads unused coordinates with zero and real coordinates are
strictly positive, the reversed-order sort groups views by ascending arity
with no interleaving, so every view occupies a contiguous run of leaves and
each leaf can be *compressed* to the view's own arity.

The paper deliberately rejects space-filling-curve orders (Hilbert et al.)
because they would interleave views; ``hilbert_sort_key`` is provided for
the ablation bench that demonstrates this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.constants import PAGE_SIZE
from repro.errors import InvalidCoordinateError, MappingError
from repro.obs import get_registry, trace
from repro.rtree.geometry import Rect
from repro.rtree.node import (
    MAX_LEAF_ENTRIES,
    RInteriorNode,
    RLeafNode,
    columnar_enabled,
    columnar_entry_cost,
    columnar_header_size,
    interior_capacity,
    leaf_capacity,
)
from repro.rtree.tree import EMPTY_EXTENT, RTree
from repro.storage.buffer import BufferPool

Point = Tuple[int, ...]
Values = Tuple[float, ...]
Entry = Tuple[Point, Values]
#: A run heading into :func:`pack_rtree_stream`: view id, arity, number
#: of aggregate values, and the (lazily consumed) sorted entry stream.
RunStream = Tuple[int, int, int, Iterable[Entry]]

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_PACK_ENTRIES = _REG.counter("rtree.pack.entries")
_OBS_PACK_LEAVES = _REG.counter("rtree.pack.leaves")
_OBS_FREED_PAGES = _REG.counter("rtree.free_tree.pages")


def sort_key(point: Sequence[int], dims: int) -> Tuple[int, ...]:
    """The packing sort key of a (possibly compressed) point.

    Pads the point with zeros up to ``dims`` and reverses it, so an
    ``R{x,y}`` tree sorts its points in (y, x) order — exactly the order of
    paper Tables 2 and 4.
    """
    padded = tuple(point) + (0,) * (dims - len(point))
    return tuple(reversed(padded))


@dataclass
class PackedRun:
    """One view's worth of sorted data heading into a packed tree.

    Attributes
    ----------
    view_id:
        Identifier the engine uses to find the view again.
    arity:
        Number of meaningful coordinates per point (0 for the super
        aggregate, which is mapped to the origin).
    n_aggs:
        Aggregate values carried per point.
    entries:
        ``(point, values)`` pairs; ``point`` has exactly ``arity``
        coordinates and the list is sorted by :func:`sort_key`.
    """

    view_id: int
    arity: int
    n_aggs: int
    entries: Sequence[Tuple[Point, Values]]

    def validate(self, dims: int) -> None:
        """Check arity, coordinate positivity, and sort order."""
        if not 0 <= self.arity <= dims:
            raise MappingError(
                f"view {self.view_id}: arity {self.arity} does not fit in "
                f"a {dims}-dimensional Cubetree"
            )
        prev = None
        for point, values in self.entries:
            if len(point) != self.arity:
                raise MappingError(
                    f"view {self.view_id}: point {point} has "
                    f"{len(point)} coords, expected {self.arity}"
                )
            if any(c <= 0 for c in point):
                raise InvalidCoordinateError(
                    f"view {self.view_id}: non-positive coordinate in "
                    f"{point}; the valid mapping requires coordinates > 0"
                )
            if len(values) != self.n_aggs:
                raise MappingError(
                    f"view {self.view_id}: expected {self.n_aggs} "
                    f"aggregate values, got {len(values)}"
                )
            key = sort_key(point, dims)
            if prev is not None and key < prev:
                raise MappingError(
                    f"view {self.view_id}: entries are not in packing "
                    f"sort order"
                )
            prev = key


def pack_rtree(
    pool: BufferPool,
    dims: int,
    runs: Sequence[PackedRun],
    validate: bool = True,
) -> RTree:
    """Build a packed R-tree from per-view sorted runs.

    ``runs`` must be ordered by ascending arity (SelectMapping guarantees at
    most one view per arity per tree), which makes the concatenated stream
    globally sorted.  Leaves are filled to capacity, never mix views, and
    are written in strictly increasing page order — i.e. sequentially.
    A run with no entries records the :data:`EMPTY_EXTENT` sentinel so the
    zero-row view still has an explicit (empty) run.
    """
    with trace("rtree.pack", runs=len(runs)):
        if validate:
            seen_arity = set()
            prev_last = None
            for run in runs:
                run.validate(dims)
                if run.entries:
                    if run.arity in seen_arity:
                        raise MappingError(
                            f"two views of arity {run.arity} in one Cubetree"
                        )
                    seen_arity.add(run.arity)
                    first = sort_key(run.entries[0][0], dims)
                    if prev_last is not None and first < prev_last:
                        raise MappingError(
                            "runs are not ordered by the global packing order"
                        )
                    prev_last = sort_key(run.entries[-1][0], dims)
        streams: List[RunStream] = [
            (run.view_id, run.arity, run.n_aggs, run.entries) for run in runs
        ]
        return _pack_streams(pool, dims, streams, validate=False)


def pack_rtree_stream(
    pool: BufferPool,
    dims: int,
    run_streams: Sequence[RunStream],
    validate: bool = True,
) -> RTree:
    """Build a packed R-tree from per-view sorted entry *iterators*.

    The out-of-core twin of :func:`pack_rtree`: each run's entries are
    consumed lazily (one entry buffered beyond the open leaf), so the
    peak memory of a bulk load is bounded by whatever produces the
    streams — e.g. :class:`repro.core.extsort.ExternalRunSorter` — not by
    the dataset.  With ``validate`` the same arity / coordinate / sort
    order invariants as :func:`pack_rtree` are enforced inline as the
    streams drain.
    """
    with trace("rtree.pack_stream", runs=len(run_streams)):
        return _pack_streams(pool, dims, run_streams, validate)


def _pack_streams(
    pool: BufferPool,
    dims: int,
    streams: Sequence[RunStream],
    validate: bool,
) -> RTree:
    columnar = columnar_enabled()
    tree = RTree(pool, dims)
    level: List[Tuple[Rect, int]] = []  # (mbr, page id) per node
    open_leaf: Optional[RLeafNode] = None
    open_page = None
    open_bytes = 0
    count = 0
    seen_arity = set()
    prev_key: Optional[Tuple[int, ...]] = None

    for view_id, arity, n_aggs, entries in streams:
        if validate and not 0 <= arity <= dims:
            raise MappingError(
                f"view {view_id}: arity {arity} does not fit in "
                f"a {dims}-dimensional Cubetree"
            )
        cap = leaf_capacity(arity, n_aggs)
        run_first: Optional[int] = None
        run_count = 0
        for point, values in entries:
            if validate:
                if len(point) != arity:
                    raise MappingError(
                        f"view {view_id}: point {point} has "
                        f"{len(point)} coords, expected {arity}"
                    )
                if any(c <= 0 for c in point):
                    raise InvalidCoordinateError(
                        f"view {view_id}: non-positive coordinate in "
                        f"{point}; the valid mapping requires "
                        f"coordinates > 0"
                    )
                if len(values) != n_aggs:
                    raise MappingError(
                        f"view {view_id}: expected {n_aggs} "
                        f"aggregate values, got {len(values)}"
                    )
                key = sort_key(point, dims)
                if prev_key is not None and key < prev_key:
                    if run_count:
                        raise MappingError(
                            f"view {view_id}: entries are not in packing "
                            f"sort order"
                        )
                    raise MappingError(
                        "runs are not ordered by the global packing order"
                    )
                prev_key = key
                if run_count == 0:
                    if arity in seen_arity:
                        raise MappingError(
                            f"two views of arity {arity} in one Cubetree"
                        )
                    seen_arity.add(arity)
            inc = 0
            if open_leaf is not None and open_leaf.view_id == view_id:
                if columnar:
                    inc = columnar_entry_cost(
                        open_leaf.points[-1] if open_leaf.points else None,
                        point,
                        n_aggs,
                    )
                    fits = (
                        inc > 0
                        and open_bytes + inc <= PAGE_SIZE
                        and len(open_leaf.points) < MAX_LEAF_ENTRIES
                    )
                else:
                    fits = len(open_leaf.points) < cap
            else:
                fits = False
            if not fits:
                page = pool.new_page()
                if open_leaf is not None:
                    open_leaf.next_leaf = page.page_id
                    level.append((open_leaf.mbr(dims), open_page.page_id))
                    tree._flush_node(open_leaf, open_page)
                open_leaf = RLeafNode(
                    view_id, arity, n_aggs, columnar=columnar
                )
                open_page = page
                open_bytes = columnar_header_size(arity)
                tree.leaf_page_ids.append(page.page_id)
                tree.owned_page_ids.append(page.page_id)
                _OBS_PACK_LEAVES.value += 1
                if run_first is None:
                    run_first = page.page_id
                if columnar:
                    inc = columnar_entry_cost(None, point, n_aggs)
            open_leaf.points.append(point)
            open_leaf.values.append(values)
            open_bytes += inc
            run_count += 1
        count += run_count
        _OBS_PACK_ENTRIES.value += run_count
        if run_first is None:
            # Zero-row view: record the explicit empty-run sentinel so
            # fsck and run seeks see "no leaves" instead of a degenerate
            # (first, last) pair.
            tree.view_extents[view_id] = EMPTY_EXTENT
        else:
            tree.view_extents[view_id] = (
                run_first,
                tree.leaf_page_ids[-1],
            )

    if open_leaf is None:
        return tree  # no data: empty tree (extents may hold sentinels)
    open_leaf.next_leaf = -1
    level.append((open_leaf.mbr(dims), open_page.page_id))
    tree._flush_node(open_leaf, open_page)

    cap = interior_capacity(dims)
    height = 1
    while len(level) > 1:
        next_level: List[Tuple[Rect, int]] = []
        i = 0
        while i < len(level):
            take = min(cap, len(level) - i)
            remaining = len(level) - i - take
            if 0 < remaining < 2 and take > 2:
                take -= 2 - remaining
            group = level[i : i + take]
            node = RInteriorNode(dims)
            node.mbrs = [mbr for mbr, _ in group]
            node.children = [pid for _, pid in group]
            page = pool.new_page()
            tree.owned_page_ids.append(page.page_id)
            tree._flush_node(node, page)
            next_level.append((node.mbr(), page.page_id))
            i += take
        level = next_level
        height += 1

    tree.root_page_id = level[0][1]
    tree.height = height
    tree.count = count
    return tree


def free_tree(pool: BufferPool, tree: RTree) -> int:
    """Release every page of a tree back to the disk free list.

    Used by merge-pack to retire the old tree once the new one is built.
    Uses the tree's owned-page list when available (no I/O); trees built
    before that bookkeeping existed fall back to a traversal.
    Returns the number of pages freed.
    """
    if tree.root_page_id == -1:
        return 0
    if tree.owned_page_ids:
        freed = list(tree.owned_page_ids)
    else:
        freed = _collect_pages(tree, tree.root_page_id)
    for page_id in freed:
        pool.discard_page(page_id)
        pool.disk.free_page(page_id)
    tree.root_page_id = -1
    tree.leaf_page_ids = []
    tree.owned_page_ids = []
    tree.view_extents = {}
    tree._run_index.clear()
    tree.count = 0
    tree.height = 0
    _OBS_FREED_PAGES.value += len(freed)
    return len(freed)


def _collect_pages(tree: RTree, page_id: int) -> List[int]:
    node, page = tree._fetch_node(page_id)
    try:
        if isinstance(node, RLeafNode):
            return [page_id]
        children = list(node.children)
    finally:
        tree._release(page)
    pages = [page_id]
    for child in children:
        pages.extend(_collect_pages(tree, child))
    return pages


# ----------------------------------------------------------------------
# ablation: space-filling-curve ordering the paper rejects
# ----------------------------------------------------------------------
def hilbert_sort_key(point: Sequence[int], dims: int, bits: int = 16):
    """Hilbert-curve index of a padded point (for the sort-order ablation).

    A compact iterative d-dimensional Hilbert encoding (Butz/Lawder style):
    transposes the coordinate bits, applies the Gray-code walk, and returns
    the curve index as an integer.
    """
    x = list(tuple(point) + (0,) * (dims - len(point)))
    if any(c < 0 or c >= (1 << bits) for c in x):
        raise ValueError(f"coordinates must fit in {bits} bits")
    # Inverse undo excess work
    m = 1 << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(dims):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode
    for i in range(1, dims):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dims - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dims):
        x[i] ^= t
    # Interleave bits: curve index
    index = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            index = (index << 1) | ((x[i] >> bit) & 1)
    return index
