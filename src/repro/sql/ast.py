"""AST node types for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class ColumnRef:
    """``name`` or ``table.name``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class AggCall:
    """``func(column)`` or ``count(*)``."""

    func: str                       # sum | count | min | max | avg
    argument: Optional[ColumnRef]   # None for count(*)

    def __str__(self) -> str:
        arg = str(self.argument) if self.argument else "*"
        return f"{self.func}({arg})"


SelectItem = Union[ColumnRef, AggCall]


@dataclass(frozen=True)
class JoinCondition:
    """``left_column = right_column``."""

    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class ConstantCondition:
    """``column = constant``."""

    column: ColumnRef
    value: float


@dataclass(frozen=True)
class RangeCondition:
    """``column between low and high``."""

    column: ColumnRef
    low: float
    high: float


Condition = Union[JoinCondition, ConstantCondition, RangeCondition]


@dataclass
class SelectStatement:
    """One parsed SELECT."""

    select_list: List[SelectItem] = field(default_factory=list)
    tables: List[str] = field(default_factory=list)
    conditions: List[Condition] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)

    @property
    def aggregates(self) -> Tuple[AggCall, ...]:
        """The aggregate calls of the select list."""
        return tuple(i for i in self.select_list if isinstance(i, AggCall))

    @property
    def plain_columns(self) -> Tuple[ColumnRef, ...]:
        """The non-aggregate columns of the select list."""
        return tuple(
            i for i in self.select_list if isinstance(i, ColumnRef)
        )
