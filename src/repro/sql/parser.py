"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import List

from repro.errors import SQLError
from repro.sql.ast import (
    AggCall,
    ColumnRef,
    ConstantCondition,
    JoinCondition,
    RangeCondition,
    SelectStatement,
)
from repro.sql.tokens import Token, TokenType, tokenize

AGG_FUNCS = {"sum", "count", "min", "max", "avg"}  # repro: read-only


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, ttype: TokenType, value: str | None = None) -> Token:
        token = self.peek()
        if token.type is not ttype or (
            value is not None and token.value != value
        ):
            want = value or ttype.value
            raise SQLError(
                f"expected {want!r} at position {token.position}, "
                f"found {token.value!r}"
            )
        return self.advance()

    def accept(self, ttype: TokenType, value: str | None = None) -> bool:
        token = self.peek()
        if token.type is ttype and (value is None or token.value == value):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------
    def parse(self) -> SelectStatement:
        stmt = SelectStatement()
        self.expect(TokenType.KEYWORD, "select")
        stmt.select_list.append(self.select_item())
        while self.accept(TokenType.COMMA):
            stmt.select_list.append(self.select_item())

        self.expect(TokenType.KEYWORD, "from")
        stmt.tables.append(self.expect(TokenType.IDENT).value)
        while self.accept(TokenType.COMMA):
            stmt.tables.append(self.expect(TokenType.IDENT).value)

        if self.accept(TokenType.KEYWORD, "where"):
            stmt.conditions.append(self.condition())
            while self.accept(TokenType.KEYWORD, "and"):
                stmt.conditions.append(self.condition())

        if self.accept(TokenType.KEYWORD, "group"):
            self.expect(TokenType.KEYWORD, "by")
            stmt.group_by.append(self.column_ref())
            while self.accept(TokenType.COMMA):
                stmt.group_by.append(self.column_ref())

        self.expect(TokenType.END)
        return stmt

    # ------------------------------------------------------------------
    def select_item(self):
        token = self.peek()
        if token.type is TokenType.KEYWORD and token.value in AGG_FUNCS:
            func = self.advance().value
            self.expect(TokenType.LPAREN)
            if self.accept(TokenType.STAR):
                argument = None
            else:
                argument = self.column_ref()
            self.expect(TokenType.RPAREN)
            return AggCall(func, argument)
        return self.column_ref()

    def column_ref(self) -> ColumnRef:
        first = self.expect(TokenType.IDENT).value
        if self.accept(TokenType.DOT):
            second = self.expect(TokenType.IDENT).value
            return ColumnRef(second, table=first)
        return ColumnRef(first)

    def condition(self):
        left = self.column_ref()
        if self.accept(TokenType.KEYWORD, "between"):
            low = self.expect(TokenType.NUMBER)
            self.expect(TokenType.KEYWORD, "and")
            high = self.expect(TokenType.NUMBER)
            return RangeCondition(left, float(low.value), float(high.value))
        self.expect(TokenType.EQUALS)
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            return ConstantCondition(left, float(token.value))
        right = self.column_ref()
        return JoinCondition(left, right)


def parse_select(text: str) -> SelectStatement:
    """Parse one SELECT statement of the supported subset."""
    return _Parser(tokenize(text)).parse()
