"""Binding parsed SQL to the library's native types.

* :func:`bind_view` turns a ``SELECT ... FROM F [, dims] [WHERE joins]
  GROUP BY ...`` statement into a
  :class:`~repro.relational.view.ViewDefinition` — exactly how the paper
  writes its views V1..V9.
* :func:`bind_query` turns a slice query written against the fact table
  into a :class:`~repro.query.slice.SliceQuery` ready for either engine.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import InternalError, SQLError
from repro.query.slice import SliceQuery
from repro.relational.executor import AggFunc, AggSpec
from repro.relational.view import ViewDefinition
from repro.sql.ast import (
    AggCall,
    ColumnRef,
    ConstantCondition,
    JoinCondition,
    RangeCondition,
    SelectStatement,
)
from repro.sql.parser import parse_select
from repro.warehouse.star import StarSchema

FACT_NAME = "F"


def _resolve_column(col: ColumnRef, schema: StarSchema) -> str:
    """Canonical attribute name for a column reference."""
    dims_by_name = {dim.name: dim for dim in schema.dimensions.values()}
    if col.table is not None and col.table != FACT_NAME:
        dim = dims_by_name.get(col.table)
        if dim is None:
            raise SQLError(f"unknown table {col.table!r}")
        if col.name not in dim.attributes:
            raise SQLError(
                f"dimension {col.table!r} has no attribute {col.name!r}"
            )
        return col.name
    if col.name in schema.fact_columns:
        return col.name
    # Unqualified dimension attribute: must be unambiguous.
    owners = [
        dim.name for dim in dims_by_name.values()
        if col.name in dim.attributes
    ]
    if len(owners) == 1:
        return col.name
    if len(owners) > 1:
        raise SQLError(
            f"ambiguous column {col.name!r} (in {sorted(owners)})"
        )
    raise SQLError(f"unknown column {col!s}")


def _bind_aggregate(call: AggCall, schema: StarSchema) -> AggSpec:
    func = AggFunc(call.func)
    if call.argument is None:
        if func is not AggFunc.COUNT:
            raise SQLError(f"{call.func}(*) is only valid for count")
        return AggSpec(func)
    attr = _resolve_column(call.argument, schema)
    if attr not in schema.measures:
        raise SQLError(
            f"aggregates must target a measure {schema.measures!r}, "
            f"not {attr!r}"
        )
    return AggSpec(func, attr)


def bind_view(
    stmt: SelectStatement, schema: StarSchema, name: str
) -> ViewDefinition:
    """Bind a parsed view statement against the warehouse schema."""
    if FACT_NAME not in stmt.tables:
        raise SQLError("view definitions must select from the fact table F")
    dims_by_name = {dim.name: dim for dim in schema.dimensions.values()}
    for table in stmt.tables:
        if table != FACT_NAME and table not in dims_by_name:
            raise SQLError(f"unknown table {table!r}")

    for cond in stmt.conditions:
        if isinstance(cond, (ConstantCondition, RangeCondition)):
            raise SQLError(
                "constant predicates are not allowed in view definitions"
            )
        if not isinstance(cond, JoinCondition):
            raise InternalError(
                f"parser produced unknown condition type "
                f"{type(cond).__name__}"
            )
        _validate_join(cond, schema)

    aggregates = tuple(
        _bind_aggregate(call, schema) for call in stmt.aggregates
    )
    if not aggregates:
        raise SQLError("a view needs at least one aggregate column")

    group_attrs: Tuple[str, ...] = tuple(
        _resolve_column(col, schema) for col in stmt.group_by
    )
    plain = tuple(_resolve_column(col, schema) for col in stmt.plain_columns)
    if set(plain) != set(group_attrs):
        raise SQLError(
            "selected columns must match the GROUP BY list "
            f"({sorted(plain)} vs {sorted(group_attrs)})"
        )
    return ViewDefinition(name, group_attrs, aggregates=aggregates)


def _validate_join(cond: JoinCondition, schema: StarSchema) -> None:
    sides = {cond.left, cond.right}
    names = {c.table for c in sides}
    if FACT_NAME not in names and None not in names:
        raise SQLError("join conditions must involve the fact table")
    for col in sides:
        if col.table in (None, FACT_NAME):
            if col.name not in schema.fact_keys:
                raise SQLError(
                    f"join column {col!s} is not a fact foreign key"
                )


def bind_query(stmt: SelectStatement, schema: StarSchema) -> SliceQuery:
    """Bind a parsed slice query against the warehouse schema."""
    if stmt.tables != [FACT_NAME]:
        raise SQLError("slice queries select from the fact table F only")
    bindings = []
    ranges = []
    for cond in stmt.conditions:
        if isinstance(cond, JoinCondition):
            raise SQLError("slice queries only take constant predicates")
        attr = _resolve_column(cond.column, schema)
        if isinstance(cond, RangeCondition):
            low, high = int(cond.low), int(cond.high)
            if low != cond.low or high != cond.high:
                raise SQLError("range bounds must be integers (keys)")
            ranges.append((attr, low, high))
            continue
        value = int(cond.value)
        if value != cond.value:
            raise SQLError("predicate constants must be integers (keys)")
        bindings.append((attr, value))
    group_by = tuple(_resolve_column(col, schema) for col in stmt.group_by)
    plain = tuple(_resolve_column(col, schema) for col in stmt.plain_columns)
    if set(plain) - set(group_by):
        raise SQLError(
            "non-aggregate select columns must appear in GROUP BY"
        )
    if not stmt.aggregates:
        raise SQLError("slice queries must select an aggregate")
    return SliceQuery(group_by, tuple(bindings), tuple(ranges))


def parse_view(sql: str, schema: StarSchema, name: str) -> ViewDefinition:
    """Parse + bind a view definition in one call."""
    return bind_view(parse_select(sql), schema, name)


def parse_query(sql: str, schema: StarSchema) -> SliceQuery:
    """Parse + bind a slice query in one call."""
    return bind_query(parse_select(sql), schema)
