"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from repro.errors import SQLError

KEYWORDS = {  # repro: read-only
    "select", "from", "where", "group", "by", "and", "as", "between",
    "sum", "count", "min", "max", "avg",
}


class TokenType(Enum):
    """Kinds of tokens the SQL subset uses."""
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    COMMA = ","
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"
    EQUALS = "="
    END = "end"


@dataclass(frozen=True)
class Token:
    """One token: type, value, and source position."""
    type: TokenType
    value: str
    position: int


_SINGLE = {  # repro: read-only
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "*": TokenType.STAR,
    "=": TokenType.EQUALS,
}


def tokenize(text: str) -> List[Token]:
    """Split a statement into tokens; raises SQLError on stray characters."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, i))
            i += 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = (
                TokenType.KEYWORD
                if word.lower() in KEYWORDS
                else TokenType.IDENT
            )
            value = word.lower() if kind is TokenType.KEYWORD else word
            tokens.append(Token(kind, value, i))
            i = j
            continue
        raise SQLError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.END, "", n))
    return tokens
