"""A small SQL subset front end.

The Cubetree Datablade "provides the end-user with a clean and transparent
SQL interface" (Sec. 3); the paper defines every view and query in SQL.
This package parses the subset those statements use —

``SELECT`` lists with aggregate functions, ``FROM`` the fact table plus
optional dimension tables, ``WHERE`` equality predicates (join conditions
and constant selections), and ``GROUP BY`` —

and binds the result to the library's native types
(:class:`~repro.relational.view.ViewDefinition` /
:class:`~repro.query.slice.SliceQuery`).
"""

from repro.sql.binder import bind_query, bind_view, parse_query, parse_view
from repro.sql.parser import parse_select
from repro.sql.tokens import tokenize

__all__ = [
    "bind_query",
    "bind_view",
    "parse_query",
    "parse_select",
    "parse_view",
    "tokenize",
]
