"""Heap files: collections of fixed-width records on slotted pages.

A heap file is the conventional engine's table storage.  Records are
addressed by :class:`RID` (page id, slot) — the value B+-tree indexes point
at — and can be fetched, updated in place, deleted, or scanned in page
order.

Page layout (little-endian)::

    offset 0   uint16   number of slots in use (live records)
    offset 2   uint16   slot count on this page (constant per codec)
    offset 4   bitmap   ceil(slots/8) bytes of slot-occupancy bits
    ...        records  slot i at record_base + i * record_size

The list of pages belonging to the file is kept in the Python object; a
production system would persist it in a file-extent map, which adds nothing
to the experiments here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.constants import PAGE_SIZE, ROW_HEADER_BYTES
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.codec import RecordCodec
from repro.storage.page import Page

_HEADER_BYTES = 4


@dataclass(frozen=True, order=True)
class RID:
    """Record identifier: physical page id plus slot number."""

    page_id: int
    slot: int


def _slots_per_page(slot_size: int) -> int:
    """Max slots such that header + bitmap + slots*slot_size <= PAGE_SIZE."""
    usable = PAGE_SIZE - _HEADER_BYTES
    slots = (usable * 8) // (slot_size * 8 + 1)
    if slots < 1:
        raise StorageError(
            f"record of {slot_size} bytes does not fit in a {PAGE_SIZE}B page"
        )
    return slots


class HeapFile:
    """A bag of records over a buffer pool.

    Parameters
    ----------
    pool:
        Shared buffer pool.
    codec:
        Fixed-width record layout for this file.
    """

    def __init__(self, pool: BufferPool, codec: RecordCodec) -> None:
        self.pool = pool
        self.codec = codec
        # Each slot holds the encoded record plus the per-row header a
        # transactional server maintains (see constants.ROW_HEADER_BYTES).
        self.slot_size = codec.record_size + ROW_HEADER_BYTES
        self.slots_per_page = _slots_per_page(self.slot_size)
        self._bitmap_bytes = (self.slots_per_page + 7) // 8
        self._record_base = _HEADER_BYTES + self._bitmap_bytes
        self.page_ids: List[int] = []
        self._free: List[RID] = []
        self._count = 0

    # ------------------------------------------------------------------
    # basic operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live records."""
        return self._count

    @property
    def num_pages(self) -> int:
        """Pages belonging to this heap file."""
        return len(self.page_ids)

    def insert(self, values: Sequence[object]) -> RID:
        """Append a record, reusing a freed slot when one exists."""
        raw = self.codec.encode(values)
        rid = self._free.pop() if self._free else self._append_slot()
        page = self.pool.fetch_page(rid.page_id)
        try:
            self._write_slot(page, rid.slot, raw)
            self._set_bit(page, rid.slot, True)
            self._bump_used(page, +1)
        finally:
            self.pool.unpin_page(rid.page_id, dirty=True)
        self._count += 1
        return rid

    def fetch(self, rid: RID) -> Tuple[object, ...]:
        """Read one record by RID."""
        page = self.pool.fetch_page(rid.page_id)
        try:
            if not self._get_bit(page, rid.slot):
                raise StorageError(f"no live record at {rid}")
            raw = self._read_slot(page, rid.slot)
        finally:
            self.pool.unpin_page(rid.page_id)
        return self.codec.decode(raw)

    def update(self, rid: RID, values: Sequence[object]) -> None:
        """Overwrite one record in place."""
        raw = self.codec.encode(values)
        page = self.pool.fetch_page(rid.page_id)
        try:
            if not self._get_bit(page, rid.slot):
                raise StorageError(f"no live record at {rid}")
            self._write_slot(page, rid.slot, raw)
        finally:
            self.pool.unpin_page(rid.page_id, dirty=True)

    def delete(self, rid: RID) -> None:
        """Remove one record; its slot becomes reusable."""
        page = self.pool.fetch_page(rid.page_id)
        try:
            if not self._get_bit(page, rid.slot):
                raise StorageError(f"no live record at {rid}")
            self._set_bit(page, rid.slot, False)
            self._bump_used(page, -1)
        finally:
            self.pool.unpin_page(rid.page_id, dirty=True)
        self._free.append(rid)
        self._count -= 1

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[RID, Tuple[object, ...]]]:
        """Yield (rid, record) for every live record in page order.

        Each page is decoded with one strided batch call while pinned;
        the pin is held across the page's yields exactly as before, so
        buffer-pool traffic (and the simulated I/O it charges) is
        unchanged.
        """
        slots = self.slots_per_page
        for page_id in self.page_ids:
            page = self.pool.fetch_page(page_id)
            try:
                used = int.from_bytes(page.data[0:2], "little")
                if not used:
                    continue
                records = self.codec.decode_strided(
                    page.data, slots, ROW_HEADER_BYTES,
                    offset=self._record_base,
                )
                if used == slots:  # full page: every slot is live
                    for slot in range(slots):
                        yield RID(page_id, slot), records[slot]
                else:
                    bitmap = bytes(
                        page.data[_HEADER_BYTES:_HEADER_BYTES
                                  + self._bitmap_bytes]
                    )
                    for slot in range(slots):
                        if bitmap[slot >> 3] & (1 << (slot & 7)):
                            yield RID(page_id, slot), records[slot]
            finally:
                self.pool.unpin_page(page_id)

    def scan_records(self) -> Iterator[Tuple[object, ...]]:
        """Yield records only (no RIDs)."""
        for _rid, record in self.scan():
            yield record

    # ------------------------------------------------------------------
    # bulk load
    # ------------------------------------------------------------------
    def bulk_append(self, rows: Sequence[Sequence[object]]) -> List[RID]:
        """Append many records with page-at-a-time (sequential) writes.

        Unlike :meth:`insert`, which touches pages one record at a time,
        this packs full pages and writes each exactly once — the access
        pattern a bulk loader gets from sorting its input first.
        """
        rids: List[RID] = []
        i = 0
        while i < len(rows):
            page = self.pool.new_page()
            try:
                self._init_page(page)
                take = min(self.slots_per_page, len(rows) - i)
                # One strided pack covers the slot region (row headers are
                # the zero pad bytes), and the occupancy bitmap is set in
                # whole bytes — byte-identical to the per-slot path.
                packed = self.codec.encode_strided(
                    rows[i : i + take], ROW_HEADER_BYTES
                )
                base = self._record_base
                page.data[base : base + len(packed)] = packed
                full_bytes, rem = divmod(take, 8)
                bits = b"\xff" * full_bytes
                if rem:
                    bits += bytes(((1 << rem) - 1,))
                page.data[_HEADER_BYTES : _HEADER_BYTES + len(bits)] = bits
                pid = page.page_id
                rids.extend(RID(pid, slot) for slot in range(take))
                self._bump_used(page, take)
            finally:
                self.pool.unpin_page(page.page_id, dirty=True)
            self.page_ids.append(page.page_id)
            self._count += take
            i += take
        return rids

    # ------------------------------------------------------------------
    # page plumbing
    # ------------------------------------------------------------------
    def _append_slot(self) -> RID:
        if self.page_ids:
            last_id = self.page_ids[-1]
            page = self.pool.fetch_page(last_id)
            try:
                for slot in range(self.slots_per_page):
                    if not self._get_bit(page, slot):
                        return RID(last_id, slot)
            finally:
                self.pool.unpin_page(last_id)
        page = self.pool.new_page()
        try:
            self._init_page(page)
        finally:
            self.pool.unpin_page(page.page_id, dirty=True)
        self.page_ids.append(page.page_id)
        return RID(page.page_id, 0)

    def _init_page(self, page: Page) -> None:
        page.data[0:2] = (0).to_bytes(2, "little")
        page.data[2:4] = self.slots_per_page.to_bytes(2, "little")
        start = _HEADER_BYTES
        page.data[start : start + self._bitmap_bytes] = bytes(self._bitmap_bytes)
        page.mark_dirty()

    def _bump_used(self, page: Page, delta: int) -> None:
        used = int.from_bytes(page.data[0:2], "little") + delta
        page.data[0:2] = used.to_bytes(2, "little")
        page.mark_dirty()

    def _slot_offset(self, slot: int) -> int:
        return self._record_base + slot * self.slot_size + ROW_HEADER_BYTES

    def _read_slot(self, page: Page, slot: int) -> bytes:
        off = self._slot_offset(slot)
        return bytes(page.data[off : off + self.codec.record_size])

    def _write_slot(self, page: Page, slot: int, raw: bytes) -> None:
        off = self._slot_offset(slot)
        page.data[off : off + self.codec.record_size] = raw
        page.mark_dirty()

    def _get_bit(self, page: Page, slot: int) -> bool:
        byte = page.data[_HEADER_BYTES + slot // 8]
        return bool(byte & (1 << (slot % 8)))

    def _set_bit(self, page: Page, slot: int, value: bool) -> None:
        idx = _HEADER_BYTES + slot // 8
        mask = 1 << (slot % 8)
        if value:
            page.data[idx] |= mask
        else:
            page.data[idx] &= ~mask & 0xFF
        page.mark_dirty()
