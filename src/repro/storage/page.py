"""In-memory representation of one disk page."""

from __future__ import annotations

from typing import Any, Optional

from repro.constants import PAGE_SIZE


class Page:
    """A fixed-size byte buffer plus bookkeeping used by the buffer pool.

    Higher layers (heap files, B+-trees, Cubetrees) deserialize page bytes
    into structured node objects.  Deserializing on every access is wasteful,
    so a page carries an optional ``cached_obj`` slot: the owning layer may
    stash the deserialized object there and reuse it while the page stays in
    the pool.  The cache is dropped on eviction.  The layer that mutates a
    node is responsible for serializing it back into :attr:`data` and calling
    :meth:`mark_dirty` (the pool only writes back :attr:`data`).
    """

    __slots__ = ("page_id", "data", "dirty", "pin_count", "cached_obj")

    def __init__(self, page_id: int, data: Optional[bytearray] = None) -> None:
        if data is None:
            data = bytearray(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise ValueError(
                f"page data must be exactly {PAGE_SIZE} bytes, got {len(data)}"
            )
        self.page_id = page_id
        self.data = data
        self.dirty = False
        self.pin_count = 0
        self.cached_obj: Any = None

    def mark_dirty(self) -> None:
        """Flag the page for write-back on eviction/flush."""
        self.dirty = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Page(id={self.page_id}, dirty={self.dirty}, "
            f"pins={self.pin_count})"
        )
