"""Scan-resistant (2Q-style) buffer pool with hit-ratio statistics.

The paper argues that minimizing the number of Cubetrees "increases the
buffer hit ratio, i.e. the probability of having the top-level pages of the
trees in memory" (Sec. 2.4).  The pool therefore tracks hits and misses so
experiments and ablations can report that ratio directly.

Plain LRU undermines that argument: one sequential run scan touches every
leaf of a view exactly once and, page by page, pushes the hot top-level
index pages out of the pool.  The pool is therefore split into two
segments, in the spirit of the 2Q replacement policy:

* the **protected** segment (``_frames``) — an LRU over pages admitted by
  ordinary (point-access) fetches and re-referenced scan pages; and
* the **probationary** segment (``_probation``) — a FIFO over pages
  admitted by ``fetch_page(..., scan=True)`` and :meth:`prefetch_run`.
  Single-touch scan pages live and die here without ever displacing a
  protected page; a later *point* access promotes a page into the
  protected LRU (the demand fetch behind a read-ahead does not — it is
  the same logical access that triggered the prefetch).

Eviction always drains the probationary FIFO before touching the
protected LRU, and pages registered via :meth:`protect_page` (interior
and root index pages during fast scans) are passed over until no other
victim exists.  A workload that never issues a scan fetch and never
protects a page sees byte-for-byte the old LRU behaviour — existing
simulated-I/O baselines cannot drift.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from repro.constants import DEFAULT_BUFFER_PAGES, DEFAULT_COLUMN_CACHE_PAGES
from repro.errors import StorageError
from repro.obs import get_registry
from repro.storage.disk import DiskManager
from repro.storage.page import Page

# Process-wide observability counters (all pools in one snapshot).
_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_HITS = _REG.counter("buffer.hits")
_OBS_MISSES = _REG.counter("buffer.misses")
_OBS_EVICTIONS = _REG.counter("buffer.evictions")
_OBS_NEW_PAGES = _REG.counter("buffer.new_pages")
_OBS_UNPINS = _REG.counter("buffer.unpins")
_OBS_SCAN_ADMITS = _REG.counter("buffer.scan_admissions")
_OBS_PROMOTIONS = _REG.counter("buffer.promotions")
_OBS_READAHEAD = _REG.counter("buffer.readahead_pages")
_OBS_COL_HITS = _REG.counter("buffer.column_cache.hits")
_OBS_COL_MISSES = _REG.counter("buffer.column_cache.misses")
_OBS_COL_EVICTIONS = _REG.counter("buffer.column_cache.evictions")
_OBS_COL_INVALIDATIONS = _REG.counter("buffer.column_cache.invalidations")
#: Current decoded bytes held across every pool's column cache (counter
#: adjusted with +/- deltas so the snapshot reads as a gauge).
_OBS_COL_BYTES = _REG.counter("buffer.column_cache.bytes")


def column_cache_capacity() -> int:
    """Decoded-column cache entries per pool.

    ``REPRO_COLUMN_CACHE_PAGES`` overrides the default
    (:data:`repro.constants.DEFAULT_COLUMN_CACHE_PAGES`); ``0`` disables
    the cache entirely.
    """
    raw = os.environ.get("REPRO_COLUMN_CACHE_PAGES", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError as exc:
            raise StorageError(
                f"REPRO_COLUMN_CACHE_PAGES={raw!r} is not an integer"
            ) from exc
    return DEFAULT_COLUMN_CACHE_PAGES


@dataclass
class ColumnCacheStats:
    """Counters for one pool's decoded-column side-cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries dropped because the page's content version moved on
    #: (dirtying unpin, page reallocation, discard).
    invalidations: int = 0
    #: Decoded payload bytes currently held (estimate: 8 bytes per
    #: stored coordinate and measure).
    bytes: int = 0


class DecodedColumnCache:
    """Bounded LRU of decoded leaf objects keyed by page id + version.

    The 2Q pool deliberately lets run scans churn through the
    probationary segment, so a hot leaf's ``Page.cached_obj`` rarely
    survives from one query to the next; this side-cache keeps the
    *decoded* object (points, values, column buffers) across page
    evictions, making repeated and batched queries skip re-decoding
    entirely.  Every entry is guarded by the pool's per-page content
    version: any dirtying unpin, reallocation, or discard bumps the
    version, so a stale decode can never be served for a rewritten or
    reused page.  Purely CPU-side — lookups and stores never touch the
    disk or the page segments, so simulated I/O is unaffected.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.stats = ColumnCacheStats()
        #: page id -> (content version, decoded object, payload bytes).
        self._entries: "OrderedDict[int, Tuple[int, object, int]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, page_id: int, version: int) -> Optional[object]:
        """The decoded object for the page's current contents, if any."""
        entry = self._entries.get(page_id)
        if entry is not None and entry[0] != version:
            self._drop(page_id, entry)
            self.stats.invalidations += 1
            _OBS_COL_INVALIDATIONS.value += 1
            entry = None
        if entry is None:
            self.stats.misses += 1
            _OBS_COL_MISSES.value += 1
            return None
        self._entries.move_to_end(page_id)
        self.stats.hits += 1
        _OBS_COL_HITS.value += 1
        return entry[1]

    def put(
        self, page_id: int, version: int, obj: object, nbytes: int
    ) -> None:
        """Admit a decoded object, evicting LRU entries past capacity."""
        if self.capacity <= 0:
            return
        old = self._entries.pop(page_id, None)
        if old is not None:
            self.stats.bytes -= old[2]
            _OBS_COL_BYTES.value -= old[2]
        self._entries[page_id] = (version, obj, nbytes)
        self.stats.bytes += nbytes
        _OBS_COL_BYTES.value += nbytes
        while len(self._entries) > self.capacity:
            _pid, (_ver, _obj, freed) = self._entries.popitem(last=False)
            self.stats.bytes -= freed
            _OBS_COL_BYTES.value -= freed
            self.stats.evictions += 1
            _OBS_COL_EVICTIONS.value += 1

    def invalidate(self, page_id: int) -> None:
        """Drop the page's entry, if present (its contents moved on)."""
        entry = self._entries.get(page_id)
        if entry is not None:
            self._drop(page_id, entry)
            self.stats.invalidations += 1
            _OBS_COL_INVALIDATIONS.value += 1

    def clear(self) -> None:
        """Drop every entry (pool cleared — a simulated cold restart)."""
        freed = self.stats.bytes
        self._entries.clear()
        self.stats.bytes = 0
        _OBS_COL_BYTES.value -= freed

    def _drop(self, page_id: int, entry: Tuple[int, object, int]) -> None:
        del self._entries[page_id]
        self.stats.bytes -= entry[2]
        _OBS_COL_BYTES.value -= entry[2]


@dataclass
class BufferStats:
    """Hit/miss counters for one buffer pool.

    ``new_pages`` (freshly allocated pages admitted without a disk read)
    is tracked separately from hits/misses: a cold pool that has only
    allocated pages has performed *zero* cache lookups, and its hit ratio
    must read as "no data" (0 of 0), not as 0% — the bench harness
    special-cases ``accesses == 0`` instead of dividing.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    new_pages: int = 0
    #: Pins released via :meth:`BufferPool.unpin_page` — iterator paths
    #: must balance every fetch with a release even when abandoned early,
    #: and tests assert on this counter to prove they do.
    unpins: int = 0
    #: Pages admitted to the probationary FIFO by scan fetches/read-ahead.
    scan_admissions: int = 0
    #: Probationary pages re-referenced and moved to the protected LRU.
    promotions: int = 0
    #: Pages read ahead of demand by :meth:`BufferPool.prefetch_run`.
    readahead_pages: int = 0

    @property
    def accesses(self) -> int:
        """Total cache lookups (hits + misses; allocations excluded)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from memory.

        A pool with no lookups yet (cold, or only ``new_page``
        allocations) has no meaningful ratio; 0.0 is returned rather
        than dividing by zero.  Callers that must distinguish "cold"
        from "0% hits" should test :attr:`accesses` first.
        """
        accesses = self.accesses
        if accesses == 0:
            return 0.0
        return self.hits / accesses

    def copy(self) -> "BufferStats":
        """Independent snapshot (for before/after phase deltas)."""
        return BufferStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            new_pages=self.new_pages,
            unpins=self.unpins,
            scan_admissions=self.scan_admissions,
            promotions=self.promotions,
            readahead_pages=self.readahead_pages,
        )

    def __sub__(self, other: "BufferStats") -> "BufferStats":
        return BufferStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            new_pages=self.new_pages - other.new_pages,
            unpins=self.unpins - other.unpins,
            scan_admissions=self.scan_admissions - other.scan_admissions,
            promotions=self.promotions - other.promotions,
            readahead_pages=self.readahead_pages - other.readahead_pages,
        )


class BufferPool:
    """Caches :class:`Page` objects over a :class:`DiskManager` with a
    two-segment (protected LRU + probationary FIFO) replacement policy.

    Pinned pages (``pin_count > 0``) are never evicted; callers must balance
    :meth:`fetch_page`/:meth:`new_page` with :meth:`unpin_page`.
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_BUFFER_PAGES,
        eviction_batch: int = 64,
    ) -> None:
        """``eviction_batch`` pages are evicted together when the pool
        fills, with dirty victims written back in page-id order — the
        batched background-writer discipline that keeps bulk-load and
        merge output I/O sequential even while reads interleave."""
        if capacity < 1:
            raise ValueError("buffer pool needs capacity >= 1")
        if eviction_batch < 1:
            raise ValueError("eviction_batch must be >= 1")
        self.disk = disk
        self.capacity = capacity
        self.eviction_batch = eviction_batch
        self.stats = BufferStats()
        #: Protected segment: LRU over point-access and re-referenced pages.
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        #: Probationary segment: FIFO over single-touch scan pages.
        self._probation: "OrderedDict[int, Page]" = OrderedDict()
        #: Page ids sheltered from eviction while unprotected victims exist
        #: (interior/root index pages during fast run scans).
        self._sticky: Set[int] = set()
        #: Decoded-column side-cache; survives page eviction, guarded by
        #: the per-page content versions below.
        self.column_cache = DecodedColumnCache(  # repro: guarded-by(SharedBufferPool._lock)
            column_cache_capacity()
        )
        #: Content generation per page id; bumped on dirtying unpins,
        #: reallocation, and discard so the column cache can never serve
        #: a decode of superseded page contents.
        self._page_versions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # page access
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: int, scan: bool = False) -> Page:
        """Return the page, reading it from disk on a miss.  Pins the page.

        ``scan=True`` marks the access as part of a sequential run scan:
        a miss is admitted to the probationary FIFO instead of the
        protected LRU, so a long scan cannot wipe out the hot set.  A
        *point* (``scan=False``) hit on a probationary page promotes it
        to the protected LRU — genuine re-reference is the 2Q signal
        that a page is worth keeping; a scan hit leaves it probationary,
        because the demand fetch behind a read-ahead is one logical
        access, not evidence of reuse.
        """
        page = self._frames.get(page_id)
        if page is not None:
            self.stats.hits += 1
            _OBS_HITS.value += 1
            self._frames.move_to_end(page_id)
        elif (page := self._probation.get(page_id)) is not None:
            self.stats.hits += 1
            _OBS_HITS.value += 1
            if not scan:
                del self._probation[page_id]
                self._frames[page_id] = page
                self.stats.promotions += 1
                _OBS_PROMOTIONS.value += 1
        else:
            self.stats.misses += 1
            _OBS_MISSES.value += 1
            data = self.disk.read_page(page_id)
            page = Page(page_id, data)
            self._admit(page, scan=scan)
        page.pin_count += 1
        return page

    def new_page(self) -> Page:
        """Allocate a fresh page on disk and return it pinned.

        The new page is *not* read from disk (it has no contents yet).
        """
        page_id = self.disk.allocate_page()
        page = Page(page_id)
        self._admit(page)
        page.pin_count += 1
        self.stats.new_pages += 1
        _OBS_NEW_PAGES.value += 1
        # The disk reuses freed page ids: a reallocated id is new
        # contents, so any cached decode of its old life must die.
        self._bump_version(page_id)
        return page

    def unpin_page(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; optionally mark the page dirty."""
        page = self._frames.get(page_id)
        if page is None:
            page = self._probation.get(page_id)
        if page is None:
            raise StorageError(f"unpin of page {page_id} not in pool")
        if page.pin_count <= 0:
            raise StorageError(f"page {page_id} is not pinned")
        page.pin_count -= 1
        if dirty:
            page.dirty = True
            self._bump_version(page_id)
        self.stats.unpins += 1
        _OBS_UNPINS.value += 1

    # ------------------------------------------------------------------
    # decoded-column side-cache
    # ------------------------------------------------------------------
    def page_version(self, page_id: int) -> int:
        """Content generation of a page (0 until it is first rewritten)."""
        return self._page_versions.get(page_id, 0)

    def cached_columns(self, page_id: int) -> Optional[object]:
        """Decoded object for the page's *current* contents, if cached."""
        return self.column_cache.get(page_id, self.page_version(page_id))

    def store_columns(self, page_id: int, obj: object, nbytes: int) -> None:
        """Admit a decoded object for the page's current contents."""
        self.column_cache.put(page_id, self.page_version(page_id), obj, nbytes)

    def _bump_version(self, page_id: int) -> None:
        self._page_versions[page_id] = (
            self._page_versions.get(page_id, 0) + 1
        )
        self.column_cache.invalidate(page_id)

    # ------------------------------------------------------------------
    # scan support
    # ------------------------------------------------------------------
    def prefetch_run(self, page_ids: Sequence[int]) -> int:
        """Read ahead a window of a sequential leaf run.

        Pages not already cached are read from disk in the given order
        (callers pass ascending page ids, so the simulated device prices
        them sequentially — the same cost the demand fetches would have
        paid) and admitted *unpinned* to the probationary FIFO.  The
        demand :meth:`fetch_page` that follows then hits in memory.
        Returns the number of pages actually read.
        """
        read = 0
        for page_id in page_ids:
            if page_id in self._frames or page_id in self._probation:
                continue
            data = self.disk.read_page(page_id)
            self._admit(Page(page_id, data), scan=True)
            read += 1
        self.stats.readahead_pages += read
        _OBS_READAHEAD.value += read
        return read

    def protect_page(self, page_id: int) -> None:
        """Shelter a page id from eviction while other victims exist.

        Used for interior/root index pages during fast run scans: they
        are re-read on every descent, so letting a scan's probationary
        churn force them out would turn their next access into a random
        read.  Protection is advisory — when every other page is pinned
        or protected, protected pages become evictable again rather than
        failing the admission."""
        self._sticky.add(page_id)

    def unprotect_page(self, page_id: int) -> None:
        """Remove eviction shelter from a page id (missing ids are fine)."""
        self._sticky.discard(page_id)

    @property
    def protected_page_ids(self) -> FrozenSet[int]:
        """Snapshot of the sheltered page ids (for tests/diagnostics)."""
        return frozenset(self._sticky)

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def flush_page(self, page_id: int) -> None:
        """Write one dirty page back to disk."""
        page = self._frames.get(page_id)
        if page is None:
            page = self._probation.get(page_id)
        if page is None:
            return
        if page.dirty:
            self.disk.write_page(page.page_id, bytes(page.data))
            page.dirty = False

    def flush_all(self) -> None:
        """Write every dirty page back to disk in page-id order (pages
        stay cached; ordering keeps the flush burst sequential)."""
        for page_id in sorted(self._all_page_ids()):
            self.flush_page(page_id)

    def clear(self) -> None:
        """Flush everything and empty the pool (simulates a cold cache)."""
        self.flush_all()
        for page in self._all_pages():
            if page.pin_count > 0:
                raise StorageError(
                    f"cannot clear pool: page {page.page_id} is pinned"
                )
        self._frames.clear()
        self._probation.clear()
        # A cold restart loses in-memory decodes too; page versions are
        # kept — they describe on-disk content generations, and the
        # cache entries they guard are gone anyway.
        self.column_cache.clear()

    def discard_page(self, page_id: int) -> None:
        """Drop a page from the pool *without* writing it back.

        Used when the page is being freed on disk (e.g. retiring an old
        Cubetree after a merge-pack), so flushing would be wasted work.
        """
        page = self._frames.pop(page_id, None)
        if page is None:
            page = self._probation.pop(page_id, None)
            segment = self._probation
        else:
            segment = self._frames
        if page is not None and page.pin_count > 0:
            segment[page_id] = page
            raise StorageError(f"cannot discard pinned page {page_id}")
        self._sticky.discard(page_id)
        # The page is being freed on disk; its id may be reallocated
        # with different contents, so its cached decode must die now.
        self._bump_version(page_id)

    # ------------------------------------------------------------------
    @property
    def num_cached(self) -> int:
        """Pages currently held in the pool (both segments)."""
        return len(self._frames) + len(self._probation)

    def _all_page_ids(self) -> Iterable[int]:
        yield from self._frames
        yield from self._probation

    def _all_pages(self) -> Iterable[Page]:
        yield from self._frames.values()
        yield from self._probation.values()

    def _admit(self, page: Page, scan: bool = False) -> None:
        if self.num_cached >= self.capacity:
            self._evict_batch()
        if scan:
            self._probation[page.page_id] = page
            self.stats.scan_admissions += 1
            _OBS_SCAN_ADMITS.value += 1
        else:
            self._frames[page.page_id] = page

    def _evict_batch(self) -> None:
        """Evict up to ``eviction_batch`` pages, writing dirty ones in
        page-id order so the write burst is (mostly) sequential.

        Victim preference: probationary FIFO first (single-touch scan
        pages), then the protected LRU; protected-list (sticky) pages in
        either segment are skipped on the first pass and reconsidered
        only when nothing else is evictable."""
        # Always clear a full batch of headroom: evicting one page at a
        # time would interleave every read with a write and destroy the
        # sequentiality of bulk operations.
        want = max(1, min(self.eviction_batch, self.num_cached))
        victims: list[Page] = []
        for allow_sticky in (False, True):
            for segment in (self._probation, self._frames):
                for page_id, page in segment.items():  # FIFO / LRU order
                    if page.pin_count > 0:
                        continue
                    if not allow_sticky and page_id in self._sticky:
                        continue
                    victims.append(page)
                    if len(victims) >= want:
                        break
                if len(victims) >= want:
                    break
            if victims:
                break
        if not victims:
            raise StorageError("buffer pool exhausted: every page is pinned")
        for victim in victims:
            self._frames.pop(victim.page_id, None)
            self._probation.pop(victim.page_id, None)
            self.stats.evictions += 1
            _OBS_EVICTIONS.value += 1
            victim.cached_obj = None
        for victim in sorted(
            (v for v in victims if v.dirty), key=lambda p: p.page_id
        ):
            self.disk.write_page(victim.page_id, bytes(victim.data))


class SharedBufferPool(BufferPool):
    """A :class:`BufferPool` whose public surface is guarded by one lock.

    The serving layer (:mod:`repro.server`) keeps several engines alive at
    once — one per pinned generation plus the refresh builder — and while
    the admission queue serializes *query execution* per engine, defence
    in depth demands the pool itself stay structurally sound if two
    threads ever reach it concurrently (an HTTP stats probe racing the
    executor, a future sharded executor).  Every mutating entry point
    takes the pool's re-entrant lock; the wrapped operations are exactly
    the single-threaded ones, so simulated I/O is byte-identical to a
    plain :class:`BufferPool` under any serial schedule.

    The lock is re-entrant because flush/eviction paths call back into
    sibling public methods (``flush_all`` -> ``flush_page``).
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_BUFFER_PAGES,
        eviction_batch: int = 64,
    ) -> None:
        super().__init__(disk, capacity=capacity, eviction_batch=eviction_batch)
        # Guards _frames/_probation/_sticky/stats across server threads.
        self._lock = threading.RLock()  # repro: guarded-by(self._lock)

    def fetch_page(self, page_id: int, scan: bool = False) -> Page:
        with self._lock:
            return super().fetch_page(page_id, scan=scan)

    def new_page(self) -> Page:
        with self._lock:
            return super().new_page()

    def unpin_page(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            super().unpin_page(page_id, dirty=dirty)

    def prefetch_run(self, page_ids: Sequence[int]) -> int:
        with self._lock:
            return super().prefetch_run(page_ids)

    def protect_page(self, page_id: int) -> None:
        with self._lock:
            super().protect_page(page_id)

    def unprotect_page(self, page_id: int) -> None:
        with self._lock:
            super().unprotect_page(page_id)

    def flush_page(self, page_id: int) -> None:
        with self._lock:
            super().flush_page(page_id)

    def flush_all(self) -> None:
        with self._lock:
            super().flush_all()

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def discard_page(self, page_id: int) -> None:
        with self._lock:
            super().discard_page(page_id)

    def page_version(self, page_id: int) -> int:
        with self._lock:
            return super().page_version(page_id)

    def cached_columns(self, page_id: int) -> Optional[object]:
        with self._lock:
            return super().cached_columns(page_id)

    def store_columns(self, page_id: int, obj: object, nbytes: int) -> None:
        with self._lock:
            super().store_columns(page_id, obj, nbytes)
