"""LRU buffer pool with hit-ratio statistics.

The paper argues that minimizing the number of Cubetrees "increases the
buffer hit ratio, i.e. the probability of having the top-level pages of the
trees in memory" (Sec. 2.4).  The pool therefore tracks hits and misses so
experiments and ablations can report that ratio directly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.constants import DEFAULT_BUFFER_PAGES
from repro.errors import StorageError
from repro.obs import get_registry
from repro.storage.disk import DiskManager
from repro.storage.page import Page

# Process-wide observability counters (all pools in one snapshot).
_REG = get_registry()
_OBS_HITS = _REG.counter("buffer.hits")
_OBS_MISSES = _REG.counter("buffer.misses")
_OBS_EVICTIONS = _REG.counter("buffer.evictions")
_OBS_NEW_PAGES = _REG.counter("buffer.new_pages")


@dataclass
class BufferStats:
    """Hit/miss counters for one buffer pool.

    ``new_pages`` (freshly allocated pages admitted without a disk read)
    is tracked separately from hits/misses: a cold pool that has only
    allocated pages has performed *zero* cache lookups, and its hit ratio
    must read as "no data" (0 of 0), not as 0% — the bench harness
    special-cases ``accesses == 0`` instead of dividing.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    new_pages: int = 0

    @property
    def accesses(self) -> int:
        """Total cache lookups (hits + misses; allocations excluded)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from memory.

        A pool with no lookups yet (cold, or only ``new_page``
        allocations) has no meaningful ratio; 0.0 is returned rather
        than dividing by zero.  Callers that must distinguish "cold"
        from "0% hits" should test :attr:`accesses` first.
        """
        accesses = self.accesses
        if accesses == 0:
            return 0.0
        return self.hits / accesses

    def copy(self) -> "BufferStats":
        """Independent snapshot (for before/after phase deltas)."""
        return BufferStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            new_pages=self.new_pages,
        )

    def __sub__(self, other: "BufferStats") -> "BufferStats":
        return BufferStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            new_pages=self.new_pages - other.new_pages,
        )


class BufferPool:
    """Caches :class:`Page` objects over a :class:`DiskManager` with LRU
    replacement.

    Pinned pages (``pin_count > 0``) are never evicted; callers must balance
    :meth:`fetch_page`/:meth:`new_page` with :meth:`unpin_page`.
    """

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_BUFFER_PAGES,
        eviction_batch: int = 64,
    ) -> None:
        """``eviction_batch`` pages are evicted together when the pool
        fills, with dirty victims written back in page-id order — the
        batched background-writer discipline that keeps bulk-load and
        merge output I/O sequential even while reads interleave."""
        if capacity < 1:
            raise ValueError("buffer pool needs capacity >= 1")
        if eviction_batch < 1:
            raise ValueError("eviction_batch must be >= 1")
        self.disk = disk
        self.capacity = capacity
        self.eviction_batch = eviction_batch
        self.stats = BufferStats()
        self._frames: "OrderedDict[int, Page]" = OrderedDict()

    # ------------------------------------------------------------------
    # page access
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: int) -> Page:
        """Return the page, reading it from disk on a miss.  Pins the page."""
        page = self._frames.get(page_id)
        if page is not None:
            self.stats.hits += 1
            _OBS_HITS.value += 1
            self._frames.move_to_end(page_id)
        else:
            self.stats.misses += 1
            _OBS_MISSES.value += 1
            data = self.disk.read_page(page_id)
            page = Page(page_id, data)
            self._admit(page)
        page.pin_count += 1
        return page

    def new_page(self) -> Page:
        """Allocate a fresh page on disk and return it pinned.

        The new page is *not* read from disk (it has no contents yet).
        """
        page_id = self.disk.allocate_page()
        page = Page(page_id)
        self._admit(page)
        page.pin_count += 1
        self.stats.new_pages += 1
        _OBS_NEW_PAGES.value += 1
        return page

    def unpin_page(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; optionally mark the page dirty."""
        page = self._frames.get(page_id)
        if page is None:
            raise StorageError(f"unpin of page {page_id} not in pool")
        if page.pin_count <= 0:
            raise StorageError(f"page {page_id} is not pinned")
        page.pin_count -= 1
        if dirty:
            page.dirty = True

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def flush_page(self, page_id: int) -> None:
        """Write one dirty page back to disk."""
        page = self._frames.get(page_id)
        if page is None:
            return
        if page.dirty:
            self.disk.write_page(page.page_id, bytes(page.data))
            page.dirty = False

    def flush_all(self) -> None:
        """Write every dirty page back to disk in page-id order (pages
        stay cached; ordering keeps the flush burst sequential)."""
        for page_id in sorted(self._frames):
            self.flush_page(page_id)

    def clear(self) -> None:
        """Flush everything and empty the pool (simulates a cold cache)."""
        self.flush_all()
        for page in self._frames.values():
            if page.pin_count > 0:
                raise StorageError(
                    f"cannot clear pool: page {page.page_id} is pinned"
                )
        self._frames.clear()

    def discard_page(self, page_id: int) -> None:
        """Drop a page from the pool *without* writing it back.

        Used when the page is being freed on disk (e.g. retiring an old
        Cubetree after a merge-pack), so flushing would be wasted work.
        """
        page = self._frames.pop(page_id, None)
        if page is not None and page.pin_count > 0:
            self._frames[page_id] = page
            raise StorageError(f"cannot discard pinned page {page_id}")

    # ------------------------------------------------------------------
    @property
    def num_cached(self) -> int:
        """Pages currently held in the pool."""
        return len(self._frames)

    def _admit(self, page: Page) -> None:
        if len(self._frames) >= self.capacity:
            self._evict_batch()
        self._frames[page.page_id] = page

    def _evict_batch(self) -> None:
        """Evict up to ``eviction_batch`` LRU pages, writing dirty ones in
        page-id order so the write burst is (mostly) sequential."""
        # Always clear a full batch of headroom: evicting one page at a
        # time would interleave every read with a write and destroy the
        # sequentiality of bulk operations.
        want = max(1, min(self.eviction_batch, len(self._frames)))
        victims: list[Page] = []
        for page_id, page in self._frames.items():  # LRU order
            if page.pin_count == 0:
                victims.append(page)
                if len(victims) >= want:
                    break
        if not victims:
            raise StorageError("buffer pool exhausted: every page is pinned")
        for victim in victims:
            del self._frames[victim.page_id]
            self.stats.evictions += 1
            _OBS_EVICTIONS.value += 1
            victim.cached_obj = None
        for victim in sorted(
            (v for v in victims if v.dirty), key=lambda p: p.page_id
        ):
            self.disk.write_page(victim.page_id, bytes(victim.data))
