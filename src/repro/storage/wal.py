"""A minimal write-ahead log for the conventional engine, plus the
crash-injection hook used by recovery tests.

The paper's conventional configuration pays the full transactional path of
the Informix server on every row it materializes or refreshes; the Cubetree
Datablade's bulk load and merge-pack are non-logged operations (rebuildable
from their sorted inputs).  This module models that asymmetry: the WAL
appends fixed-size records into log pages and charges the shared cost model
one *sequential* page write whenever a log page fills, plus a *random*
write (the head moves away from the log) on every commit that forces a
partial page.

Only the costing matters to the experiments, so record payloads are not
retained.

Crash injection
---------------
:class:`CrashPoint` is a reusable fault hook that simulates a process kill
(`kill -9`, power loss): once armed, it raises :class:`CrashError` after a
chosen number of operations.  The WAL calls it on every log-page write, and
:class:`~repro.storage.disk.DiskManager` calls it on every data-page write
(via its ``crash_point`` attribute), so tests can kill the system
mid-``merge_pack`` and assert that the create-new-then-swap discipline
leaves the pre-crash Cubetree forest intact (see
``tests/storage/test_wal_crash.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.obs import get_registry
from repro.storage.iomodel import IOCostModel

#: Bytes a row-level log record occupies (header + RID + before/after image
#: of a small aggregate row).
DEFAULT_RECORD_BYTES = 64

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_RECORDS = _REG.counter("wal.records")
_OBS_PAGES = _REG.counter("wal.pages_written")
_OBS_COMMITS = _REG.counter("wal.commits")


class CrashError(StorageError):
    """An injected crash: the simulated process died mid-operation.

    Raised by an armed :class:`CrashPoint`.  Nothing below the raise has
    executed — exactly like a kill — so recovery tests can check what the
    on-disk state alone supports.
    """


class CrashPoint:
    """Fault-injection hook: dies after a configurable number of hits.

    ``arm(after)`` lets the next ``after`` :meth:`hit` calls pass, then
    every subsequent call raises :class:`CrashError` until
    :meth:`disarm`.  A disarmed point is free (one attribute check at the
    caller), so production code paths can carry the hook permanently.
    """

    def __init__(self) -> None:
        self._countdown: Optional[int] = None
        self.fired = False

    @property
    def armed(self) -> bool:
        """True when a future :meth:`hit` will raise."""
        return self._countdown is not None

    def arm(self, after: int = 0) -> None:
        """Crash on the ``after``-th subsequent :meth:`hit` (0 = next)."""
        if after < 0:
            raise ValueError("after must be non-negative")
        self._countdown = after
        self.fired = False

    def disarm(self) -> None:
        """Stop injecting (e.g. after the simulated machine 'reboots')."""
        self._countdown = None

    def hit(self, context: str = "") -> None:
        """One potentially-fatal operation; raises when the countdown ends."""
        if self._countdown is None:
            return
        if self._countdown <= 0:
            self.fired = True
            suffix = f" during {context}" if context else ""
            raise CrashError(f"injected crash{suffix}")
        self._countdown -= 1


class WriteAheadLog:
    """Appends log records and prices the resulting page writes."""

    def __init__(
        self,
        cost_model: IOCostModel,
        record_bytes: int = DEFAULT_RECORD_BYTES,
        crash_point: Optional[CrashPoint] = None,
    ) -> None:
        if record_bytes < 1:
            raise ValueError("record_bytes must be >= 1")
        self.cost_model = cost_model
        self.record_bytes = record_bytes
        self.crash_point = crash_point
        self.records_logged = 0
        self.pages_written = 0
        self._bytes_in_page = 0

    def log_row_operation(self, count: int = 1) -> None:
        """Append ``count`` row-level records (insert/update/delete)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.records_logged += count
        _OBS_RECORDS.value += count
        self._bytes_in_page += count * self.record_bytes
        while self._bytes_in_page >= PAGE_SIZE:
            self._bytes_in_page -= PAGE_SIZE
            self._write_page(sequential=True)

    def commit(self) -> None:
        """Force the partial log page to disk (group-commit boundary).

        State is cleared only after the write succeeds: if an armed
        crash point kills the write, the partial page stays pending and a
        retried commit still forces (and prices) it, instead of silently
        dropping it.  The ``wal.commits`` counter moves only when the
        commit actually flushed something.
        """
        if self._bytes_in_page > 0:
            self._write_page(sequential=False)
            self._bytes_in_page = 0
            _OBS_COMMITS.value += 1

    def _write_page(self, sequential: bool) -> None:
        if self.crash_point is not None:
            self.crash_point.hit("wal page write")
        self.pages_written += 1
        _OBS_PAGES.value += 1
        if sequential:
            self.cost_model.stats.sequential_writes += 1
            self.cost_model.stats.simulated_ms += self.cost_model.sequential_ms
        else:
            self.cost_model.stats.random_writes += 1
            self.cost_model.stats.simulated_ms += self.cost_model.random_ms
