"""A minimal write-ahead log for the conventional engine.

The paper's conventional configuration pays the full transactional path of
the Informix server on every row it materializes or refreshes; the Cubetree
Datablade's bulk load and merge-pack are non-logged operations (rebuildable
from their sorted inputs).  This module models that asymmetry: the WAL
appends fixed-size records into log pages and charges the shared cost model
one *sequential* page write whenever a log page fills, plus a *random*
write (the head moves away from the log) on every commit that forces a
partial page.

Only the costing matters to the experiments, so record payloads are not
retained.
"""

from __future__ import annotations

from repro.constants import PAGE_SIZE
from repro.storage.iomodel import IOCostModel

#: Bytes a row-level log record occupies (header + RID + before/after image
#: of a small aggregate row).
DEFAULT_RECORD_BYTES = 64


class WriteAheadLog:
    """Appends log records and prices the resulting page writes."""

    def __init__(
        self,
        cost_model: IOCostModel,
        record_bytes: int = DEFAULT_RECORD_BYTES,
    ) -> None:
        if record_bytes < 1:
            raise ValueError("record_bytes must be >= 1")
        self.cost_model = cost_model
        self.record_bytes = record_bytes
        self.records_logged = 0
        self.pages_written = 0
        self._bytes_in_page = 0

    def log_row_operation(self, count: int = 1) -> None:
        """Append ``count`` row-level records (insert/update/delete)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.records_logged += count
        self._bytes_in_page += count * self.record_bytes
        while self._bytes_in_page >= PAGE_SIZE:
            self._bytes_in_page -= PAGE_SIZE
            self._write_page(sequential=True)

    def commit(self) -> None:
        """Force the partial log page to disk (group-commit boundary)."""
        if self._bytes_in_page > 0:
            self._bytes_in_page = 0
            self._write_page(sequential=False)

    def _write_page(self, sequential: bool) -> None:
        self.pages_written += 1
        if sequential:
            self.cost_model.stats.sequential_writes += 1
            self.cost_model.stats.simulated_ms += self.cost_model.sequential_ms
        else:
            self.cost_model.stats.random_writes += 1
            self.cost_model.stats.simulated_ms += self.cost_model.random_ms
