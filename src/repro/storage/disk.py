"""Simulated disk: page allocation, reads and writes with I/O accounting.

The disk can be purely in-memory (fast; default for tests) or backed by a
real file (used by storage-size experiments so "bytes on disk" is literal).
Either way, every access is priced by the shared :class:`IOCostModel`.
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, Optional

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.obs import get_registry
from repro.storage.iomodel import IOCostModel

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_ALLOCATED = _REG.counter("disk.pages_allocated")
_OBS_FREED = _REG.counter("disk.pages_freed")


class DiskManager:
    """Allocates pages and serves page-granular reads/writes.

    Parameters
    ----------
    cost_model:
        Shared I/O pricer.  A fresh one is created when omitted.
    path:
        When given, pages live in this file; otherwise in memory.

    The ``crash_point`` attribute may be set to a
    :class:`~repro.storage.wal.CrashPoint`; when armed, it kills the
    simulated process on a page write *before* anything is priced or
    stored, so recovery tests observe exactly the state a real crash
    would leave.
    """

    def __init__(
        self,
        cost_model: Optional[IOCostModel] = None,
        path: Optional[str] = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else IOCostModel()
        self.crash_point = None  # Optional[repro.storage.wal.CrashPoint]
        self._path = path
        self._next_page_id = 0
        self._freed: list[int] = []
        self._pages: Dict[int, bytes] = {}
        self._file = open(path, "w+b") if path is not None else None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate_page(self) -> int:
        """Reserve a page id (reusing freed pages first) and return it.

        Freed pages are reused lowest-id first, so a bulk writer that just
        retired a contiguous extent (e.g. merge-pack freeing the old tree)
        gets that extent back in ascending order and its writes stay
        sequential.
        """
        _OBS_ALLOCATED.value += 1
        if self._freed:
            return heapq.heappop(self._freed)
        page_id = self._next_page_id
        self._next_page_id += 1
        return page_id

    def allocate_run(self, count: int) -> list[int]:
        """Reserve ``count`` *contiguous* page ids.

        Bulk loaders use this so their writes are physically sequential,
        which is exactly the property the Cubetree packing algorithm
        exploits.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        _OBS_ALLOCATED.value += count
        start = self._next_page_id
        self._next_page_id += count
        return list(range(start, start + count))

    def free_page(self, page_id: int) -> None:
        """Return a page to the free list (its contents become undefined)."""
        self._check_allocated(page_id)
        _OBS_FREED.value += 1
        self._pages.pop(page_id, None)
        heapq.heappush(self._freed, page_id)

    @property
    def num_allocated(self) -> int:
        """Number of pages currently allocated (excludes freed pages)."""
        return self._next_page_id - len(self._freed)

    @property
    def bytes_allocated(self) -> int:
        """Bytes occupied by currently-allocated pages."""
        return self.num_allocated * PAGE_SIZE

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read_page(self, page_id: int) -> bytearray:
        """Read a page's bytes, pricing the access."""
        self._check_allocated(page_id)
        self.cost_model.record_read(page_id)
        if self._file is not None:
            self._file.seek(page_id * PAGE_SIZE)
            raw = self._file.read(PAGE_SIZE)
            if len(raw) < PAGE_SIZE:
                raw = raw.ljust(PAGE_SIZE, b"\x00")
            return bytearray(raw)
        raw = self._pages.get(page_id)
        if raw is None:
            return bytearray(PAGE_SIZE)
        return bytearray(raw)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write a full page of bytes, pricing the access."""
        if self.crash_point is not None:
            self.crash_point.hit(f"write of page {page_id}")
        self._check_allocated(page_id)
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"write_page needs exactly {PAGE_SIZE} bytes, got {len(data)}"
            )
        self.cost_model.record_write(page_id)
        if self._file is not None:
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(data)
        else:
            self._pages[page_id] = bytes(data)

    def close(self) -> None:
        """Release the backing file, if any."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def delete_backing_file(self) -> None:
        """Close and remove the backing file (no-op for in-memory disks)."""
        self.close()
        if self._path is not None and os.path.exists(self._path):
            os.remove(self._path)

    # ------------------------------------------------------------------
    # offline snapshots (checkpoint / restore; not priced by the cost
    # model — these model an out-of-band backup, not query-path I/O)
    # ------------------------------------------------------------------
    def dump_pages(self, path: str, crash_point=None) -> int:
        """Write every allocated page to ``path``; returns pages written.

        ``crash_point`` (a :class:`~repro.storage.wal.CrashPoint`) is hit
        once per page *before* it reaches the file, so recovery tests can
        kill the checkpoint at any point of the dump and observe exactly
        the prefix a real crash would leave.  The dump is fsynced before
        returning.
        """
        with open(path, "wb") as handle:
            for page_id in range(self._next_page_id):
                if crash_point is not None:
                    crash_point.hit(f"checkpoint dump of page {page_id}")
                if self._file is not None:
                    self._file.seek(page_id * PAGE_SIZE)
                    raw = self._file.read(PAGE_SIZE)
                    raw = raw.ljust(PAGE_SIZE, b"\x00")
                else:
                    raw = self._pages.get(page_id, bytes(PAGE_SIZE))
                handle.write(raw)
            handle.flush()
            os.fsync(handle.fileno())
        return self._next_page_id

    def allocation_state(self) -> dict:
        """JSON-serializable allocator state (for snapshots)."""
        return {
            "next_page_id": self._next_page_id,
            "freed": sorted(self._freed),
        }

    @classmethod
    def restore(
        cls,
        path: str,
        state: dict,
        cost_model: Optional[IOCostModel] = None,
    ) -> "DiskManager":
        """Rebuild an in-memory disk from a page dump + allocator state.

        The dump must hold exactly ``next_page_id`` full pages: a short
        file means a torn checkpoint, and restoring it would silently
        zero-fill whatever the crash cut off, so it raises instead.
        """
        disk = cls(cost_model=cost_model)
        disk._next_page_id = int(state["next_page_id"])
        disk._freed = [int(p) for p in state["freed"]]
        import heapq as _heapq

        _heapq.heapify(disk._freed)
        freed = set(disk._freed)
        with open(path, "rb") as handle:
            for page_id in range(disk._next_page_id):
                raw = handle.read(PAGE_SIZE)
                if len(raw) < PAGE_SIZE:
                    raise StorageError(
                        f"page dump {path!r} is truncated: page {page_id} "
                        f"of {disk._next_page_id} is incomplete "
                        f"({len(raw)} bytes)"
                    )
                if page_id not in freed:
                    disk._pages[page_id] = raw
        return disk

    # ------------------------------------------------------------------
    def _check_allocated(self, page_id: int) -> None:
        if not 0 <= page_id < self._next_page_id:
            raise StorageError(f"page {page_id} was never allocated")

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
