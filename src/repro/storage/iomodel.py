"""Simulated I/O cost model.

The paper's headline claims are storage-level: Cubetree loading and refresh
win because they issue *sequential* writes while the conventional engine's
B-tree maintenance and per-tuple view refresh issue *random* I/O.  On modern
hardware with small test datasets those effects vanish into the OS page
cache, so we price every page access explicitly:

* an access to the page *following* the previous access on the same device
  costs :data:`~repro.constants.SEQUENTIAL_IO_MS`;
* any other access costs :data:`~repro.constants.RANDOM_IO_MS`.

Both engines run on one shared model, so their simulated times are
comparable the same way wall-clock times were comparable inside one Informix
server in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import RANDOM_IO_MS, SEQUENTIAL_IO_MS
from repro.obs import get_registry

# Process-wide observability mirrors of the per-model counters (one unified
# snapshot across every disk in the process).  Updated with bare attribute
# increments so a page access costs two extra additions; the simulated
# costing itself never reads these.
_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_SEQ_READS = _REG.counter("io.reads.sequential")
_OBS_RND_READS = _REG.counter("io.reads.random")
_OBS_SEQ_WRITES = _REG.counter("io.writes.sequential")
_OBS_RND_WRITES = _REG.counter("io.writes.random")
_OBS_SIM_MS = _REG.counter("io.simulated_ms")
_OBS_OVERHEAD_MS = _REG.counter("io.overhead_ms")


@dataclass
class IOStats:
    """Mutable accumulator of I/O activity.

    Attributes are raw counters; :attr:`simulated_ms` is the total priced
    time.  Instances support subtraction so callers can snapshot the
    counters around an operation and report the delta.
    """

    sequential_reads: int = 0
    random_reads: int = 0
    sequential_writes: int = 0
    random_writes: int = 0
    simulated_ms: float = 0.0
    overhead_ms: float = 0.0

    @property
    def reads(self) -> int:
        """Total page reads."""
        return self.sequential_reads + self.random_reads

    @property
    def writes(self) -> int:
        """Total page writes."""
        return self.sequential_writes + self.random_writes

    @property
    def total_ios(self) -> int:
        """Total page accesses."""
        return self.reads + self.writes

    @property
    def total_ms(self) -> float:
        """Simulated I/O time plus per-operation engine overhead."""
        return self.simulated_ms + self.overhead_ms

    def copy(self) -> "IOStats":
        """Return an independent snapshot of the counters."""
        return IOStats(
            sequential_reads=self.sequential_reads,
            random_reads=self.random_reads,
            sequential_writes=self.sequential_writes,
            random_writes=self.random_writes,
            simulated_ms=self.simulated_ms,
            overhead_ms=self.overhead_ms,
        )

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            sequential_reads=self.sequential_reads - other.sequential_reads,
            random_reads=self.random_reads - other.random_reads,
            sequential_writes=self.sequential_writes - other.sequential_writes,
            random_writes=self.random_writes - other.random_writes,
            simulated_ms=self.simulated_ms - other.simulated_ms,
            overhead_ms=self.overhead_ms - other.overhead_ms,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IOStats(reads={self.reads} [{self.sequential_reads} seq / "
            f"{self.random_reads} rnd], writes={self.writes} "
            f"[{self.sequential_writes} seq / {self.random_writes} rnd], "
            f"simulated={self.simulated_ms:.2f} ms)"
        )


@dataclass
class IOCostModel:
    """Prices page accesses and tracks the device head position.

    Parameters
    ----------
    random_ms:
        Cost of a page access that requires a seek.
    sequential_ms:
        Cost of a page access adjacent to the previous one.
    """

    random_ms: float = RANDOM_IO_MS
    sequential_ms: float = SEQUENTIAL_IO_MS
    stats: IOStats = field(default_factory=IOStats)
    _head_position: int = field(default=-2, repr=False)

    def record_read(self, page_id: int) -> None:
        """Account one page read at ``page_id``."""
        if self._is_sequential(page_id):
            self.stats.sequential_reads += 1
            self.stats.simulated_ms += self.sequential_ms
            _OBS_SEQ_READS.value += 1
            _OBS_SIM_MS.value += self.sequential_ms
        else:
            self.stats.random_reads += 1
            self.stats.simulated_ms += self.random_ms
            _OBS_RND_READS.value += 1
            _OBS_SIM_MS.value += self.random_ms
        self._head_position = page_id

    def record_write(self, page_id: int) -> None:
        """Account one page write at ``page_id``."""
        if self._is_sequential(page_id):
            self.stats.sequential_writes += 1
            self.stats.simulated_ms += self.sequential_ms
            _OBS_SEQ_WRITES.value += 1
            _OBS_SIM_MS.value += self.sequential_ms
        else:
            self.stats.random_writes += 1
            self.stats.simulated_ms += self.random_ms
            _OBS_RND_WRITES.value += 1
            _OBS_SIM_MS.value += self.random_ms
        self._head_position = page_id

    def record_overhead(self, ms: float) -> None:
        """Account engine overhead that is not a page access.

        The conventional engine charges a small per-row-operation cost on
        its transactional insert/update path (SQL layer, locking, log-record
        construction) — the overhead a 1998 RDBMS paid on every row that a
        non-logged bulk loader avoids entirely.
        """
        self.stats.overhead_ms += ms
        _OBS_OVERHEAD_MS.value += ms

    def snapshot(self) -> IOStats:
        """Return a copy of the current counters (for before/after deltas)."""
        return self.stats.copy()

    def reset(self) -> None:
        """Zero the counters and forget the head position."""
        self.stats = IOStats()
        self._head_position = -2

    def _is_sequential(self, page_id: int) -> bool:
        return page_id == self._head_position + 1 or page_id == self._head_position
