"""Paged storage substrate shared by both storage engines.

The conventional relational engine and the Cubetree engine are both built on
this package so that their I/O behaviour (page counts, sequential/random mix,
simulated elapsed time, bytes on disk) is directly comparable — the same
comparison the paper makes by running both configurations inside one server.

Public surface:

* :class:`IOCostModel` / :class:`IOStats` — the simulated device.
* :class:`DiskManager` — page allocation, reads, writes, accounting.
* :class:`BufferPool` — LRU page cache with hit-ratio statistics.
* :class:`RecordCodec` — fixed-width record (de)serialization.
* :class:`HeapFile` — slotted-page record files with RIDs.
"""

from repro.storage.buffer import BufferPool
from repro.storage.codec import ColumnType, RecordCodec
from repro.storage.disk import DiskManager
from repro.storage.heap import RID, HeapFile
from repro.storage.iomodel import IOCostModel, IOStats
from repro.storage.page import Page

__all__ = [
    "BufferPool",
    "ColumnType",
    "DiskManager",
    "HeapFile",
    "IOCostModel",
    "IOStats",
    "Page",
    "RID",
    "RecordCodec",
]
