"""Blob storage: arbitrary byte strings spread across pages.

Used by structures whose payloads are not fixed-width records — e.g. the
compressed bitmaps of :mod:`repro.relational.bitmap`.  Each blob occupies
a contiguous run of pages (so reading one blob is sequential I/O) with its
length stored in the handle, not on the page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.storage.buffer import BufferPool


@dataclass(frozen=True)
class BlobHandle:
    """Where a blob lives: first page, page count, byte length."""

    first_page: int
    num_pages: int
    length: int


class BlobFile:
    """Append-only blob storage over a buffer pool."""

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        self.handles: List[BlobHandle] = []

    def append(self, payload: bytes) -> BlobHandle:
        """Store a byte string; returns its handle."""
        num_pages = max(1, (len(payload) + PAGE_SIZE - 1) // PAGE_SIZE)
        page_ids = self.pool.disk.allocate_run(num_pages)
        for i, page_id in enumerate(page_ids):
            chunk = payload[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            chunk = chunk.ljust(PAGE_SIZE, b"\x00")
            self.pool.disk.write_page(page_id, chunk)
        handle = BlobHandle(page_ids[0], num_pages, len(payload))
        self.handles.append(handle)
        return handle

    def read(self, handle: BlobHandle) -> bytes:
        """Read a blob back (page-granular, sequential).

        Blob pages are touched exactly once per read, so the whole run
        goes through the pool's scan path: read ahead into the
        probationary segment, then scan-fetch each page — a long bitmap
        read cannot evict the protected hot set.
        """
        if handle.num_pages < 1:
            raise StorageError("empty blob handle")
        if handle.length < 0 or handle.length > handle.num_pages * PAGE_SIZE:
            raise StorageError(
                f"blob handle claims {handle.length} bytes but spans only "
                f"{handle.num_pages} pages ({handle.num_pages * PAGE_SIZE} "
                f"bytes)"
            )
        page_ids = range(
            handle.first_page, handle.first_page + handle.num_pages
        )
        self.pool.prefetch_run(page_ids)
        out = bytearray()
        for page_id in page_ids:
            page = self.pool.fetch_page(page_id, scan=True)
            try:
                out.extend(page.data)
            finally:
                self.pool.unpin_page(page_id)
        return bytes(out[: handle.length])

    @property
    def num_pages(self) -> int:
        """Number of pages this structure occupies."""
        return sum(handle.num_pages for handle in self.handles)
