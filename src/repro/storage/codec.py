"""Fixed-width record serialization.

Tables and materialized views store tuples as fixed-width records so slotted
pages stay simple and record sizes are predictable — the property the
storage-size experiments rely on.  Supported column types:

* ``INT64`` — signed 8-byte integer (dimension keys, counts);
* ``FLOAT64`` — 8-byte IEEE double (aggregate values);
* ``STRING(n)`` — UTF-8, zero-padded to ``n`` bytes (dimension attributes).

The module also hosts the delta + varint column codec used by the
columnar Cubetree leaf format (v3): a sorted run of int64 coordinates is
stored as its first value followed by successive differences, each
zigzag-mapped to an unsigned value and LEB128-varint encoded.  Sorted
runs have tiny deltas, so most entries take one byte instead of eight.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from itertools import accumulate
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import InvalidRecordError


class ColumnType(Enum):
    """Physical column types understood by the codec."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"


@dataclass(frozen=True)
class ColumnSpec:
    """One column: a type plus, for strings, a byte width."""

    ctype: ColumnType
    width: int = 8

    def __post_init__(self) -> None:
        if self.ctype in (ColumnType.INT64, ColumnType.FLOAT64):
            if self.width != 8:
                raise InvalidRecordError(
                    f"{self.ctype.value} columns are always 8 bytes"
                )
        elif self.width < 1:
            raise InvalidRecordError("string columns need width >= 1")


def int_column() -> ColumnSpec:
    """Convenience constructor for an INT64 column."""
    return ColumnSpec(ColumnType.INT64)


def float_column() -> ColumnSpec:
    """Convenience constructor for a FLOAT64 column."""
    return ColumnSpec(ColumnType.FLOAT64)


def string_column(width: int) -> ColumnSpec:
    """Convenience constructor for a STRING(width) column."""
    return ColumnSpec(ColumnType.STRING, width)


class RecordCodec:
    """Encodes/decodes tuples against a fixed column layout."""

    def __init__(self, columns: Sequence[ColumnSpec]) -> None:
        if not columns:
            raise InvalidRecordError("a record needs at least one column")
        self.columns = tuple(columns)
        fmt = []
        converters: List[Callable[[object], object]] = []
        str_indexes: List[int] = []
        for i, col in enumerate(self.columns):
            if col.ctype is ColumnType.INT64:
                fmt.append("q")
                converters.append(int)  # type: ignore[arg-type]
            elif col.ctype is ColumnType.FLOAT64:
                fmt.append("d")
                converters.append(float)  # type: ignore[arg-type]
            else:
                fmt.append(f"{col.width}s")
                converters.append(_string_converter(col.width))
                str_indexes.append(i)
        self._body = "".join(fmt)
        self._struct = struct.Struct("<" + self._body)
        self._converters = tuple(converters)
        self._str_indexes = tuple(str_indexes)
        # Repeated / strided struct caches: the counts seen in practice
        # are page slot counts and bulk-load tails, so these stay small.
        self._repeated_cache: Dict[Tuple[int, int], struct.Struct] = {}  # repro: worker-local
        self._strided_item: Dict[int, struct.Struct] = {}

    @property
    def record_size(self) -> int:
        """Bytes per encoded record."""
        return self._struct.size

    # ------------------------------------------------------------------
    # single-record API
    # ------------------------------------------------------------------
    def encode(self, values: Sequence[object]) -> bytes:
        """Serialize one tuple of Python values."""
        prepared: List[object] = []
        self._extend_prepared(values, prepared)
        try:
            return self._struct.pack(*prepared)
        except struct.error as exc:  # out-of-range ints etc.
            raise InvalidRecordError(str(exc)) from exc

    def decode(self, raw: bytes) -> Tuple[object, ...]:
        """Deserialize one record back into a Python tuple."""
        if len(raw) != self._struct.size:
            raise InvalidRecordError(
                f"expected {self._struct.size} bytes, got {len(raw)}"
            )
        fields = self._struct.unpack(raw)
        if not self._str_indexes:
            return fields
        return self._decode_strings(fields)

    # ------------------------------------------------------------------
    # batched API
    # ------------------------------------------------------------------
    def encode_many(self, rows: Sequence[Sequence[object]]) -> bytes:
        """Serialize many tuples with a single row-repeated pack call."""
        prepared: List[object] = []
        extend = self._extend_prepared
        for row in rows:
            extend(row, prepared)
        try:
            return self._repeated(len(rows), 0).pack(*prepared)
        except struct.error as exc:
            raise InvalidRecordError(str(exc)) from exc

    def decode_many(self, raw: bytes) -> List[Tuple[object, ...]]:
        """Deserialize a contiguous run of records in one unpack pass."""
        size = self._struct.size
        if len(raw) % size:
            raise InvalidRecordError(
                f"buffer of {len(raw)} bytes is not a multiple of "
                f"record size {size}"
            )
        fields_iter = self._struct.iter_unpack(raw)
        if not self._str_indexes:
            return list(fields_iter)
        return [self._decode_strings(fields) for fields in fields_iter]

    def encode_strided(
        self, rows: Sequence[Sequence[object]], pad_before: int
    ) -> bytes:
        """Serialize rows with ``pad_before`` zero bytes ahead of each.

        This matches a slotted-page records region where every slot is a
        per-row header (zeros) followed by the record, letting a bulk
        loader fill the whole region with one pack call.
        """
        prepared: List[object] = []
        extend = self._extend_prepared
        for row in rows:
            extend(row, prepared)
        try:
            return self._repeated(len(rows), pad_before).pack(*prepared)
        except struct.error as exc:
            raise InvalidRecordError(str(exc)) from exc

    def decode_strided(
        self,
        buf: "bytes | bytearray | memoryview",
        count: int,
        pad_before: int,
        offset: int = 0,
    ) -> List[Tuple[object, ...]]:
        """Deserialize ``count`` slots of (pad + record) starting at offset."""
        if count <= 0:
            return []
        item = self._strided_item.get(pad_before)
        if item is None:
            pad = f"{pad_before}x" if pad_before else ""
            item = struct.Struct("<" + pad + self._body)
            self._strided_item[pad_before] = item
        end = offset + count * item.size
        if offset < 0 or end > len(buf):
            raise InvalidRecordError(
                f"{count} strided record(s) of {item.size} bytes at offset "
                f"{offset} overrun the {len(buf)}-byte buffer"
            )
        region = memoryview(buf)[offset:end]
        fields_iter = item.iter_unpack(region)
        if not self._str_indexes:
            return list(fields_iter)
        return [self._decode_strings(fields) for fields in fields_iter]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _extend_prepared(
        self, values: Sequence[object], out: List[object]
    ) -> None:
        if len(values) != len(self.columns):
            raise InvalidRecordError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        for conv, value in zip(self._converters, values):
            out.append(conv(value))

    def _decode_strings(
        self, fields: Tuple[object, ...]
    ) -> Tuple[object, ...]:
        row = list(fields)
        for i in self._str_indexes:
            row[i] = row[i].rstrip(b"\x00").decode("utf-8")  # type: ignore[union-attr]
        return tuple(row)

    def _repeated(self, count: int, pad_before: int) -> struct.Struct:
        key = (count, pad_before)
        cached = self._repeated_cache.get(key)
        if cached is None:
            pad = f"{pad_before}x" if pad_before else ""
            cached = struct.Struct("<" + (pad + self._body) * count)
            self._repeated_cache[key] = cached
        return cached


# ----------------------------------------------------------------------
# delta + varint column codec (columnar leaf format v3)
# ----------------------------------------------------------------------

# LEB128 varints for zigzagged int64 deltas never exceed 10 bytes; a
# longer continuation chain can only come from corruption.
_MAX_VARINT_BYTES = 10
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def zigzag_encode(value: int) -> int:
    """Map a signed int to an unsigned one with small absolute values first."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def zigzag_decode(encoded: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if encoded & 1:
        return -((encoded + 1) >> 1)
    return encoded >> 1


def varint_size(encoded: int) -> int:
    """Bytes a LEB128 varint of the (unsigned) value occupies."""
    size = 1
    while encoded >= 0x80:
        encoded >>= 7
        size += 1
    return size


def encode_delta_column(values: Sequence[int]) -> bytes:
    """Encode a column of int64s as zigzag-varint deltas.

    The first value is delta-coded against an implicit 0, so the stream
    is self-contained: ``decode_delta_column`` needs only the bytes and
    the element count.
    """
    out = bytearray()
    prev = 0
    for value in values:
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise InvalidRecordError(
                f"column value {value} exceeds int64 range"
            )
        encoded = zigzag_encode(value - prev)
        prev = value
        while encoded >= 0x80:
            out.append((encoded & 0x7F) | 0x80)
            encoded >>= 7
        out.append(encoded)
    return bytes(out)


def decode_delta_column(
    raw: "bytes | bytearray | memoryview",
    offset: int,
    length: int,
    count: int,
) -> Tuple[int, ...]:
    """Decode ``count`` int64s from a delta-varint stream of ``length`` bytes.

    Raises :class:`InvalidRecordError` if the stream is truncated, has
    trailing bytes, or contains an overlong varint — all symptoms of a
    corrupt columnar leaf.
    """
    end = offset + length
    if length < 0 or end > len(raw):
        raise InvalidRecordError(
            f"delta column claims {length} bytes at offset {offset}, "
            f"buffer holds {len(raw)}"
        )
    buf = bytes(raw[offset:end])
    if length == count:
        # Every varint is a single byte, i.e. every zigzagged delta is
        # < 0x80 — the common case for sorted coordinate runs.  One
        # C-speed pass turns bytes into deltas, one more prefix-sums
        # them; deltas of at most 64 can't push the running value out of
        # int64 range at leaf counts, so no per-value check is needed.
        if any(byte >= 0x80 for byte in buf):
            raise InvalidRecordError(
                f"truncated varint in delta column "
                f"(value {count - 1} of {count})"
            )
        return tuple(
            accumulate(
                -((byte + 1) >> 1) if byte & 1 else byte >> 1
                for byte in buf
            )
        )
    values: List[int] = []
    append = values.append
    pos = 0
    prev = 0
    try:
        for _ in range(count):
            byte = buf[pos]
            pos += 1
            if byte < 0x80:
                encoded = byte
            else:
                encoded = byte & 0x7F
                shift = 7
                while True:
                    byte = buf[pos]
                    pos += 1
                    encoded |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift >= 7 * _MAX_VARINT_BYTES:
                        raise InvalidRecordError(
                            "varint exceeds the 10-byte int64 bound"
                        )
            prev += -((encoded + 1) >> 1) if encoded & 1 else encoded >> 1
            if not _INT64_MIN <= prev <= _INT64_MAX:
                raise InvalidRecordError(
                    f"delta column decodes outside int64 range ({prev})"
                )
            append(prev)
    except IndexError:
        raise InvalidRecordError(
            f"truncated varint in delta column "
            f"(value {len(values)} of {count})"
        ) from None
    if pos != length:
        raise InvalidRecordError(
            f"delta column has {length - pos} trailing byte(s)"
        )
    return tuple(values)


def _string_converter(width: int) -> Callable[[object], bytes]:
    def convert(value: object) -> bytes:
        raw = str(value).encode("utf-8")
        if len(raw) > width:
            raise InvalidRecordError(
                f"string {value!r} exceeds column width {width}"
            )
        return raw

    return convert


class EntryCodec:
    """Batched pack/unpack of homogeneous fixed-width node entries.

    Tree pages (R-tree leaves/interiors, B+-tree nodes) store runs of
    identical little-endian items.  This helper turns the per-entry
    ``struct`` loops into one repeated-format call per page; instances are
    shared through :func:`entry_codec` so the compiled formats are built
    once per (layout, count).
    """

    __slots__ = ("item_fmt", "item_size", "_item", "_repeated")

    def __init__(self, item_fmt: str) -> None:
        self.item_fmt = item_fmt
        self.item_size = struct.calcsize("<" + item_fmt)
        self._item = struct.Struct("<" + item_fmt) if self.item_size else None
        self._repeated: Dict[int, struct.Struct] = {}

    def repeated(self, count: int) -> struct.Struct:
        """The compiled ``count``-times-repeated item format."""
        cached = self._repeated.get(count)
        if cached is None:
            cached = struct.Struct("<" + self.item_fmt * count)
            self._repeated[count] = cached
        return cached

    def pack_into(
        self,
        buf: bytearray,
        offset: int,
        flat_values: Iterable[object],
        count: int,
    ) -> int:
        """Pack ``count`` items' flattened values; returns bytes written."""
        if count and self.item_size:
            self.repeated(count).pack_into(buf, offset, *flat_values)
        return count * self.item_size

    def iter_unpack_from(
        self, raw: "bytes | memoryview", offset: int, count: int
    ) -> Iterator[Tuple[object, ...]]:
        """Yield ``count`` item tuples starting at ``offset``."""
        if count <= 0:
            return iter(())
        if self._item is None:  # zero-width entries (degenerate apex leaf)
            return iter([()] * count)
        end = offset + count * self.item_size
        if offset < 0 or end > len(raw):
            raise InvalidRecordError(
                f"{count} entries of {self.item_size} bytes at offset "
                f"{offset} overrun the {len(raw)}-byte buffer"
            )
        region = memoryview(raw)[offset:end]
        return self._item.iter_unpack(region)

    def unpack_flat_from(
        self, raw: "bytes | memoryview", offset: int, count: int
    ) -> Tuple[object, ...]:
        """Unpack ``count`` items as one flat field tuple."""
        if count <= 0 or self._item is None:
            return ()
        if offset < 0 or offset + count * self.item_size > len(raw):
            raise InvalidRecordError(
                f"{count} entries of {self.item_size} bytes at offset "
                f"{offset} overrun the {len(raw)}-byte buffer"
            )
        return self.repeated(count).unpack_from(raw, offset)


@lru_cache(maxsize=None)  # repro: guarded-by(functools.lru_cache internal lock)
def entry_codec(item_fmt: str) -> EntryCodec:
    """Shared :class:`EntryCodec` for a little-endian item format."""
    return EntryCodec(item_fmt)
