"""Fixed-width record serialization.

Tables and materialized views store tuples as fixed-width records so slotted
pages stay simple and record sizes are predictable — the property the
storage-size experiments rely on.  Supported column types:

* ``INT64`` — signed 8-byte integer (dimension keys, counts);
* ``FLOAT64`` — 8-byte IEEE double (aggregate values);
* ``STRING(n)`` — UTF-8, zero-padded to ``n`` bytes (dimension attributes).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Sequence, Tuple

from repro.errors import InvalidRecordError


class ColumnType(Enum):
    """Physical column types understood by the codec."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"


@dataclass(frozen=True)
class ColumnSpec:
    """One column: a type plus, for strings, a byte width."""

    ctype: ColumnType
    width: int = 8

    def __post_init__(self) -> None:
        if self.ctype in (ColumnType.INT64, ColumnType.FLOAT64):
            if self.width != 8:
                raise InvalidRecordError(
                    f"{self.ctype.value} columns are always 8 bytes"
                )
        elif self.width < 1:
            raise InvalidRecordError("string columns need width >= 1")


def int_column() -> ColumnSpec:
    """Convenience constructor for an INT64 column."""
    return ColumnSpec(ColumnType.INT64)


def float_column() -> ColumnSpec:
    """Convenience constructor for a FLOAT64 column."""
    return ColumnSpec(ColumnType.FLOAT64)


def string_column(width: int) -> ColumnSpec:
    """Convenience constructor for a STRING(width) column."""
    return ColumnSpec(ColumnType.STRING, width)


class RecordCodec:
    """Encodes/decodes tuples against a fixed column layout."""

    def __init__(self, columns: Sequence[ColumnSpec]) -> None:
        if not columns:
            raise InvalidRecordError("a record needs at least one column")
        self.columns = tuple(columns)
        fmt = ["<"]
        for col in self.columns:
            if col.ctype is ColumnType.INT64:
                fmt.append("q")
            elif col.ctype is ColumnType.FLOAT64:
                fmt.append("d")
            else:
                fmt.append(f"{col.width}s")
        self._struct = struct.Struct("".join(fmt))

    @property
    def record_size(self) -> int:
        """Bytes per encoded record."""
        return self._struct.size

    def encode(self, values: Sequence[object]) -> bytes:
        """Serialize one tuple of Python values."""
        if len(values) != len(self.columns):
            raise InvalidRecordError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        prepared = []
        for col, value in zip(self.columns, values):
            if col.ctype is ColumnType.STRING:
                raw = str(value).encode("utf-8")
                if len(raw) > col.width:
                    raise InvalidRecordError(
                        f"string {value!r} exceeds column width {col.width}"
                    )
                prepared.append(raw)
            elif col.ctype is ColumnType.INT64:
                prepared.append(int(value))  # type: ignore[arg-type]
            else:
                prepared.append(float(value))  # type: ignore[arg-type]
        try:
            return self._struct.pack(*prepared)
        except struct.error as exc:  # out-of-range ints etc.
            raise InvalidRecordError(str(exc)) from exc

    def decode(self, raw: bytes) -> Tuple[object, ...]:
        """Deserialize one record back into a Python tuple."""
        if len(raw) != self._struct.size:
            raise InvalidRecordError(
                f"expected {self._struct.size} bytes, got {len(raw)}"
            )
        fields = self._struct.unpack(raw)
        out = []
        for col, value in zip(self.columns, fields):
            if col.ctype is ColumnType.STRING:
                out.append(value.rstrip(b"\x00").decode("utf-8"))
            else:
                out.append(value)
        return tuple(out)
