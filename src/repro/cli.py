"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``
    Emit a deterministic TPC-D-style dataset as CSV (fact table plus
    dimensions) for external use.
``experiment``
    Run one of the paper's experiments (or ``all``).
``query``
    Build the paper's configuration at a given scale and answer an ad-hoc
    SQL slice query through the chosen engine.
``check``
    Build the paper's configuration and run the structural verifier
    ("cubetree fsck") over every packed tree; non-zero exit on any
    invariant violation.  With ``--checkpoint DIR`` it instead validates
    a saved database: manifest/CRC32 checks over the newest committed
    generation, then fsck over the reopened forest.
``bench``
    Run a named benchmark suite and write a schema-versioned JSON
    document (``BENCH_<suite>.json``); ``--compare`` diffs against a
    previous document and exits non-zero on a simulated-time regression.
``info``
    Print the library version and the simulated-device parameters.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional

from repro import __version__
from repro.constants import (
    PAGE_SIZE,
    RANDOM_IO_MS,
    ROW_OP_OVERHEAD_MS,
    SEQUENTIAL_IO_MS,
)

EXPERIMENTS = (
    "table5", "table6", "fig12", "fig13", "fig14", "table7",
    "storage", "baseline", "ablations", "all",
)


def _positive_int(raw: str) -> int:
    """argparse type for counts that must be whole numbers >= 1.

    Rejects ``0``, negatives and non-integers (``2.5``, ``two``) at
    parse time, so every subcommand taking ``--shards`` fails fast with
    a clear usage error (exit status 2) instead of misbehaving later.
    """
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer >= 1, got {raw!r}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cubetrees (SIGMOD 1998) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit TPC-D-style CSV data")
    gen.add_argument("--scale", type=float, default=0.001)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", default=".", help="output directory")
    gen.add_argument("--increment", type=float, default=None,
                     help="also emit an increment of this fraction")

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", choices=EXPERIMENTS)
    exp.add_argument("--scale", type=float, default=None)
    exp.add_argument("--queries", type=int, default=None)

    qry = sub.add_parser("query", help="answer an ad-hoc SQL slice query")
    qry.add_argument("sql", help='e.g. "select partkey, sum(quantity) '
                     'from F where suppkey = 3 group by partkey"; with '
                     '--batch, several queries separated by ";"')
    qry.add_argument("--scale", type=float, default=0.002)
    qry.add_argument("--seed", type=int, default=42)
    qry.add_argument("--engine", choices=("cubetree", "conventional"),
                     default="cubetree")
    qry.add_argument("--limit", type=int, default=20,
                     help="max rows to print")
    qry.add_argument("--batch", action="store_true",
                     help="split the SQL on ';' and answer all queries "
                     "as one batch over shared leaf-run passes "
                     "(cubetree engine only)")
    qry.add_argument("--shards", type=_positive_int, default=1,
                     help="partition the forest into N residue shards "
                     "and answer scatter-gather (cubetree engine only; "
                     "default 1 = unsharded)")

    chk = sub.add_parser(
        "check",
        help="verify Cubetree structural invariants (cubetree fsck)",
    )
    chk.add_argument("--scale", type=float, default=0.002)
    chk.add_argument("--seed", type=int, default=42)
    chk.add_argument(
        "--increment", type=float, default=None,
        help="also merge-pack an increment of this fraction, then "
        "re-verify the refreshed forest",
    )
    chk.add_argument(
        "--shards", type=_positive_int, default=1,
        help="build the configuration sharded into N residue "
        "partitions and additionally verify cross-shard residue "
        "disjointness (default 1 = unsharded)",
    )
    chk.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="instead of building a fresh configuration, validate a "
        "saved database: checksum-verify the newest committed "
        "generation, reopen it, and fsck the reconstructed forest",
    )
    chk.add_argument(
        "--flow", action="store_true",
        help="instead of building an engine, run the flow-aware "
        "static analyzer (pin-balance, crash-point-coverage, "
        "obs-isolation, shared-state) over the installed repro "
        "sources and print the concurrency-readiness inventory",
    )
    chk.add_argument(
        "--flow-baseline", default=None, metavar="JSON",
        help="accepted-findings baseline for --flow (default: "
        "tools/flow-baseline.json next to the source tree when "
        "present); only NEW findings fail the check",
    )

    from repro.obs.bench import SUITES

    ben = sub.add_parser(
        "bench",
        help="run a benchmark suite, emit JSON, optionally compare",
    )
    ben.add_argument("--suite", choices=SUITES, default="smoke")
    ben.add_argument("--out", default=None,
                     help="output path (default BENCH_<suite>.json)")
    ben.add_argument("--compare", default=None, metavar="OLD_JSON",
                     help="baseline document to diff against")
    ben.add_argument("--threshold", type=float, default=0.2,
                     help="simulated-ms regression fraction that fails "
                     "the comparison (default 0.2 = +20%%)")
    ben.add_argument("--report", action="store_true",
                     help="print a phase table to stdout")
    ben.add_argument("--scale", type=float, default=None)
    ben.add_argument("--seed", type=int, default=42)
    ben.add_argument("--queries", type=int, default=None,
                     help="queries per lattice node in query phases "
                     "(default: per-suite, 5 except 50 for queries)")

    srv = sub.add_parser(
        "serve",
        help="serve a generational database over HTTP with live refresh",
    )
    srv.add_argument("directory", help="database directory (gen-* layout)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8642)
    srv.add_argument("--retain", type=int, default=2,
                     help="committed generations to keep on disk "
                     "(pinned ones always survive; default 2)")
    srv.add_argument("--refresh-interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="refresh-thread poll interval; 0 disables the "
                     "thread (refresh only via POST /refresh)")
    srv.add_argument("--max-depth", type=int, default=1024,
                     help="admission queue bound; past it requests get "
                     "HTTP 503 (default 1024)")
    srv.add_argument("--bootstrap-scale", type=float, default=None,
                     metavar="SCALE",
                     help="when the directory has no committed "
                     "generation, build one at this TPC-D scale first")
    srv.add_argument("--seed", type=int, default=42,
                     help="generator seed for --bootstrap-scale")
    srv.add_argument("--shards", type=_positive_int, default=1,
                     help="with --bootstrap-scale, build the database "
                     "sharded into N residue partitions (an existing "
                     "database keeps its on-disk layout; default 1)")

    sub.add_parser("info", help="print version and device parameters")
    return parser


# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write TPC-D-style CSV files."""
    import os

    from repro.warehouse.tpcd import TPCDGenerator

    generator = TPCDGenerator(scale_factor=args.scale, seed=args.seed)
    data = generator.generate()
    os.makedirs(args.out, exist_ok=True)

    fact_path = os.path.join(args.out, "lineitem.csv")
    with open(fact_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(data.schema.fact_columns)
        writer.writerows(data.facts)
    print(f"wrote {len(data.facts)} fact rows to {fact_path}")

    for fact_key, dim in data.schema.dimensions.items():
        path = os.path.join(args.out, f"{dim.name}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(dim.attributes)
            writer.writerows(dim.rows)
        print(f"wrote {len(dim)} {dim.name} rows to {path}")

    if args.increment:
        inc = generator.generate_increment(args.increment)
        path = os.path.join(args.out, "increment.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(data.schema.fact_columns)
            writer.writerows(inc)
        print(f"wrote {len(inc)} increment rows to {path}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """``repro experiment``: run one (or all) paper experiments."""
    from dataclasses import replace

    from repro.experiments import (
        ablations,
        baseline_onthefly,
        fig12_queries,
        fig13_throughput,
        fig14_scalability,
        storage_breakdown,
        table5_mapping,
        table6_loading,
        table7_updates,
    )
    from repro.experiments.common import ExperimentConfig

    config = ExperimentConfig()
    if args.scale is not None:
        config = replace(config, scale_factor=args.scale)
    if args.queries is not None:
        config = replace(config, queries_per_node=args.queries)

    modules = {
        "table5": table5_mapping,
        "table6": table6_loading,
        "fig12": fig12_queries,
        "fig13": fig13_throughput,
        "fig14": fig14_scalability,
        "table7": table7_updates,
        "storage": storage_breakdown,
        "baseline": baseline_onthefly,
        "ablations": ablations,
    }
    if args.name == "all":
        for module in modules.values():
            module.run(config)
    else:
        modules[args.name].run(config)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: answer an ad-hoc SQL slice query."""
    from repro.experiments.common import (
        build_conventional_engine,
        build_cubetree_engine,
        build_sharded_engine,
        ExperimentConfig,
    )
    from repro.sql import parse_query
    from repro.warehouse.tpcd import TPCDGenerator

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 and args.engine != "cubetree":
        print("error: --shards requires --engine cubetree",
              file=sys.stderr)
        return 2

    generator = TPCDGenerator(scale_factor=args.scale, seed=args.seed)
    data = generator.generate()
    config = ExperimentConfig(scale_factor=args.scale, seed=args.seed)
    if args.engine != "cubetree":
        engine, _ = build_conventional_engine(config, data)
    elif args.shards > 1:
        engine, _ = build_sharded_engine(config, data, shards=args.shards)
    else:
        engine, _ = build_cubetree_engine(config, data)

    if args.batch:
        if args.engine != "cubetree":
            print("error: --batch requires --engine cubetree",
                  file=sys.stderr)
            return 2
        statements = [s.strip() for s in args.sql.split(";") if s.strip()]
        queries = [parse_query(s, data.schema) for s in statements]
        batch = engine.query_batch(queries)
        for i, result in enumerate(batch.results):
            print(f"[{i}] plan: {result.plan}")
            for row in result.rows[: args.limit]:
                print("  " + "\t".join(str(v) for v in row))
            if len(result.rows) > args.limit:
                print(f"  ... {len(result.rows) - args.limit} more rows")
        print(f"batch: {len(batch)} queries, {batch.batched} via shared "
              f"passes ({batch.groups} group(s))")
        print(f"simulated I/O: {batch.io.total_ms:.1f} ms "
              f"({batch.io.total_ios} page accesses)")
        _print_shard_routing(engine, args.shards)
        return 0

    query = parse_query(args.sql, data.schema)
    result = engine.query(query)
    print(f"plan: {result.plan}")
    print(f"simulated I/O: {result.io.total_ms:.1f} ms "
          f"({result.io.total_ios} page accesses)")
    for row in result.rows[: args.limit]:
        print("  " + "\t".join(str(v) for v in row))
    if len(result.rows) > args.limit:
        print(f"  ... {len(result.rows) - args.limit} more rows")
    _print_shard_routing(engine, args.shards)
    return 0


def _print_shard_routing(engine: object, shards: int) -> None:
    """After a sharded query, show which shards the router targeted."""
    if shards <= 1 or not hasattr(engine, "shard_stats"):
        return
    routed = [s["routed_queries"] for s in engine.shard_stats()]
    touched = [i for i, count in enumerate(routed) if count]
    print(f"shards touched: {touched} of {shards} "
          f"(per-shard routed counts {routed})")


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: fsck the paper configuration's Cubetree forest."""
    from repro.analysis.fsck import check_checkpoint, check_database
    from repro.experiments.common import (
        ExperimentConfig,
        build_cubetree_engine,
        build_sharded_engine,
    )
    from repro.warehouse.tpcd import TPCDGenerator

    if args.flow:
        return _check_flow(args)

    if args.checkpoint is not None:
        from repro.core.persistence import verify_checkpoint

        print(verify_checkpoint(args.checkpoint).format())
        report = check_checkpoint(args.checkpoint)
        print(report.format())
        return 0 if report.ok else 1

    generator = TPCDGenerator(scale_factor=args.scale, seed=args.seed)
    data = generator.generate()
    config = ExperimentConfig(scale_factor=args.scale, seed=args.seed)
    if args.shards > 1:
        engine, _ = build_sharded_engine(config, data, shards=args.shards)
        print(f"loaded {len(data.facts)} fact rows into "
              f"{args.shards} shard(s)")
    else:
        engine, _ = build_cubetree_engine(config, data)
        print(f"loaded {len(data.facts)} fact rows into "
              f"{engine.forest.num_trees if engine.forest else 0} "
              f"cubetree(s)")
    report = check_database(engine)
    print(report.format())

    if args.increment is not None:
        delta = generator.generate_increment(args.increment)
        engine.update(delta)
        print(f"merge-packed {len(delta)} increment rows")
        refreshed = check_database(engine)
        print(refreshed.format())
        report.merge(refreshed)
    return 0 if report.ok else 1


def _check_flow(args: argparse.Namespace) -> int:
    """``repro check --flow``: flow-aware invariant analysis."""
    import os

    import repro
    from repro.analysis.flowrules import (
        analyze_paths,
        apply_baseline,
        format_inventory,
        load_baseline,
    )

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    report = analyze_paths([package_dir])

    baseline_path = args.flow_baseline
    if baseline_path is None:
        candidate = os.path.join(
            os.path.dirname(os.path.dirname(package_dir)),
            "tools",
            "flow-baseline.json",
        )
        if os.path.exists(candidate):
            baseline_path = candidate
    suppressed = 0
    findings = report.findings
    if baseline_path is not None:
        findings, suppressed = apply_baseline(
            findings, load_baseline(baseline_path)
        )

    for finding in findings:
        print(finding.format())
    print(format_inventory(report.inventory))
    print(
        f"flow check: {len(findings)} new finding(s), "
        f"{suppressed} baselined"
    )
    return 1 if findings else 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run a suite, write JSON, optionally compare."""
    import json

    from repro.obs.bench import (
        compare,
        format_report,
        load_result,
        run_suite,
    )

    result = run_suite(
        args.suite,
        scale=args.scale,
        seed=args.seed,
        queries_per_node=args.queries,
    )

    out_path = args.out or f"BENCH_{args.suite}.json"
    with open(out_path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    if args.report:
        print(format_report(result))

    if args.compare:
        baseline = load_result(args.compare)
        regressions = compare(baseline, result, threshold=args.threshold)
        if regressions:
            print(f"REGRESSION vs {args.compare} "
                  f"(threshold +{args.threshold:.0%}):")
            for reg in regressions:
                print(
                    f"  {reg['phase']}: "
                    f"{reg['old_simulated_ms']:.1f} ms -> "
                    f"{reg['new_simulated_ms']:.1f} ms "
                    f"({reg['ratio']:.2f}x)"
                )
            return 1
        print(f"no regression vs {args.compare} "
              f"(threshold +{args.threshold:.0%})")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: HTTP serving with snapshot-isolated refresh."""
    from repro.core.persistence import newest_committed_number
    from repro.server import (
        CubetreeServer,
        ServerConfig,
        bootstrap_database,
        make_http_server,
    )

    if newest_committed_number(args.directory) is None:
        if args.bootstrap_scale is None:
            print(
                f"error: no committed generation in {args.directory!r}; "
                f"pass --bootstrap-scale to build one",
            )
            return 1
        report = bootstrap_database(
            args.directory,
            scale=args.bootstrap_scale,
            seed=args.seed,
            retain=args.retain,
            shards=args.shards,
        )
        print(
            f"bootstrapped generation {report.generation}: "
            f"{report.fact_rows} facts, {report.view_rows} view rows"
            + (f", {args.shards} shards" if args.shards > 1 else "")
        )

    config = ServerConfig(
        retain=args.retain,
        max_admission_depth=args.max_depth,
        refresh_interval=(
            args.refresh_interval if args.refresh_interval > 0 else None
        ),
    )
    server = CubetreeServer(args.directory, config).start()
    httpd = make_http_server(server, host=args.host, port=args.port)
    host, port = httpd.server_address[:2]
    print(
        f"serving generation {server.manager.current_number} of "
        f"{args.directory} on http://{host}:{port} (Ctrl-C to stop)"
    )
    shard_stats = server.shard_stats()
    if shard_stats:
        print(f"sharded layout: {len(shard_stats)} shard(s)")
        for entry in shard_stats:
            print(
                f"  shard {entry['shard']}: {entry['pages']} pages, "
                f"{entry['rows']} rows"
            )
    from repro.storage.buffer import column_cache_capacity

    cache_pages = column_cache_capacity()
    print(
        f"decoded-column cache: {cache_pages} leaf(s)"
        if cache_pages > 0
        else "decoded-column cache: disabled"
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        httpd.shutdown()
        httpd.server_close()
        server.close()
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    """``repro info``: print version and device parameters."""
    print(f"repro {__version__}")
    print(f"page size:           {PAGE_SIZE} bytes")
    print(f"random page access:  {RANDOM_IO_MS} ms")
    print(f"sequential access:   {SEQUENTIAL_IO_MS} ms")
    print(f"row-op overhead:     {ROW_OP_OVERHEAD_MS} ms "
          f"(conventional engine only)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "experiment": cmd_experiment,
        "query": cmd_query,
        "check": cmd_check,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "info": cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
