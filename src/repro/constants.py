"""Global constants for the storage substrate and cost model.

The values below parameterize the simulated disk that both storage engines
(the conventional relational engine and the Cubetree engine) share.  They can
be overridden per :class:`repro.storage.iomodel.IOCostModel` instance; the
module-level defaults exist so every experiment uses the same device unless a
bench explicitly varies them.
"""

#: Size of a disk page in bytes.  Every on-disk structure (heap files,
#: B+-trees, Cubetrees) is built out of pages of this size.
PAGE_SIZE = 4096

#: Default number of pages the buffer pool may hold in memory.  The paper's
#: testbed had 32 MB of RAM; 2048 * 4 KiB = 8 MiB keeps the same
#: "buffer is much smaller than the data" regime at our reduced scale.
DEFAULT_BUFFER_PAGES = 2048

#: Default entry capacity of the buffer pool's decoded-column side-cache
#: (one entry = one decoded columnar leaf; ``REPRO_COLUMN_CACHE_PAGES``
#: overrides, 0 disables).  Purely an in-memory CPU optimization — the
#: cache holds *decoded* objects, so it never changes which pages are
#: fetched or the simulated I/O they cost.
DEFAULT_COLUMN_CACHE_PAGES = 256

#: Simulated cost of a random page access (seek + rotational delay +
#: transfer), in milliseconds.  Late-90s commodity disk (~8 ms average
#: positioning time).
RANDOM_IO_MS = 8.0

#: Simulated cost of a sequential page access (transfer only), in
#: milliseconds: a 4 KiB page at the ~5 MB/s media rate of the paper's
#: era.  The ~10:1 random/sequential ratio is what makes the paper's
#: trade-offs (clustered access vs. scans vs. scattered fetches) land
#: where they did on the original hardware.
SEQUENTIAL_IO_MS = 0.8

#: Per-row-operation overhead (ms) charged on the conventional engine's
#: transactional insert/update path: SQL layer, locking, log-record
#: construction.  A 1998 RDBMS sustained on the order of a few thousand
#: row operations per second on the paper's hardware; the Cubetree
#: Datablade's non-logged bulk operations avoid this cost entirely.
#: 0.2 ms/row (~5000 rows/s) reproduces Table 6's ~16:1 load ratio.
ROW_OP_OVERHEAD_MS = 0.2

#: Per-row storage overhead (bytes) in heap-file slots: the row header a
#: transactional server keeps (row id, null bitmap, transaction info).
#: The packed Cubetree leaves carry no per-row header, which is part of
#: the paper's 51% storage saving.
ROW_HEADER_BYTES = 8

#: Number of bytes used for every integer key / coordinate on disk.
KEY_BYTES = 8

#: Number of bytes used for every aggregate value on disk (float64).
VALUE_BYTES = 8
