"""Materialized views on relational storage (the conventional organization).

A view is a summary table: one row per group, holding the group's attribute
values plus mergeable aggregate *states*.  Indexes are B+-trees whose keys
are attribute concatenations, exactly the paper's ``I{a,b,c}`` notation.

Two maintenance strategies are provided, matching Table 7 of the paper:

* :meth:`MaterializedView.apply_delta` — per-tuple incremental refresh:
  look up each delta group (via an index when one matches), update in
  place, or insert a new row into the table *and every index*.  This is
  the path the paper shows failing its 24-hour window.
* recomputation — drop and rebuild from scratch (callers simply
  materialize a fresh view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.btree.bulk import bulk_load_btree
from repro.btree.tree import BPlusTree
from repro.errors import SchemaError, UpdateTimeoutError
from repro.relational.executor import AggFunc, AggSpec, combine_states, state_width
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.storage.buffer import BufferPool
from repro.storage.codec import float_column, int_column
from repro.storage.iomodel import IOCostModel

Row = Tuple[object, ...]


@dataclass(frozen=True)
class ViewDefinition:
    """Logical definition of an aggregate view.

    Parameters
    ----------
    name:
        View name, e.g. ``"V_partkey_suppkey"``.
    group_by:
        Grouping attributes (the *projection list* of the paper); their
        order defines the coordinate order under the valid mapping.
    aggregates:
        Aggregate columns.  Defaults to ``sum(quantity)``.
    """

    name: str
    group_by: Tuple[str, ...]
    aggregates: Tuple[AggSpec, ...] = (AggSpec(AggFunc.SUM, "quantity"),)

    def __post_init__(self) -> None:
        if len(set(self.group_by)) != len(self.group_by):
            raise SchemaError(f"view {self.name!r}: duplicate group-by attrs")
        if not self.aggregates:
            raise SchemaError(f"view {self.name!r}: needs >= 1 aggregate")

    @property
    def arity(self) -> int:
        """|V| — the number of grouping attributes."""
        return len(self.group_by)

    @property
    def state_widths(self) -> Tuple[int, ...]:
        """Stored state values per aggregate (AVG keeps two)."""
        return tuple(state_width(spec.func) for spec in self.aggregates)

    @property
    def total_state_width(self) -> int:
        """Total stored state columns per row."""
        return sum(self.state_widths)

    def state_slices(self) -> Tuple[Tuple[AggFunc, slice], ...]:
        """Where each aggregate's state lives within a stored view row."""
        out: List[Tuple[AggFunc, slice]] = []
        offset = self.arity
        for spec, width in zip(self.aggregates, self.state_widths):
            out.append((spec.func, slice(offset, offset + width)))
            offset += width
        return tuple(out)

    def schema(self) -> TableSchema:
        """Physical schema: int64 group columns + float64 state columns."""
        columns: List[Tuple[str, object]] = [
            (attr, int_column()) for attr in self.group_by
        ]
        for spec, width in zip(self.aggregates, self.state_widths):
            base = f"{spec.func.value}_{spec.attribute or 'star'}"
            if width == 1:
                columns.append((base, float_column()))
            else:
                columns.append((f"{base}_sum", float_column()))
                columns.append((f"{base}_count", float_column()))
        return TableSchema(self.name, columns)  # type: ignore[arg-type]

    def describe(self) -> str:
        """SQL-ish rendering, e.g. for DESIGN/EXPERIMENTS listings."""
        aggs = ", ".join(str(a) for a in self.aggregates)
        if self.group_by:
            cols = ", ".join(self.group_by)
            return (
                f"select {cols}, {aggs} from F group by {cols}"
            )
        return f"select {aggs} from F"


class MaterializedView:
    """A view definition bound to relational storage plus its B-tree indexes."""

    def __init__(self, pool: BufferPool, definition: ViewDefinition) -> None:
        self.pool = pool
        self.definition = definition
        self.table = Table(pool, definition.schema())
        #: index search keys (attribute tuples) -> B+-tree
        self.indexes: Dict[Tuple[str, ...], BPlusTree] = {}

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(self, state_rows: Sequence[Row]) -> None:
        """Bulk-load aggregated rows (group values + states) into the table."""
        self.table.bulk_append(state_rows)

    def build_index(self, key_attrs: Sequence[str]) -> BPlusTree:
        """Create a B+-tree on the concatenation of ``key_attrs``.

        The index is bulk-loaded bottom-up from sorted (key, RID) pairs —
        the fastest build the conventional configuration gets.
        """
        key_attrs = tuple(key_attrs)
        idxs = self.definition_schema_indexes(key_attrs)
        entries = [
            (tuple(int(row[i]) for i in idxs), rid)  # type: ignore[arg-type]
            for rid, row in self.table.scan()
        ]
        entries.sort(key=lambda e: e[0])
        tree = bulk_load_btree(self.pool, len(key_attrs), entries)
        self.indexes[key_attrs] = tree
        return tree

    def definition_schema_indexes(
        self, attrs: Sequence[str]
    ) -> Tuple[int, ...]:
        """Column positions of the given attributes in stored rows."""
        return self.table.schema.indexes_of(attrs)

    # ------------------------------------------------------------------
    # incremental maintenance (the slow conventional path)
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        delta_rows: Iterable[Row],
        cost_model: Optional[IOCostModel] = None,
        deadline_ms: Optional[float] = None,
        wal=None,
        per_row_overhead_ms: float = 0.0,
    ) -> Tuple[int, int]:
        """Per-tuple refresh: upsert each delta group row.

        For every delta row the engine must *look up* the group in the view
        (paper Sec. 3.4), update the aggregate in place if present, or
        insert a new row and maintain every index.  When ``deadline_ms`` is
        given, the run aborts with :class:`UpdateTimeoutError` once the
        cost model's simulated time exceeds the deadline — this reproduces
        the paper's ">24 hours" timeout row.

        Returns ``(updated, inserted)`` row counts.
        """
        arity = self.definition.arity
        slices = self.definition.state_slices()
        full_key = self.definition.group_by
        lookup = self.indexes.get(full_key)
        if lookup is None:
            # Fall back to any index whose key is a permutation of the
            # group attributes (still a unique lookup).
            for attrs, tree in self.indexes.items():
                if set(attrs) == set(full_key) and len(attrs) == arity:
                    full_key = attrs
                    lookup = tree
                    break
        start_ms = cost_model.stats.total_ms if cost_model else 0.0

        updated = 0
        inserted = 0
        for row in delta_rows:
            if wal is not None:
                wal.log_row_operation()
            if cost_model is not None and per_row_overhead_ms:
                cost_model.record_overhead(per_row_overhead_ms)
            if cost_model is not None and deadline_ms is not None:
                elapsed = cost_model.stats.total_ms - start_ms
                if elapsed > deadline_ms:
                    raise UpdateTimeoutError(
                        f"view {self.definition.name!r}: incremental update "
                        f"exceeded {deadline_ms:.0f} ms of simulated I/O "
                        f"after {updated + inserted} rows"
                    )
            group = tuple(row[:arity])
            rid = None
            if lookup is not None:
                key = tuple(
                    int(row[self.table.schema.index_of(a)])  # type: ignore[arg-type]
                    for a in full_key
                )
                rid = lookup.search_one(key)
            else:
                for cand_rid, cand in self.table.scan():
                    if tuple(cand[:arity]) == group:
                        rid = cand_rid
                        break
            if rid is not None:
                old = self.table.fetch(rid)
                merged: List[object] = list(group)
                for (func, state_slice) in slices:
                    combined = combine_states(
                        func,
                        tuple(old[state_slice]),  # type: ignore[arg-type]
                        tuple(row[state_slice]),  # type: ignore[arg-type]
                    )
                    merged.extend(combined)
                self.table.update(rid, tuple(merged))
                updated += 1
            else:
                new_rid = self.table.insert(row)
                for attrs, tree in self.indexes.items():
                    idxs = self.table.schema.indexes_of(attrs)
                    tree.insert(
                        tuple(int(row[i]) for i in idxs),  # type: ignore[arg-type]
                        new_rid,
                    )
                inserted += 1
        return updated, inserted

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.table)

    @property
    def data_pages(self) -> int:
        """Pages of the summary table itself."""
        return self.table.num_pages

    @property
    def index_pages(self) -> int:
        """Pages of all B-tree indexes on this view."""
        return sum(tree.num_pages for tree in self.indexes.values())
