"""Predicates over rows.

Predicates are written against attribute *names* and compiled against a
schema into positional checkers, so the executor never does per-row name
lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from repro.relational.schema import TableSchema

Row = Tuple[object, ...]
RowPredicate = Callable[[Row], bool]


class Predicate:
    """Base class: something that compiles to a row checker."""

    def compile(self, schema: TableSchema) -> RowPredicate:
        """Compile to a positional row checker for the given schema."""
        raise NotImplementedError

    def attributes(self) -> Tuple[str, ...]:
        """Attributes the predicate constrains (for planning)."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches everything."""

    def compile(self, schema: TableSchema) -> RowPredicate:
        """Compile to a positional row checker for the given schema."""
        return lambda _row: True

    def attributes(self) -> Tuple[str, ...]:
        """Attributes this predicate constrains (for planning)."""
        return ()


@dataclass(frozen=True)
class Equals(Predicate):
    """``attribute = value`` — the paper's slice-query predicate form."""

    attribute: str
    value: object

    def compile(self, schema: TableSchema) -> RowPredicate:
        """Compile to a positional row checker for the given schema."""
        idx = schema.index_of(self.attribute)
        value = self.value
        return lambda row: row[idx] == value

    def attributes(self) -> Tuple[str, ...]:
        """Attributes this predicate constrains (for planning)."""
        return (self.attribute,)


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= attribute <= high`` (closed range)."""

    attribute: str
    low: object
    high: object

    def compile(self, schema: TableSchema) -> RowPredicate:
        """Compile to a positional row checker for the given schema."""
        idx = schema.index_of(self.attribute)
        low, high = self.low, self.high
        return lambda row: low <= row[idx] <= high  # type: ignore[operator]

    def attributes(self) -> Tuple[str, ...]:
        """Attributes this predicate constrains (for planning)."""
        return (self.attribute,)


class And(Predicate):
    """Conjunction of predicates."""

    def __init__(self, *parts: Predicate) -> None:
        self.parts: Tuple[Predicate, ...] = tuple(parts)

    def compile(self, schema: TableSchema) -> RowPredicate:
        """Compile to a positional row checker for the given schema."""
        checkers = [p.compile(schema) for p in self.parts]
        return lambda row: all(check(row) for check in checkers)

    def attributes(self) -> Tuple[str, ...]:
        """Attributes this predicate constrains (for planning)."""
        out: list[str] = []
        for part in self.parts:
            out.extend(part.attributes())
        return tuple(out)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"And{self.parts!r}"


def equals_conjunction(bindings: Sequence[Tuple[str, object]]) -> Predicate:
    """Build the slice-query predicate: a conjunction of equalities."""
    if not bindings:
        return TruePredicate()
    if len(bindings) == 1:
        attr, value = bindings[0]
        return Equals(attr, value)
    return And(*(Equals(attr, value) for attr, value in bindings))
