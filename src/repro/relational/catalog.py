"""Catalog: name -> table / materialized view registry."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CatalogError
from repro.relational.table import Table
from repro.relational.view import MaterializedView


class Catalog:
    """Tracks the tables and materialized views of one database."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, MaterializedView] = {}

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def register_table(self, table: Table) -> None:
        """Add a table; duplicate names raise CatalogError."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """True when the table exists."""
        return name in self._tables

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]

    def table_names(self) -> List[str]:
        """Sorted table names."""
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def register_view(self, view: MaterializedView) -> None:
        """Add a materialized view; duplicates raise CatalogError."""
        name = view.definition.name
        if name in self._views:
            raise CatalogError(f"view {name!r} already exists")
        self._views[name] = view

    def view(self, name: str) -> MaterializedView:
        """Look a materialized view up by name."""
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"unknown view {name!r}") from None

    def has_view(self, name: str) -> bool:
        """True when the view exists."""
        return name in self._views

    def drop_view(self, name: str) -> None:
        """Remove a view from the catalog."""
        if name not in self._views:
            raise CatalogError(f"unknown view {name!r}")
        del self._views[name]

    def view_names(self) -> List[str]:
        """Sorted view names."""
        return sorted(self._views)

    def views(self) -> List[MaterializedView]:
        """Every materialized view, sorted by name."""
        return [self._views[name] for name in sorted(self._views)]
