"""A miniature relational storage engine — the paper's *conventional*
configuration.

The paper materializes ROLAP views as ordinary relational tables indexed
with B-trees inside the Informix Universal Server.  This package provides
the equivalent substrate from scratch: schemas, heap-file tables, a catalog,
predicates, physical operators (scan / filter / external sort / sort-group
aggregation), and materialized views with both per-tuple incremental
maintenance and full recomputation.
"""

from repro.relational.catalog import Catalog
from repro.relational.executor import (
    AggFunc,
    AggSpec,
    external_sort,
    sort_group_aggregate,
)
from repro.relational.expr import And, Between, Equals, TruePredicate
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.relational.view import MaterializedView, ViewDefinition

__all__ = [
    "AggFunc",
    "AggSpec",
    "And",
    "Between",
    "Catalog",
    "Equals",
    "MaterializedView",
    "Table",
    "TableSchema",
    "TruePredicate",
    "ViewDefinition",
    "external_sort",
    "sort_group_aggregate",
]
