"""Tables: a schema bound to a heap file."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.errors import InvalidRecordError
from repro.relational.schema import TableSchema
from repro.storage.buffer import BufferPool
from repro.storage.heap import RID, HeapFile

Row = Tuple[object, ...]


class Table:
    """A heap-file table with a schema."""

    def __init__(self, pool: BufferPool, schema: TableSchema) -> None:
        self.schema = schema
        self.heap = HeapFile(pool, schema.codec())

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def name(self) -> str:
        """Table name (catalog key)."""
        return self.schema.name

    @property
    def num_pages(self) -> int:
        """Number of pages this structure occupies."""
        return self.heap.num_pages

    def insert(self, row: Sequence[object]) -> RID:
        """Insert one row (per-tuple path, random I/O)."""
        self._check_row(row)
        return self.heap.insert(row)

    def bulk_append(self, rows: Sequence[Sequence[object]]) -> List[RID]:
        """Append many rows with sequential page writes (bulk-load path)."""
        for row in rows:
            self._check_row(row)
        return self.heap.bulk_append(rows)

    def fetch(self, rid: RID) -> Row:
        """Read one row by RID."""
        return self.heap.fetch(rid)

    def update(self, rid: RID, row: Sequence[object]) -> None:
        """Overwrite one row in place."""
        self._check_row(row)
        self.heap.update(rid, row)

    def delete(self, rid: RID) -> None:
        """Remove one row."""
        self.heap.delete(rid)

    def scan(self) -> Iterator[Tuple[RID, Row]]:
        """Yield (rid, row) in page order."""
        return self.heap.scan()

    def scan_rows(self) -> Iterator[Row]:
        """Yield rows in page order."""
        return self.heap.scan_records()

    def _check_row(self, row: Sequence[object]) -> None:
        if len(row) != self.schema.arity:
            raise InvalidRecordError(
                f"table {self.name!r} expects {self.schema.arity} values, "
                f"got {len(row)}"
            )
