"""Physical operators: scans, filters, external sort, hash join, and
sort-based group aggregation.

These are the building blocks for both materializing views (the cube
computation sorts a parent and aggregates adjacent groups) and answering
queries from finer-grained views (re-aggregation).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from operator import itemgetter
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from repro.storage.buffer import BufferPool
from repro.storage.codec import RecordCodec
from repro.storage.heap import HeapFile

Row = Tuple[object, ...]

#: Distinct from every group key (keys are tuples), so empty inputs and
#: the first row are told apart without an Optional check per row.
_NO_GROUP = object()


def make_key_extractor(
    indexes: Sequence[int],
) -> Callable[[Row], Tuple[object, ...]]:
    """A ``row -> tuple(row[i] for i in indexes)`` built on ``itemgetter``.

    ``itemgetter`` runs the projection in C; the 0- and 1-index cases are
    special-cased because ``itemgetter`` would be invalid or return a bare
    scalar there.
    """
    idxs = tuple(indexes)
    if not idxs:
        return lambda row: ()
    if len(idxs) == 1:
        i = idxs[0]
        return lambda row: (row[i],)
    return itemgetter(*idxs)


def make_row_projector(
    indexes: Sequence[int],
) -> Callable[[Row], Tuple[object, ...]]:
    """Same as :func:`make_key_extractor`; named for projection call sites."""
    return make_key_extractor(indexes)


class AggFunc(Enum):
    """Aggregate functions supported by views.

    The paper uses ``sum(quantity)`` throughout its experiments and notes
    the scheme "can be extended to support multiple aggregation functions
    for each point"; we support the usual distributive/algebraic set.
    """

    SUM = "sum"
    COUNT = "count"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggSpec:
    """One aggregate column of a view: a function over a measure attribute.

    ``COUNT`` ignores the attribute (SQL's ``count(*)``).
    """

    func: AggFunc
    attribute: str = ""

    def __str__(self) -> str:
        arg = self.attribute or "*"
        return f"{self.func.value}({arg})"


def state_width(func: AggFunc) -> int:
    """Number of stored state values for a function (AVG keeps sum+count)."""
    return 2 if func is AggFunc.AVG else 1


def init_state(func: AggFunc, value: float) -> Tuple[float, ...]:
    """Aggregate state for a single raw measure value."""
    if func is AggFunc.COUNT:
        return (1.0,)
    if func is AggFunc.AVG:
        return (value, 1.0)
    return (value,)


def merge_value(
    func: AggFunc, state: Tuple[float, ...], value: float
) -> Tuple[float, ...]:
    """Fold one more raw measure value into an aggregate state."""
    if func is AggFunc.SUM:
        return (state[0] + value,)
    if func is AggFunc.COUNT:
        return (state[0] + 1.0,)
    if func is AggFunc.MIN:
        return (min(state[0], value),)
    if func is AggFunc.MAX:
        return (max(state[0], value),)
    return (state[0] + value, state[1] + 1.0)  # AVG


def combine_states(
    func: AggFunc, a: Tuple[float, ...], b: Tuple[float, ...]
) -> Tuple[float, ...]:
    """Merge two partial states (used by re-aggregation and merge-pack)."""
    if func is AggFunc.MIN:
        return (min(a[0], b[0]),)
    if func is AggFunc.MAX:
        return (max(a[0], b[0]),)
    return tuple(x + y for x, y in zip(a, b))


def finalize_state(func: AggFunc, state: Tuple[float, ...]) -> float:
    """Produce the user-visible value from a stored state."""
    if func is AggFunc.AVG:
        return state[0] / state[1] if state[1] else 0.0
    return state[0]


# ----------------------------------------------------------------------
# basic operators
# ----------------------------------------------------------------------
def filter_rows(
    rows: Iterable[Row], predicate: Callable[[Row], bool]
) -> Iterator[Row]:
    """Selection."""
    return (row for row in rows if predicate(row))


def project(rows: Iterable[Row], indexes: Sequence[int]) -> Iterator[Row]:
    """Projection by column positions."""
    idxs = tuple(indexes)
    return (tuple(row[i] for i in idxs) for row in rows)


def hash_join(
    left: Iterable[Row],
    right: Iterable[Row],
    left_key: int,
    right_key: int,
) -> Iterator[Row]:
    """Classic hash join; the right input is built into the hash table.

    Output rows are ``left + right`` concatenations.  Used when a view
    groups by a dimension attribute reachable only through the dimension
    table (e.g. ``part.brand``).
    """
    table: dict[object, List[Row]] = {}
    for row in right:
        table.setdefault(row[right_key], []).append(row)
    for row in left:
        for match in table.get(row[left_key], ()):
            yield row + match


# ----------------------------------------------------------------------
# external sort
# ----------------------------------------------------------------------
def external_sort(
    pool: BufferPool,
    codec: RecordCodec,
    rows: Iterable[Row],
    key: Callable[[Row], Tuple],
    chunk_rows: int = 100_000,
) -> Iterator[Row]:
    """Run-based external merge sort through the paged substrate.

    Rows are accumulated into in-memory chunks of ``chunk_rows``; each
    chunk is sorted and spilled to a temporary heap file (sequential
    writes); the runs are then k-way merged.  Inputs that fit into a
    single chunk are sorted purely in memory.

    The temporary run pages are freed once the merge completes.
    """
    runs: List[HeapFile] = []
    chunk: List[Row] = []

    for row in rows:
        chunk.append(row)
        if len(chunk) >= chunk_rows:
            chunk.sort(key=key)
            run = HeapFile(pool, codec)
            run.bulk_append(chunk)
            runs.append(run)
            chunk = []

    if not runs:  # everything fits in memory
        chunk.sort(key=key)
        yield from chunk
        return

    if chunk:
        chunk.sort(key=key)
        run = HeapFile(pool, codec)
        run.bulk_append(chunk)
        runs.append(run)

    streams = [run.scan_records() for run in runs]
    yield from heapq.merge(*streams, key=key)

    for run in runs:
        for page_id in run.page_ids:
            pool.discard_page(page_id)
            pool.disk.free_page(page_id)


# ----------------------------------------------------------------------
# sort-based aggregation
# ----------------------------------------------------------------------
def sort_group_aggregate(
    sorted_rows: Iterable[Row],
    group_indexes: Sequence[int],
    measures: Sequence[Tuple[AggFunc, int]],
) -> Iterator[Row]:
    """Aggregate rows already sorted by their group columns.

    Parameters
    ----------
    sorted_rows:
        Input rows, sorted so equal groups are adjacent.
    group_indexes:
        Columns forming the group key.
    measures:
        ``(function, measure column)`` pairs; the column is ignored for
        COUNT.

    Yields
    ------
    ``group values + flattened aggregate states`` — states, not final
    values, so AVG stays mergeable (finalize at query time).
    """
    key_of = make_key_extractor(group_indexes)
    if len(measures) == 1:
        yield from _aggregate_single(sorted_rows, key_of, *measures[0])
        return

    current_key: object = _NO_GROUP
    states: List[Tuple[float, ...]] = []
    for row in sorted_rows:
        key = key_of(row)
        if key == current_key:
            states = [
                merge_value(func, state, _measure_of(row, idx, func))
                for (func, idx), state in zip(measures, states)
            ]
        else:
            if current_key is not _NO_GROUP:
                flat: List[float] = []
                for state in states:
                    flat.extend(state)
                yield current_key + tuple(flat)  # type: ignore[operator]
            current_key = key
            states = [
                init_state(func, _measure_of(row, idx, func))
                for func, idx in measures
            ]
    if current_key is not _NO_GROUP:
        flat = []
        for state in states:
            flat.extend(state)
        yield current_key + tuple(flat)  # type: ignore[operator]


def _aggregate_single(
    sorted_rows: Iterable[Row],
    key_of: Callable[[Row], Tuple[object, ...]],
    func: AggFunc,
    idx: int,
) -> Iterator[Row]:
    """One-measure aggregation with scalar accumulators (the hot shape).

    Avoids per-row state-tuple rebuilds; results are bit-identical to the
    generic path because the same float additions happen in the same
    order.
    """
    current_key: object = _NO_GROUP
    if func is AggFunc.SUM:
        acc = 0.0
        for row in sorted_rows:
            key = key_of(row)
            if key == current_key:
                acc = acc + row[idx]  # type: ignore[operator]
            else:
                if current_key is not _NO_GROUP:
                    yield current_key + (acc,)  # type: ignore[operator]
                current_key = key
                acc = float(row[idx])  # type: ignore[arg-type]
        if current_key is not _NO_GROUP:
            yield current_key + (acc,)  # type: ignore[operator]
    elif func is AggFunc.COUNT:
        count = 0.0
        for row in sorted_rows:
            key = key_of(row)
            if key == current_key:
                count += 1.0
            else:
                if current_key is not _NO_GROUP:
                    yield current_key + (count,)  # type: ignore[operator]
                current_key = key
                count = 1.0
        if current_key is not _NO_GROUP:
            yield current_key + (count,)  # type: ignore[operator]
    elif func is AggFunc.AVG:
        total = 0.0
        count = 0.0
        for row in sorted_rows:
            key = key_of(row)
            if key == current_key:
                total = total + row[idx]  # type: ignore[operator]
                count += 1.0
            else:
                if current_key is not _NO_GROUP:
                    yield current_key + (total, count)  # type: ignore[operator]
                current_key = key
                total = float(row[idx])  # type: ignore[arg-type]
                count = 1.0
        if current_key is not _NO_GROUP:
            yield current_key + (total, count)  # type: ignore[operator]
    else:  # MIN / MAX
        pick = min if func is AggFunc.MIN else max
        best = 0.0
        for row in sorted_rows:
            key = key_of(row)
            if key == current_key:
                best = pick(best, float(row[idx]))  # type: ignore[arg-type]
            else:
                if current_key is not _NO_GROUP:
                    yield current_key + (best,)  # type: ignore[operator]
                current_key = key
                best = float(row[idx])  # type: ignore[arg-type]
        if current_key is not _NO_GROUP:
            yield current_key + (best,)  # type: ignore[operator]


def reaggregate_states(
    sorted_rows: Iterable[Row],
    group_indexes: Sequence[int],
    funcs_with_slices: Sequence[Tuple[AggFunc, slice]],
) -> Iterator[Row]:
    """Combine *state* rows (a finer view's tuples) into coarser groups.

    ``funcs_with_slices`` locates each aggregate's state columns within the
    input rows.  Rows must be sorted by the group columns.
    """
    key_of = make_key_extractor(group_indexes)
    if len(funcs_with_slices) == 1:
        yield from _reaggregate_single(sorted_rows, key_of,
                                       *funcs_with_slices[0])
        return

    current_key: object = _NO_GROUP
    states: List[Tuple[float, ...]] = []
    for row in sorted_rows:
        key = key_of(row)
        row_states = [tuple(row[s]) for _f, s in funcs_with_slices]
        if key == current_key:
            states = [
                combine_states(func, old, new)
                for (func, _s), old, new in zip(
                    funcs_with_slices, states, row_states
                )
            ]
        else:
            if current_key is not _NO_GROUP:
                flat: List[float] = []
                for state in states:
                    flat.extend(state)
                yield current_key + tuple(flat)  # type: ignore[operator]
            current_key = key
            states = row_states
    if current_key is not _NO_GROUP:
        flat = []
        for state in states:
            flat.extend(state)
        yield current_key + tuple(flat)  # type: ignore[operator]


def _reaggregate_single(
    sorted_rows: Iterable[Row],
    key_of: Callable[[Row], Tuple[object, ...]],
    func: AggFunc,
    state_slice: slice,
) -> Iterator[Row]:
    """One-aggregate state re-aggregation with scalar accumulators."""
    current_key: object = _NO_GROUP
    start = state_slice.start
    if func is AggFunc.AVG:  # two state columns: running (sum, count)
        total = 0.0
        count = 0.0
        for row in sorted_rows:
            key = key_of(row)
            if key == current_key:
                total = total + row[start]  # type: ignore[operator]
                count = count + row[start + 1]  # type: ignore[operator]
            else:
                if current_key is not _NO_GROUP:
                    yield current_key + (total, count)  # type: ignore[operator]
                current_key = key
                total = row[start]  # type: ignore[assignment]
                count = row[start + 1]  # type: ignore[assignment]
        if current_key is not _NO_GROUP:
            yield current_key + (total, count)  # type: ignore[operator]
        return
    if func in (AggFunc.MIN, AggFunc.MAX):
        pick = min if func is AggFunc.MIN else max
        combine: Callable[[object, object], object] = pick
    else:  # SUM / COUNT states combine by addition
        def combine(a: object, b: object) -> object:
            return a + b  # type: ignore[operator]
    acc: object = 0.0
    for row in sorted_rows:
        key = key_of(row)
        if key == current_key:
            acc = combine(acc, row[start])
        else:
            if current_key is not _NO_GROUP:
                yield current_key + (acc,)  # type: ignore[operator]
            current_key = key
            acc = row[start]
    if current_key is not _NO_GROUP:
        yield current_key + (acc,)  # type: ignore[operator]


def _measure_of(row: Row, idx: int, func: AggFunc) -> float:
    if func is AggFunc.COUNT:
        return 0.0
    return float(row[idx])  # type: ignore[arg-type]
