"""Table schemas: named, typed columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import SchemaError
from repro.storage.codec import ColumnSpec, RecordCodec


@dataclass(frozen=True)
class TableSchema:
    """An ordered list of named columns.

    Parameters
    ----------
    name:
        Table name (catalog key).
    column_names:
        Attribute names, unique within the table.
    column_specs:
        Physical type of each column, parallel to ``column_names``.
    """

    name: str
    column_names: Tuple[str, ...]
    column_specs: Tuple[ColumnSpec, ...]

    def __init__(
        self,
        name: str,
        columns: Sequence[Tuple[str, ColumnSpec]],
    ) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = tuple(cname for cname, _ in columns)
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "column_names", names)
        object.__setattr__(
            self, "column_specs", tuple(spec for _, spec in columns)
        )

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.column_names)

    def index_of(self, column: str) -> int:
        """Position of a column; raises SchemaError for unknown names."""
        try:
            return self.column_names.index(column)
        except ValueError:
            raise SchemaError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def indexes_of(self, columns: Sequence[str]) -> Tuple[int, ...]:
        """Positions of several columns, in the given order."""
        return tuple(self.index_of(c) for c in columns)

    def has_column(self, column: str) -> bool:
        """True when the table defines the column."""
        return column in self.column_names

    def codec(self) -> RecordCodec:
        """Record codec matching this schema."""
        return RecordCodec(self.column_specs)
