"""Bitmap indexes with word-aligned run-length compression.

The paper's introduction describes the pure-ROLAP alternative to
materialization: "Join and bit-map indices [Val87, OQ97, OG95] are used
for speeding up the joins between the dimension and the fact tables."
This module provides that substrate for the no-materialization baseline:

* :class:`CompressedBitmap` — a WAH-style encoding over 64-bit words:
  a *fill* word encodes a run of all-zero or all-one words, a *literal*
  word carries 63 payload bits.
* :class:`BitmapIndex` — one compressed bitmap per distinct value of a
  column, stored as blobs on the paged substrate; supports equality and
  range lookups and bitmap AND.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.blob import BlobFile, BlobHandle
from repro.storage.buffer import BufferPool

WORD_BITS = 63  # payload bits per literal word (1 flag bit)
_FILL_FLAG = 1 << 63
_FILL_VALUE = 1 << 62
_COUNT_MASK = (1 << 62) - 1


class CompressedBitmap:
    """An immutable compressed bitmap over row ordinals."""

    __slots__ = ("words", "num_bits")

    def __init__(self, words: Tuple[int, ...], num_bits: int) -> None:
        self.words = words
        self.num_bits = num_bits

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(
        cls, positions: Sequence[int], num_bits: int
    ) -> "CompressedBitmap":
        """Encode a sorted sequence of set-bit positions."""
        words: List[int] = []
        pos_iter = iter(positions)
        current = next(pos_iter, None)
        word_index = 0
        total_words = (num_bits + WORD_BITS - 1) // WORD_BITS
        zero_run = 0
        while word_index < total_words:
            base = word_index * WORD_BITS
            limit = base + WORD_BITS
            literal = 0
            while current is not None and current < limit:
                if not base <= current:
                    raise StorageError("positions must be sorted")
                literal |= 1 << (current - base)
                current = next(pos_iter, None)
            if literal == 0:
                zero_run += 1
            else:
                if zero_run:
                    words.append(_FILL_FLAG | zero_run)
                    zero_run = 0
                words.append(literal)
            word_index += 1
        if zero_run:
            words.append(_FILL_FLAG | zero_run)
        return cls(tuple(words), num_bits)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def positions(self) -> Iterator[int]:
        """Yield set-bit positions in ascending order."""
        base = 0
        for word in self.words:
            if word & _FILL_FLAG:
                count = word & _COUNT_MASK
                if word & _FILL_VALUE:
                    for pos in range(base, base + count * WORD_BITS):
                        if pos < self.num_bits:
                            yield pos
                base += count * WORD_BITS
            else:
                bits = word
                while bits:
                    low = bits & -bits
                    yield base + low.bit_length() - 1
                    bits ^= low
                base += WORD_BITS

    def count(self) -> int:
        """Number of set bits."""
        total = 0
        for word in self.words:
            if word & _FILL_FLAG:
                if word & _FILL_VALUE:
                    total += (word & _COUNT_MASK) * WORD_BITS
            else:
                total += bin(word).count("1")
        return total

    def logical_and(self, other: "CompressedBitmap") -> "CompressedBitmap":
        """Intersection (decode-and-reencode; fine at library scale)."""
        mine = set(self.positions())
        theirs = set(other.positions())
        both = sorted(mine & theirs)
        return CompressedBitmap.from_positions(
            both, min(self.num_bits, other.num_bits)
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer."""
        header = struct.pack("<qi", self.num_bits, len(self.words))
        body = struct.pack(f"<{len(self.words)}Q", *self.words)
        return header + body

    @classmethod
    def from_bytes(cls, raw: bytes) -> "CompressedBitmap":
        """Deserialize from a page buffer."""
        num_bits, count = struct.unpack_from("<qi", raw, 0)
        words = struct.unpack_from(f"<{count}Q", raw, 12)
        return cls(tuple(words), num_bits)


class BitmapIndex:
    """Per-value compressed bitmaps over a table column.

    Built from a full scan: row *ordinals* (scan order) are recorded per
    distinct value and each value's bitmap is stored as a blob.  Lookups
    read only the requested values' blobs — the access pattern that makes
    bitmap indexes attractive for low-cardinality attributes.
    """

    def __init__(self, pool: BufferPool) -> None:
        self.pool = pool
        self.blobs = BlobFile(pool)
        self._handles: Dict[int, BlobHandle] = {}
        self.num_rows = 0

    @classmethod
    def build(
        cls,
        pool: BufferPool,
        values: Sequence[int],
    ) -> "BitmapIndex":
        """Index a column given its values in row-ordinal order."""
        index = cls(pool)
        index.num_rows = len(values)
        per_value: Dict[int, List[int]] = {}
        for ordinal, value in enumerate(values):
            per_value.setdefault(int(value), []).append(ordinal)
        for value in sorted(per_value):
            bitmap = CompressedBitmap.from_positions(
                per_value[value], len(values)
            )
            index._handles[value] = index.blobs.append(bitmap.to_bytes())
        return index

    # ------------------------------------------------------------------
    def distinct_values(self) -> List[int]:
        """Indexed values, ascending."""
        return sorted(self._handles)

    def bitmap_for(self, value: int) -> Optional[CompressedBitmap]:
        """The bitmap of one value (None if the value never occurs)."""
        handle = self._handles.get(int(value))
        if handle is None:
            return None
        return CompressedBitmap.from_bytes(self.blobs.read(handle))

    def ordinals_equal(self, value: int) -> List[int]:
        """Row ordinals whose column equals ``value``."""
        bitmap = self.bitmap_for(value)
        return list(bitmap.positions()) if bitmap else []

    def ordinals_in_range(self, low: int, high: int) -> List[int]:
        """Union of the bitmaps of every value in [low, high]."""
        out: List[int] = []
        for value in self.distinct_values():
            if low <= value <= high:
                out.extend(self.ordinals_equal(value))
        out.sort()
        return out

    @property
    def num_pages(self) -> int:
        """Number of pages this structure occupies."""
        return self.blobs.num_pages
