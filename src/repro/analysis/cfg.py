"""Statement-level control-flow graphs over Python function bodies.

The flow rules (:mod:`repro.analysis.flowrules`) need to reason about
*paths* — "is every pinned page released on every way out of this
function?" — which a per-node AST walk cannot answer.  This module builds
a small CFG per function:

* one node per ``ast.stmt`` (compound statements contribute their header
  — the ``if``/``while``/``for``/``try`` line — as the node; their bodies
  become separate nodes), plus synthetic ``entry`` and ``exit`` nodes;
* every statement of the function body appears **exactly once** — there
  is no duplication of ``finally`` blocks along each exit route (a
  property the test suite asserts for the whole source tree);
* abrupt exits (``return``, ``raise``, ``break``, ``continue``) are
  routed *through* enclosing ``finally`` blocks by edge chaining: the
  jump statement gets an edge to the ``finally`` entry, and the
  ``finally`` exits fan out to every continuation that was routed
  through them.  This is deliberately conservative (a ``finally`` exit
  may have edges to both the loop header and the function exit) — flow
  rules only need a superset of the feasible paths;
* a statement containing ``yield``/``yield from`` gets an extra
  *abandonment* edge: a suspended generator may be closed at the yield
  point, running only the enclosing ``finally`` blocks on the way out.
  This models the iterator-leak class fixed dynamically in the rtree
  scans — and makes it statically detectable.

Exception edges are intentionally coarse: only explicit ``raise``
statements create exceptional exits (routed to the handlers of the
innermost enclosing ``try`` and, conservatively, through ``finally``
blocks to the function exit).  Arbitrary calls are assumed non-raising;
the pin rule's job is to catch *structurally* missing releases, not to
prove exception safety of every arithmetic expression.

Nested ``def``/``class`` statements are opaque single nodes: each
function gets its own CFG via :func:`build_cfg`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import InternalError

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Jump keys used to route abrupt exits through ``finally`` frames.
_RETURN = "return"
_RAISE = "raise"
_ABANDON = "abandon"


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic entry/exit."""

    index: int
    stmt: Optional[ast.stmt]
    kind: str  # "entry" | "exit" | "stmt"
    succs: List[int] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    func: FunctionNode
    nodes: List[CFGNode]
    entry: int
    exit: int

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def statements(self) -> List[ast.stmt]:
        """Every statement node, in creation (source) order."""
        return [n.stmt for n in self.nodes if n.stmt is not None]


class _LoopFrame:
    """Routing frame for an enclosing loop (break/continue targets)."""

    def __init__(self, header: int) -> None:
        self.header = header
        self.breaks: List[int] = []


class _TryFrame:
    """Routing frame for a try body with handlers: raisers jump here."""

    def __init__(self) -> None:
        self.raisers: List[int] = []


class _FinallyFrame:
    """Routing frame for a try with a ``finally`` block.

    Abrupt jumps from within the protected region are parked here (keyed
    by their ultimate continuation) until the finally body is built, at
    which point the finally's exits are fanned out to every parked
    continuation.
    """

    def __init__(self) -> None:
        self.pending: Dict[Tuple[object, ...], List[int]] = {}

    def park(self, key: Tuple[object, ...], sources: List[int]) -> None:
        self.pending.setdefault(key, []).extend(sources)


_Frame = Union[_LoopFrame, _TryFrame, _FinallyFrame]


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.frames: List[_Frame] = []

    # -- node/edge primitives ------------------------------------------
    def _new(self, stmt: Optional[ast.stmt], kind: str = "stmt") -> int:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        succs = self.nodes[src].succs
        if dst not in succs:
            succs.append(dst)

    def _edges(self, srcs: List[int], dst: int) -> None:
        for src in srcs:
            self._edge(src, dst)

    # -- abrupt-jump routing -------------------------------------------
    def _route(self, sources: List[int], key: Tuple[object, ...]) -> None:
        """Route an abrupt jump through enclosing frames.

        The innermost applicable frame intercepts: a ``finally`` frame
        parks the jump (it resumes from the finally's exits), a loop
        frame resolves break/continue, and with no applicable frame the
        jump reaches the function exit.
        """
        if not sources:
            return
        for frame in reversed(self.frames):
            if isinstance(frame, _FinallyFrame):
                frame.park(key, sources)
                return
            if isinstance(frame, _LoopFrame) and len(key) == 2:
                verb, target = key
                if target is frame:
                    if verb == "break":
                        frame.breaks.extend(sources)
                    else:  # continue
                        self._edges(sources, frame.header)
                    return
        self._edges(sources, self.exit)

    def _innermost_loop(self) -> Optional[_LoopFrame]:
        for frame in reversed(self.frames):
            if isinstance(frame, _LoopFrame):
                return frame
        return None

    # -- statement builders --------------------------------------------
    def build(self) -> CFG:
        entry_idx, exits = self._seq(self.func.body)
        if entry_idx is not None:
            self._edge(self.entry, entry_idx)
        else:  # pragma: no cover - functions always have a body
            exits = [self.entry]
        self._edges(exits, self.exit)
        return CFG(self.func, self.nodes, self.entry, self.exit)

    def _seq(
        self, stmts: List[ast.stmt]
    ) -> Tuple[Optional[int], List[int]]:
        """Build a statement sequence; returns (entry index, open exits).

        Statements after an abrupt jump are unreachable but still get
        nodes (with no incoming edges) so the exactly-once coverage
        property holds for the whole body.
        """
        entry: Optional[int] = None
        open_exits: List[int] = []
        first = True
        for stmt in stmts:
            s_entry, s_exits = self._stmt(stmt)
            if first:
                entry = s_entry
                first = False
            else:
                self._edges(open_exits, s_entry)
            open_exits = s_exits
        return entry, open_exits

    def _seq_entry(self, stmts: List[ast.stmt]) -> Tuple[int, List[int]]:
        """Like :meth:`_seq` for blocks the grammar requires non-empty."""
        entry, exits = self._seq(stmts)
        if entry is None:  # pragma: no cover - unreachable on valid ASTs
            raise InternalError("non-empty block produced no CFG entry")
        return entry, exits

    def _stmt(self, stmt: ast.stmt) -> Tuple[int, List[int]]:
        if isinstance(stmt, ast.If):
            return self._if(stmt)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt)
        if isinstance(stmt, ast.Try):
            return self._try(stmt)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt)
        if isinstance(stmt, ast.Match):
            return self._match(stmt)
        return self._simple(stmt)

    def _simple(self, stmt: ast.stmt) -> Tuple[int, List[int]]:
        idx = self._new(stmt)
        if _contains_yield(stmt):
            self._route([idx], (_ABANDON,))
        if isinstance(stmt, ast.Return):
            self._route([idx], (_RETURN,))
            return idx, []
        if isinstance(stmt, ast.Raise):
            for frame in reversed(self.frames):
                if isinstance(frame, _TryFrame):
                    frame.raisers.append(idx)
                    break
                if isinstance(frame, _FinallyFrame):
                    break
            self._route([idx], (_RAISE,))
            return idx, []
        if isinstance(stmt, ast.Break):
            loop = self._innermost_loop()
            if loop is not None:
                self._route([idx], ("break", loop))
            else:  # pragma: no cover - invalid python
                self._route([idx], (_RAISE,))
            return idx, []
        if isinstance(stmt, ast.Continue):
            loop = self._innermost_loop()
            if loop is not None:
                self._route([idx], ("continue", loop))
            else:  # pragma: no cover - invalid python
                self._route([idx], (_RAISE,))
            return idx, []
        return idx, [idx]

    def _if(self, stmt: ast.If) -> Tuple[int, List[int]]:
        idx = self._new(stmt)
        body_entry, body_exits = self._seq_entry(stmt.body)
        self._edge(idx, body_entry)
        exits = list(body_exits)
        if stmt.orelse:
            else_entry, else_exits = self._seq_entry(stmt.orelse)
            self._edge(idx, else_entry)
            exits.extend(else_exits)
        else:
            exits.append(idx)
        return idx, exits

    def _while(self, stmt: ast.While) -> Tuple[int, List[int]]:
        idx = self._new(stmt)
        loop = _LoopFrame(idx)
        self.frames.append(loop)
        body_entry, body_exits = self._seq_entry(stmt.body)
        self.frames.pop()
        self._edge(idx, body_entry)
        self._edges(body_exits, idx)
        exits: List[int] = []
        infinite = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        if stmt.orelse:
            else_entry, else_exits = self._seq_entry(stmt.orelse)
            if not infinite:
                self._edge(idx, else_entry)
            exits.extend(else_exits)
        elif not infinite:
            exits.append(idx)
        # break exits skip the else clause entirely
        exits.extend(loop.breaks)
        return idx, self._dedupe(exits)

    def _for(
        self, stmt: Union[ast.For, ast.AsyncFor]
    ) -> Tuple[int, List[int]]:
        idx = self._new(stmt)
        loop = _LoopFrame(idx)
        self.frames.append(loop)
        body_entry, body_exits = self._seq_entry(stmt.body)
        self.frames.pop()
        self._edge(idx, body_entry)
        self._edges(body_exits, idx)
        exits = []
        if stmt.orelse:
            else_entry, else_exits = self._seq_entry(stmt.orelse)
            self._edge(idx, else_entry)
            exits.extend(else_exits)
        else:
            exits.append(idx)
        exits.extend(loop.breaks)
        return idx, self._dedupe(exits)

    @staticmethod
    def _dedupe(exits: List[int]) -> List[int]:
        # dedupe while preserving order
        seen = set()
        out = []
        for idx in exits:
            if idx not in seen:
                seen.add(idx)
                out.append(idx)
        return out

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith]
    ) -> Tuple[int, List[int]]:
        idx = self._new(stmt)
        body_entry, body_exits = self._seq_entry(stmt.body)
        self._edge(idx, body_entry)
        return idx, body_exits

    def _match(self, stmt: ast.Match) -> Tuple[int, List[int]]:
        idx = self._new(stmt)
        exits: List[int] = [idx]  # no case may match
        for case in stmt.cases:
            case_entry, case_exits = self._seq_entry(case.body)
            self._edge(idx, case_entry)
            exits.extend(case_exits)
        return idx, exits

    def _try(self, stmt: ast.Try) -> Tuple[int, List[int]]:
        idx = self._new(stmt)
        fin_frame = _FinallyFrame() if stmt.finalbody else None
        try_frame = _TryFrame() if stmt.handlers else None
        if fin_frame is not None:
            self.frames.append(fin_frame)
        if try_frame is not None:
            self.frames.append(try_frame)

        body_entry, body_exits = self._seq_entry(stmt.body)
        self._edge(idx, body_entry)

        if try_frame is not None:
            self.frames.pop()

        # else clause runs after the body completes normally; its own
        # raises are not caught by this try's handlers.
        if stmt.orelse:
            else_entry, else_exits = self._seq_entry(stmt.orelse)
            self._edges(body_exits, else_entry)
            normal_exits = else_exits
        else:
            normal_exits = body_exits

        # handlers: entered from explicit raises in the body (and,
        # conservatively, from the try header itself so handler code is
        # reachable even when the body has no explicit raise).
        handler_exits: List[int] = []
        if try_frame is not None:
            for handler in stmt.handlers:
                h_entry, h_exits = self._seq_entry(handler.body)
                self._edges(try_frame.raisers, h_entry)
                self._edge(idx, h_entry)
                handler_exits.extend(h_exits)

        all_exits = normal_exits + handler_exits

        if fin_frame is not None:
            self.frames.pop()
            fin_entry, fin_exits = self._seq_entry(stmt.finalbody)
            self._edges(all_exits, fin_entry)
            # fan the finally's exits out to every continuation that was
            # routed through it
            for key, sources in fin_frame.pending.items():
                self._edges(sources, fin_entry)
                self._route(list(fin_exits), key)
            return idx, fin_exits
        return idx, all_exits


def build_cfg(func: FunctionNode) -> CFG:
    """Build the CFG of one function definition."""
    return _Builder(func).build()


def _contains_yield(stmt: ast.stmt) -> bool:
    """Does this statement suspend (yield) — excluding nested defs?"""
    for node in walk_statement(stmt):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def walk_statement(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk a statement's subtree without entering nested def/class
    bodies or other statements (compound headers only contribute their
    own expressions)."""
    stack: List[ast.AST] = [stmt]
    first = True
    while stack:
        node = stack.pop()
        yield node
        if not first and isinstance(node, ast.stmt):
            continue  # sibling statements are their own CFG nodes
        first = False
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            stack.append(child)


def collect_statements(func: FunctionNode) -> List[ast.stmt]:
    """Every statement in a function body, excluding nested def/class
    bodies (those belong to their own CFGs) but including the nested
    def/class statements themselves.

    The CFG must cover exactly this set, exactly once.
    """
    out: List[ast.stmt] = []

    def visit_block(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            out.append(stmt)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for block in _child_blocks(stmt):
                visit_block(block)

    visit_block(func.body)
    return out


def _child_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
    blocks: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if (
            isinstance(block, list)
            and block
            and isinstance(block[0], ast.stmt)
        ):
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    for case in getattr(stmt, "cases", []) or []:
        blocks.append(case.body)
    return blocks


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, FunctionNode]]:
    """Yield (qualname, funcdef) for every function in a module,
    including methods and nested functions."""

    def visit(
        nodes: List[ast.stmt], prefix: str
    ) -> Iterator[Tuple[str, FunctionNode]]:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                yield qual, node
                yield from visit(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                yield from visit(node.body, f"{prefix}{node.name}.")
            else:
                for block in _child_blocks(node):
                    yield from visit(block, prefix)

    yield from visit(tree.body, "")
