"""Structural verifier ("cubetree fsck") for packed R-trees.

The paper's correctness argument rests on *physical* invariants that the
packer (:mod:`repro.rtree.packing`) and merge-packer
(:mod:`repro.rtree.merge`) must preserve (Sec. 2.3–2.4 and
``docs/STORAGE_FORMAT.md``):

* every leaf except the last of its view's run is filled to
  ``leaf_capacity`` (packed trees have ~100% utilization);
* each view occupies one contiguous run of leaves — views never
  interleave on the leaf level, and runs appear in ascending arity
  order (the order the reversed-coordinate sort produces);
* the whole leaf chain is strictly sorted by the reversed-coordinate
  :func:`~repro.rtree.packing.sort_key`;
* compressed leaves store exactly arity-``k`` coordinates with the
  valid mapping's zero padding elided, and every stored coordinate is
  strictly positive;
* interior MBRs contain their children (recorded and recomputed);
* the ``next_leaf`` chain, the tree's ``leaf_page_ids`` index, and the
  set of leaves reachable from the root all agree; and
* the stored entry total matches the tree's counter.

Checks deserialize nodes from the raw page bytes (via
:class:`~repro.storage.page.Page` buffers served by the
:class:`~repro.storage.buffer.BufferPool`), so they exercise the
*persisted* layout rather than any cached node objects.

:func:`check_tree` / :func:`check_cubetree` / :func:`check_forest`
return a structured :class:`FsckReport`; :func:`verify_tree` raises
:class:`~repro.errors.IntegrityError` instead, and is what
``rtree.merge`` and ``core.cubetree`` call behind the
``REPRO_DEBUG_CHECKS`` flag.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.constants import PAGE_SIZE
from repro.errors import IntegrityError, ReproError
from repro.rtree.geometry import Rect
from repro.rtree.node import (
    INTERIOR_TYPE,
    LEAF_TYPES,
    MAX_LEAF_ENTRIES,
    RInteriorNode,
    RLeafNode,
    columnar_entry_cost,
    columnar_leaf_size,
    leaf_capacity,
    node_type_of,
)
from repro.rtree.packing import sort_key
from repro.rtree.tree import EMPTY_EXTENT, RTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.cubetree import Cubetree
    from repro.core.engine import CubetreeEngine
    from repro.core.forest import CubetreeForest
    from repro.core.sharded import ShardedCubetreeEngine

# ----------------------------------------------------------------------
# violation codes
# ----------------------------------------------------------------------
LEAF_UNDERFILLED = "leaf-underfilled"
LEAF_OVERFILLED = "leaf-overfilled"
VIEW_INTERLEAVED = "view-interleaved"
CHAIN_UNSORTED = "chain-unsorted"
BAD_ARITY = "bad-arity"
NONPOSITIVE_COORD = "nonpositive-coordinate"
MBR_NOT_CONTAINED = "mbr-not-contained"
LEAF_CHAIN_BROKEN = "leaf-chain-broken"
COUNT_MISMATCH = "count-mismatch"
UNKNOWN_VIEW = "unknown-view"
PAGE_CORRUPT = "page-corrupt"
STRUCTURE_CYCLE = "structure-cycle"
CHECKPOINT_CORRUPT = "checkpoint-corrupt"
RUN_EXTENT_MISMATCH = "run-extent-mismatch"
SHARD_RESIDUE = "shard-residue"

#: view_id -> (expected arity, expected aggregate-value count)
ExpectedViews = Mapping[int, Tuple[int, int]]


@dataclass(frozen=True)
class Violation:
    """One invariant violation, locatable on the page level."""

    code: str
    message: str
    page_id: Optional[int] = None
    view_id: Optional[int] = None
    tree_label: str = ""

    def format(self) -> str:
        """One-line rendering: ``[code] tree/page/view: message``."""
        where = []
        if self.tree_label:
            where.append(self.tree_label)
        if self.page_id is not None:
            where.append(f"page {self.page_id}")
        if self.view_id is not None:
            where.append(f"view {self.view_id}")
        location = ", ".join(where) or "tree"
        return f"[{self.code}] {location}: {self.message}"


@dataclass
class FsckReport:
    """Structured result of one verification pass."""

    violations: List[Violation] = field(default_factory=list)
    trees_checked: int = 0
    pages_checked: int = 0
    leaves_checked: int = 0
    entries_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def codes(self) -> List[str]:
        """The violation codes, in report order."""
        return [violation.code for violation in self.violations]

    def merge(self, other: "FsckReport") -> None:
        """Fold another report's findings and counters into this one."""
        self.violations.extend(other.violations)
        self.trees_checked += other.trees_checked
        self.pages_checked += other.pages_checked
        self.leaves_checked += other.leaves_checked
        self.entries_checked += other.entries_checked

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"cubetree fsck: {self.trees_checked} tree(s), "
            f"{self.pages_checked} page(s), {self.leaves_checked} leaf/"
            f"leaves, {self.entries_checked} entries checked: "
            f"{len(self.violations)} violation(s)"
        ]
        lines.extend(violation.format() for violation in self.violations)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# debug flag (consulted by rtree.merge / core.cubetree post-conditions)
# ----------------------------------------------------------------------
_DEBUG_CHECKS: Optional[bool] = None  # repro: worker-local


def set_debug_checks(enabled: Optional[bool]) -> None:
    """Force the debug-check flag on/off; ``None`` defers to the env."""
    global _DEBUG_CHECKS
    _DEBUG_CHECKS = enabled


def debug_checks_enabled() -> bool:
    """True when post-operation fsck should run (``REPRO_DEBUG_CHECKS``)."""
    if _DEBUG_CHECKS is not None:
        return _DEBUG_CHECKS
    return os.environ.get("REPRO_DEBUG_CHECKS", "").lower() not in (
        "", "0", "false", "no",
    )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def check_tree(
    tree: RTree,
    expected_views: Optional[ExpectedViews] = None,
    packed: bool = True,
    label: str = "",
) -> FsckReport:
    """Verify one R-tree's structural invariants.

    Parameters
    ----------
    tree:
        The tree to verify (its pages are read through its buffer pool).
    expected_views:
        Optional ``view_id -> (arity, n_aggs)`` map; when given, every
        leaf must belong to a listed view and match its shape.
    packed:
        When true (the default), enforce the packing invariants (full
        leaves, contiguous sorted view runs, positive coordinates).
        Dynamically built ablation trees only get the structural checks
        (MBRs, chain consistency, counts).
    label:
        Prefix for violation locations when checking a forest.
    """
    checker = _TreeChecker(tree, expected_views, packed, label)
    return checker.run()


def check_cubetree(cubetree: "Cubetree", label: str = "") -> FsckReport:
    """Verify one :class:`~repro.core.cubetree.Cubetree`.

    Within a Cubetree every leaf's view id equals the view's arity and
    its value count equals the view's total state width.
    """
    expected = {
        view.arity: (view.arity, view.total_state_width)
        for view in cubetree.views
    }
    return check_tree(cubetree.tree, expected_views=expected, label=label)


def check_forest(forest: "CubetreeForest") -> FsckReport:
    """Verify every Cubetree of a forest; one aggregated report."""
    report = FsckReport()
    for i, cubetree in enumerate(forest.cubetrees, start=1):
        report.merge(check_cubetree(cubetree, label=f"R{i}"))
    return report


def check_engine(engine: "CubetreeEngine") -> FsckReport:
    """Verify a loaded engine's forest."""
    if engine.forest is None:
        raise ReproError("engine has no materialized forest to check")
    return check_forest(engine.forest)


def check_sharded_engine(engine: "ShardedCubetreeEngine") -> FsckReport:
    """Verify every shard of a sharded engine, plus residue disjointness.

    Each shard's forest gets the full structural fsck (labels like
    ``shard0/R1``), and on top of it the sharding contract is enforced:
    a leaf entry of an arity-``k >= 1`` view must live on the shard its
    leading group coordinate hashes to (``coord % num_shards``), and the
    apex (arity-0) row may only appear on shard 0.  A misplaced entry
    would silently vanish from pruned scatter-gather queries, so it is
    its own violation code (``shard-residue``).
    """
    report = FsckReport()
    num_shards = len(engine.shards)
    for shard in engine.shards:
        forest = shard.forest
        if forest is None:
            raise ReproError(
                f"shard {shard.index} has no materialized forest to check"
            )
        for i, cubetree in enumerate(forest.cubetrees, start=1):
            label = f"shard{shard.index}/R{i}"
            report.merge(check_cubetree(cubetree, label=label))
            _check_shard_residues(
                cubetree, shard.index, num_shards, label, report
            )
    return report


def _check_shard_residues(
    cubetree: "Cubetree",
    shard_index: int,
    num_shards: int,
    label: str,
    report: FsckReport,
) -> None:
    """Flag leaf entries whose leading coordinate maps to another shard."""
    if num_shards <= 1:
        return
    for leaf in cubetree.tree.scan_leaf_chain():
        if leaf.arity == 0:
            if shard_index != 0 and leaf.points:
                report.violations.append(
                    Violation(
                        SHARD_RESIDUE,
                        f"apex (arity-0) entries live on shard "
                        f"{shard_index}; the apex belongs to shard 0",
                        view_id=leaf.view_id,
                        tree_label=label,
                    )
                )
            continue
        for point in leaf.points:
            residue = int(point[0]) % num_shards
            if residue != shard_index:
                report.violations.append(
                    Violation(
                        SHARD_RESIDUE,
                        f"entry {point} has leading coordinate "
                        f"{point[0]} (residue {residue} mod "
                        f"{num_shards}) but lives on shard "
                        f"{shard_index}",
                        view_id=leaf.view_id,
                        tree_label=label,
                    )
                )
                break  # one misplaced entry per leaf is enough signal


def check_database(engine: object) -> FsckReport:
    """Verify a loaded engine, sharded or not (layout dispatch)."""
    if hasattr(engine, "shards"):
        return check_sharded_engine(engine)  # type: ignore[arg-type]
    return check_engine(engine)  # type: ignore[arg-type]


def check_checkpoint(directory: str) -> FsckReport:
    """Verify a *saved* database: checksums first, then structural fsck.

    Runs :func:`repro.core.persistence.verify_checkpoint` over the newest
    committed generation (manifest/size/CRC32 validation, per-page
    checksums — per shard for sharded layouts, including manifest
    completeness across every shard directory), and — when that passes —
    reopens the database and fscks the reconstructed forest(s), so
    ``repro check --checkpoint`` covers both the bytes on disk and the
    structure they encode.  Sharded checkpoints additionally get the
    cross-shard residue-disjointness walk.  Checksum problems and load
    failures surface as ``checkpoint-corrupt`` violations.
    """
    from repro.core.persistence import (
        PersistenceError,
        load_any_engine,
        verify_checkpoint,
    )

    report = FsckReport()
    label = os.path.basename(os.path.abspath(directory))
    checkpoint = verify_checkpoint(directory)
    report.pages_checked += checkpoint.pages_checked
    for problem in checkpoint.problems:
        report.violations.append(
            Violation(CHECKPOINT_CORRUPT, problem, tree_label=label)
        )
    if not checkpoint.ok:
        return report
    try:
        engine = load_any_engine(directory)
    except PersistenceError as exc:
        report.violations.append(
            Violation(CHECKPOINT_CORRUPT, str(exc), tree_label=label)
        )
        return report
    report.merge(check_database(engine))
    return report


def verify_tree(
    tree: RTree,
    expected_views: Optional[ExpectedViews] = None,
    context: str = "",
) -> None:
    """Run :func:`check_tree` and raise :class:`IntegrityError` on failure."""
    report = check_tree(tree, expected_views=expected_views)
    if not report.ok:
        prefix = f"{context}: " if context else ""
        raise IntegrityError(prefix + report.format())


# ----------------------------------------------------------------------
# implementation
# ----------------------------------------------------------------------
class _TreeChecker:
    """Stateful single-tree verification pass."""

    def __init__(
        self,
        tree: RTree,
        expected_views: Optional[ExpectedViews],
        packed: bool,
        label: str,
    ) -> None:
        self.tree = tree
        self.expected_views = expected_views
        self.packed = packed
        self.label = label
        self.report = FsckReport(trees_checked=1)
        self._visited: set[int] = set()

    # -- helpers -------------------------------------------------------
    def _flag(
        self,
        code: str,
        message: str,
        page_id: Optional[int] = None,
        view_id: Optional[int] = None,
    ) -> None:
        self.report.violations.append(
            Violation(code, message, page_id, view_id, self.label)
        )

    def _load(self, page_id: int):
        """Deserialize a node from its persisted page bytes.

        Always decodes from the page buffer (never a cached object), so
        the check covers what is actually on disk after a flush.
        """
        pool = self.tree.pool
        page = pool.fetch_page(page_id)
        try:
            raw = bytes(page.data)
            kind = node_type_of(raw)
            if kind in LEAF_TYPES:
                return RLeafNode.from_bytes(raw)
            if kind == INTERIOR_TYPE:
                return RInteriorNode.from_bytes(raw)
            raise IntegrityError(f"unknown node type byte {kind}")
        finally:
            pool.unpin_page(page_id)

    # -- pass ----------------------------------------------------------
    def run(self) -> FsckReport:
        tree = self.tree
        if tree.root_page_id == -1:
            if tree.count != 0:
                self._flag(
                    COUNT_MISMATCH,
                    f"empty tree carries count {tree.count}",
                )
            if tree.leaf_page_ids:
                self._flag(
                    LEAF_CHAIN_BROKEN,
                    "empty tree still lists leaf pages",
                )
            return self.report

        traversal_leaves: List[int] = []
        self._walk(tree.root_page_id, bound=None, leaves=traversal_leaves)
        chain_leaves = self._check_chain()
        if chain_leaves is not None:
            # Packed trees build interiors over consecutive chain groups,
            # so in-order traversal must reproduce the chain exactly;
            # dynamic (Guttman) trees only promise the same leaf *set*.
            agree = (
                traversal_leaves == chain_leaves
                if self.packed
                else set(traversal_leaves) == set(chain_leaves)
            )
            if not agree:
                self._flag(
                    LEAF_CHAIN_BROKEN,
                    f"leaf chain {chain_leaves} disagrees with the leaves "
                    f"reachable from the root {traversal_leaves}",
                )
        return self.report

    def _walk(
        self,
        page_id: int,
        bound: Optional[Rect],
        leaves: List[int],
    ) -> Optional[Rect]:
        """Depth-first structural walk; returns the node's actual coverage."""
        if page_id in self._visited:
            self._flag(
                STRUCTURE_CYCLE,
                "page is referenced more than once",
                page_id=page_id,
            )
            return None
        self._visited.add(page_id)
        self.report.pages_checked += 1

        try:
            node = self._load(page_id)
        except ReproError as exc:
            self._flag(PAGE_CORRUPT, str(exc), page_id=page_id)
            return None

        if isinstance(node, RLeafNode):
            leaves.append(page_id)
            if not node.points:
                return None
            try:
                actual = node.mbr(self.tree.dims)
            except (ReproError, ValueError) as exc:
                self._flag(PAGE_CORRUPT, str(exc), page_id=page_id)
                return None
            if bound is not None and not bound.contains_rect(actual):
                self._flag(
                    MBR_NOT_CONTAINED,
                    f"leaf coverage {actual} escapes the MBR its parent "
                    f"recorded ({bound})",
                    page_id=page_id,
                    view_id=node.view_id,
                )
            return actual

        for child_id, recorded in zip(node.children, node.mbrs):
            if bound is not None and not bound.contains_rect(recorded):
                self._flag(
                    MBR_NOT_CONTAINED,
                    f"child MBR {recorded} escapes parent MBR {bound}",
                    page_id=page_id,
                )
            actual = self._walk(child_id, recorded, leaves)
            if actual is not None and not recorded.contains_rect(actual):
                self._flag(
                    MBR_NOT_CONTAINED,
                    f"recorded MBR {recorded} for child page {child_id} "
                    f"does not contain its actual coverage {actual}",
                    page_id=page_id,
                )
        if not node.mbrs:
            self._flag(
                PAGE_CORRUPT, "interior node with no entries", page_id=page_id
            )
            return None
        return Rect.cover(node.mbrs)

    # -- leaf-chain checks ---------------------------------------------
    def _check_chain(self) -> Optional[List[int]]:
        """Walk the next-leaf chain, enforcing the packing invariants.

        Returns the chain's page ids (None when the chain is unwalkable).
        """
        tree = self.tree
        if not tree.leaf_page_ids:
            self._flag(LEAF_CHAIN_BROKEN, "tree has no leaf page index")
            return None

        chain: List[int] = []
        seen: set[int] = set()
        page_id = tree.leaf_page_ids[0]
        prev_key: Optional[Tuple[int, ...]] = None
        prev_view: Optional[int] = None
        prev_leaf: Optional[Tuple[int, RLeafNode]] = None
        #: view_id -> arity of each completed run, in chain order
        runs: List[Tuple[int, int]] = []
        #: (view_id, first page id, last page id) per run, in chain order
        run_extents: List[Tuple[int, int, int]] = []
        total_entries = 0

        while page_id != -1:
            if page_id in seen:
                self._flag(
                    STRUCTURE_CYCLE,
                    "next-leaf chain revisits a page",
                    page_id=page_id,
                )
                return None
            seen.add(page_id)
            chain.append(page_id)
            try:
                node = self._load(page_id)
            except ReproError as exc:
                self._flag(PAGE_CORRUPT, str(exc), page_id=page_id)
                return None
            if not isinstance(node, RLeafNode):
                self._flag(
                    LEAF_CHAIN_BROKEN,
                    "next-leaf chain points at a non-leaf page",
                    page_id=page_id,
                )
                return None

            self.report.leaves_checked += 1
            total_entries += len(node)

            # A new run starts whenever the view id changes; the leaf
            # that closed the previous run is allowed to be partial.
            if prev_view is None or node.view_id != prev_view:
                runs.append((node.view_id, node.arity))
                run_extents.append((node.view_id, page_id, page_id))
                prev_view = node.view_id
            else:
                view_id, first, _last = run_extents[-1]
                run_extents[-1] = (view_id, first, page_id)
                # The *previous* leaf was not the last of its run, so it
                # must have been full.
                if self.packed and prev_leaf is not None:
                    self._check_full(prev_leaf, node)

            self._check_leaf(node, page_id)
            if node.columnar:
                size = columnar_leaf_size(
                    node.points, node.arity, node.n_aggs
                )
                if size > PAGE_SIZE or len(node) > MAX_LEAF_ENTRIES:
                    self._flag(
                        LEAF_OVERFILLED,
                        f"columnar leaf encodes {len(node)} entries to "
                        f"{size} bytes, page size is {PAGE_SIZE}",
                        page_id=page_id,
                        view_id=node.view_id,
                    )
            else:
                cap = leaf_capacity(node.arity, node.n_aggs)
                if len(node) > cap:
                    self._flag(
                        LEAF_OVERFILLED,
                        f"leaf holds {len(node)} entries, capacity is {cap}",
                        page_id=page_id,
                        view_id=node.view_id,
                    )
            if self.packed and len(node) == 0:
                self._flag(
                    LEAF_UNDERFILLED,
                    "packed tree contains an empty leaf",
                    page_id=page_id,
                    view_id=node.view_id,
                )
            prev_leaf = (page_id, node)

            if self.packed:
                prev_key = self._check_sorted(node, page_id, prev_key)

            page_id = node.next_leaf

        self.report.entries_checked += total_entries
        if self.packed:
            if self._check_runs(runs):
                # Extent verification presumes well-formed runs; when
                # views interleave, every extent is wrong for the same
                # root cause, so reporting them would only bury the
                # interleaving violation in noise.
                self._check_extents(run_extents)
        if chain != list(tree.leaf_page_ids):
            self._flag(
                LEAF_CHAIN_BROKEN,
                f"next-leaf chain {chain} disagrees with the tree's leaf "
                f"page index {list(tree.leaf_page_ids)}",
            )
        if total_entries != tree.count:
            self._flag(
                COUNT_MISMATCH,
                f"leaves hold {total_entries} entries, tree counter says "
                f"{tree.count}",
            )
        return chain

    def _check_full(
        self, prev_leaf: Tuple[int, RLeafNode], successor: RLeafNode
    ) -> None:
        """Flag a non-final run leaf that was closed before it was full.

        Row-major leaves are slot-filled: full means ``leaf_capacity``
        entries.  Columnar leaves are byte-filled: full means the
        successor leaf's first entry would no longer have fit.
        """
        fill_page, prev = prev_leaf
        if prev.columnar:
            if not prev.points or not successor.points:
                return
            size = columnar_leaf_size(prev.points, prev.arity, prev.n_aggs)
            next_cost = columnar_entry_cost(
                prev.points[-1], successor.points[0], prev.n_aggs
            )
            if (
                next_cost > 0
                and size + next_cost <= PAGE_SIZE
                and len(prev) < MAX_LEAF_ENTRIES
            ):
                self._flag(
                    LEAF_UNDERFILLED,
                    f"non-final columnar leaf of a view run holds {size} "
                    f"encoded bytes; the next run entry ({next_cost} "
                    f"bytes) would still have fit in the {PAGE_SIZE}-byte "
                    f"page",
                    page_id=fill_page,
                    view_id=prev.view_id,
                )
            return
        cap = leaf_capacity(prev.arity, prev.n_aggs)
        if len(prev) < cap:
            self._flag(
                LEAF_UNDERFILLED,
                f"non-final leaf of a view run holds {len(prev)} "
                f"entries, capacity is {cap}",
                page_id=fill_page,
                view_id=prev.view_id,
            )

    def _check_leaf(self, node: RLeafNode, page_id: int) -> None:
        """Per-leaf shape checks: arity, padding elision, value width."""
        dims = self.tree.dims
        if not 0 <= node.arity <= dims:
            self._flag(
                BAD_ARITY,
                f"leaf arity {node.arity} does not fit dimensionality "
                f"{dims}",
                page_id=page_id,
                view_id=node.view_id,
            )
            return
        if self.expected_views is not None:
            expected = self.expected_views.get(node.view_id)
            if expected is None:
                self._flag(
                    UNKNOWN_VIEW,
                    f"leaf belongs to view {node.view_id}, which is not "
                    f"registered on this tree",
                    page_id=page_id,
                    view_id=node.view_id,
                )
            else:
                arity, n_aggs = expected
                if node.arity != arity or node.n_aggs != n_aggs:
                    self._flag(
                        BAD_ARITY,
                        f"leaf stores {node.arity} coords / {node.n_aggs} "
                        f"values; view {node.view_id} requires {arity} / "
                        f"{n_aggs} (compressed-leaf contract)",
                        page_id=page_id,
                        view_id=node.view_id,
                    )
        if not self.packed:
            return
        for point in node.points:
            if any(coord <= 0 for coord in point):
                self._flag(
                    NONPOSITIVE_COORD,
                    f"point {point} stores a non-positive coordinate; the "
                    f"valid mapping elides padding zeros, so stored "
                    f"coordinates must be > 0",
                    page_id=page_id,
                    view_id=node.view_id,
                )
                break

    def _check_sorted(
        self,
        node: RLeafNode,
        page_id: int,
        prev_key: Optional[Tuple[int, ...]],
    ) -> Optional[Tuple[int, ...]]:
        """Enforce strict reversed-coordinate order across the chain."""
        dims = self.tree.dims
        for point in node.points:
            key = sort_key(node.padded_point(point, dims), dims)
            if prev_key is not None and key <= prev_key:
                self._flag(
                    CHAIN_UNSORTED,
                    f"point {point} is out of packing sort order "
                    f"(key {key} <= previous {prev_key})",
                    page_id=page_id,
                    view_id=node.view_id,
                )
                return prev_key
            prev_key = key
        return prev_key

    def _check_extents(
        self, run_extents: List[Tuple[int, int, int]]
    ) -> None:
        """Verify persisted leaf-run extents against the actual chain.

        Trees without recorded extents (dynamic builds, checkpoints
        predating the field) are skipped — the fast path falls back to
        the descent for them, so there is nothing to betray a query.
        """
        recorded = self.tree.view_extents
        if not recorded:
            return
        actual = {
            view_id: (first, last)
            for view_id, first, last in run_extents
        }
        for view_id in sorted(recorded):
            extent = tuple(recorded[view_id])
            found = actual.get(view_id)
            if extent == EMPTY_EXTENT:
                # Explicit zero-row sentinel: valid exactly when the
                # chain really holds no leaves for the view.
                if found is not None:
                    self._flag(
                        RUN_EXTENT_MISMATCH,
                        f"catalog records an empty run, but the leaf "
                        f"chain holds leaves [{found[0]}, {found[1]}] "
                        f"for this view",
                        view_id=view_id,
                    )
                continue
            if found is None:
                self._flag(
                    RUN_EXTENT_MISMATCH,
                    f"catalog records leaf-run extent {extent}, but the "
                    f"leaf chain holds no run for this view",
                    view_id=view_id,
                )
            elif extent != found:
                self._flag(
                    RUN_EXTENT_MISMATCH,
                    f"catalog leaf-run extent {extent} disagrees with the "
                    f"chain's actual run [{found[0]}, {found[1]}]",
                    view_id=view_id,
                )
        for view_id, first, last in run_extents:
            if view_id not in recorded:
                self._flag(
                    RUN_EXTENT_MISMATCH,
                    f"leaf chain holds a run [{first}, {last}] with no "
                    f"recorded extent in the catalog",
                    view_id=view_id,
                )
        # Runs ascend by arity (== view id inside a Cubetree), so the
        # recorded extents must appear at monotonically increasing chain
        # positions when visited in view-id order.
        positions = {
            pid: i for i, pid in enumerate(self.tree.leaf_page_ids)
        }
        prev_end: Optional[int] = None
        for view_id in sorted(recorded):
            first, last = recorded[view_id]
            if (first, last) == EMPTY_EXTENT:
                continue  # zero-row runs occupy no chain positions
            lo = positions.get(first)
            hi = positions.get(last)
            if lo is None or hi is None or lo > hi:
                self._flag(
                    RUN_EXTENT_MISMATCH,
                    f"leaf-run extent [{first}, {last}] does not name an "
                    f"ordered span of the leaf chain",
                    view_id=view_id,
                )
                continue
            if prev_end is not None and lo <= prev_end:
                self._flag(
                    RUN_EXTENT_MISMATCH,
                    f"leaf-run extent [{first}, {last}] overlaps or "
                    f"precedes the previous view's run — runs must be "
                    f"disjoint and in ascending order",
                    view_id=view_id,
                )
            prev_end = hi

    def _check_runs(self, runs: List[Tuple[int, int]]) -> bool:
        """Views must form contiguous runs in ascending arity order.

        Returns True when the run structure is clean (extent checks only
        make sense then).
        """
        ok = True
        seen_views: Dict[int, int] = {}
        prev_arity: Optional[int] = None
        for run_index, (view_id, arity) in enumerate(runs):
            if view_id in seen_views:
                ok = False
                self._flag(
                    VIEW_INTERLEAVED,
                    f"view reappears at run {run_index} after its run "
                    f"{seen_views[view_id]} ended — views must occupy one "
                    f"contiguous run of leaves",
                    view_id=view_id,
                )
                continue
            seen_views[view_id] = run_index
            if prev_arity is not None and arity <= prev_arity:
                ok = False
                self._flag(
                    VIEW_INTERLEAVED,
                    f"run of arity {arity} follows a run of arity "
                    f"{prev_arity}; packed runs must ascend strictly by "
                    f"arity",
                    view_id=view_id,
                )
            prev_arity = arity
        return ok
