"""Repo-specific AST lint rules for the ``repro`` codebase.

These are conventions the storage engine depends on but no generic
linter knows about:

``runtime-assert``
    No ``assert`` for runtime validation in non-test code.  Asserts
    vanish under ``python -O``; raise a typed exception from
    :mod:`repro.errors` instead.
``direct-disk-read``
    No ``*.disk.read_page(...)`` outside the buffer pool.  Reads that
    bypass :class:`~repro.storage.buffer.BufferPool` are invisible to
    the LRU, the hit-ratio statistics, and the pin protocol.
``float-equality``
    No ``==`` / ``!=`` against float literals or ``float(...)`` calls.
    Measure values are accumulated float64 aggregates; compare with a
    tolerance (``math.isclose``) instead.
``mutable-default``
    No mutable default arguments (list/dict/set literals or
    constructors) — the default is shared across calls.
``magic-page-size``
    No literal ``4096`` outside ``constants.py``; use
    :data:`repro.constants.PAGE_SIZE` so page-geometry experiments can
    vary it in one place.
``struct-in-loop``
    No per-record ``pack``/``unpack``/``pack_into``/``unpack_from``
    calls inside a loop or comprehension.  One struct call per record
    is the hot-path pattern the batched codec APIs
    (:meth:`RecordCodec.encode_many`, :meth:`RecordCodec.decode_many`,
    ``EntryCodec``) replaced; whole-page batches are one call.
    ``iter_unpack`` is exempt — it *is* the batched form.
``leaf-entry-loop``
    No per-entry loops over ``leaf.points`` / ``leaf.values`` in the
    query path (``repro/query/`` and ``repro/rtree/tree.py``; see
    ``PATH_RESTRICTIONS``).  Leaf consumption belongs in the column
    kernels (:mod:`repro.rtree.kernels`) or one of the sanctioned
    scalar-fallback helpers, so columnar leaves keep their vectorized
    fast path.  The intentional scalar fallbacks are recorded in
    ``tools/lint-baseline.json``; new sites must justify themselves or
    go through the kernels.  Attribute loops only — ``dict.values()``
    method calls never match.

Findings can be suppressed per line with ``# lint: ignore[rule-id]``.
The runner for CI and pre-commit use is ``tools/lint.py``.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: rule id -> short description (the registry ``tools/lint.py`` prints).
RULES: Dict[str, str] = {  # repro: read-only
    "runtime-assert": (
        "assert used for runtime validation (vanishes under python -O); "
        "raise a repro.errors exception"
    ),
    "direct-disk-read": (
        "DiskManager.read_page called outside the BufferPool; go through "
        "the pool so the read is cached, priced, and pinned"
    ),
    "float-equality": (
        "== / != against a float value; use a tolerance (math.isclose) "
        "for measure comparisons"
    ),
    "mutable-default": (
        "mutable default argument is shared across calls; default to "
        "None and create inside the function"
    ),
    "magic-page-size": (
        "magic page-size literal; use repro.constants.PAGE_SIZE"
    ),
    "struct-in-loop": (
        "per-record struct pack/unpack inside a loop; batch the page "
        "with encode_many/decode_many/iter_unpack instead"
    ),
    "sequential-fetch-loop": (
        "BufferPool.fetch_page called in a loop over a page range; use "
        "the run-scan helpers (RTree._scan_leaves / pool.prefetch_run) "
        "so sequential reads go through scan admission and read-ahead"
    ),
    "leaf-entry-loop": (
        "per-entry loop over leaf.points/leaf.values in the query path; "
        "go through the column kernels (repro.rtree.kernels) or a "
        "baselined scalar-fallback helper"
    ),
}

#: Per-rule path suffixes (POSIX-style) that are exempt by design.
PATH_EXEMPTIONS: Dict[str, Tuple[str, ...]] = {  # repro: read-only
    # The pool *is* the one sanctioned DiskManager client; the manager's
    # own module exercises itself.
    "direct-disk-read": (
        "repro/storage/buffer.py",
        "repro/storage/disk.py",
    ),
    # The one place the literal is allowed to exist.
    "magic-page-size": ("repro/constants.py",),
    # The pool owns the sanctioned sequential-read helper (prefetch_run),
    # which necessarily iterates a page range itself.
    "sequential-fetch-loop": ("repro/storage/buffer.py",),
}

#: Per-rule path markers the rule is *restricted to*: a file matches the
#: rule only when its normalized path contains one of the markers.
#: (The inverse of PATH_EXEMPTIONS — opt-in rather than opt-out.)
PATH_RESTRICTIONS: Dict[str, Tuple[str, ...]] = {  # repro: read-only
    # Leaf consumption is only policed where queries read leaves: the
    # query layer and the tree's search machinery.  Packers, codecs,
    # mergers, and checkers legitimately walk entries row by row.
    "leaf-entry-loop": ("repro/query/", "repro/rtree/tree.py"),
}

_PAGE_SIZE_LITERAL = 4096  # lint: ignore[magic-page-size]
_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([a-z\-,\s]+)\]")


@dataclass(frozen=True)
class LintFinding:
    """One lint rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """``path:line:col: [rule] message`` (clickable in most UIs)."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"


def is_test_path(path: str) -> bool:
    """True for pytest files/dirs, where asserts are the idiom."""
    parts = _normalize(path).split("/")
    if any(part in ("tests", "test") for part in parts):
        return True
    base = parts[-1]
    return base.startswith("test_") or base == "conftest.py"


def lint_source(
    source: str, path: str = "<string>"
) -> List[LintFinding]:
    """Lint one module's source text; returns findings in line order.

    A file that does not parse yields a single ``syntax-error`` finding
    rather than raising, so one broken file cannot take down the whole
    lint run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(
            "syntax-error", path, exc.lineno or 1, (exc.offset or 1) - 1,
            f"file does not parse: {exc.msg}",
        )]
    exempt = _exempt_rules(path)
    visitor = _LintVisitor(path, exempt)
    visitor.visit(tree)
    suppressed = _suppressions(source)
    findings = [
        finding
        for finding in visitor.findings
        if finding.rule not in suppressed.get(finding.line, set())
    ]
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_file(path: str) -> List[LintFinding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def iter_python_files(root: str) -> Iterator[str]:
    """Yield every ``.py`` file under a directory (or the file itself)."""
    if os.path.isfile(root):
        if root.endswith(".py"):
            yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if not d.startswith(".") and d != "__pycache__"
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_paths(
    paths: Iterable[str], include_tests: bool = False
) -> List[LintFinding]:
    """Lint every Python file under the given paths."""
    findings: List[LintFinding] = []
    for root in paths:
        for path in iter_python_files(root):
            if not include_tests and is_test_path(path):
                continue
            findings.extend(lint_file(path))
    return findings


# ----------------------------------------------------------------------
# implementation
# ----------------------------------------------------------------------
def _normalize(path: str) -> str:
    return path.replace(os.sep, "/")


def _exempt_rules(path: str) -> Set[str]:
    normalized = _normalize(path)
    exempt = {
        rule
        for rule, suffixes in PATH_EXEMPTIONS.items()
        if any(normalized.endswith(suffix) for suffix in suffixes)
    }
    for rule, markers in PATH_RESTRICTIONS.items():
        if not any(marker in normalized for marker in markers):
            exempt.add(rule)
    if is_test_path(path):
        exempt.add("runtime-assert")
    return exempt


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """``# lint: ignore[rule]`` markers, keyed by line number."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            out[lineno] = {rule for rule in rules if rule}
    return out


def _is_floaty(node: ast.expr) -> bool:
    """Conservatively true when an expression is statically a float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    return False


_MUTABLE_CONSTRUCTORS = ("list", "dict", "set")

#: struct-module call names that are per-record when issued in a loop.
#: ``iter_unpack`` is deliberately absent — it is the batched form.
_STRUCT_CALLS = frozenset({"pack", "unpack", "pack_into", "unpack_from"})


def _is_range_iter(node: ast.expr) -> bool:
    """True for ``range(...)`` loop iterables — the page-range pattern."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    )


#: Leaf entry sequences the query path must consume through the kernels.
_LEAF_ENTRY_ATTRS = frozenset({"points", "values"})


def _leaf_entry_attr(node: ast.expr) -> Optional[str]:
    """The ``.points``/``.values`` attribute a loop iterable reads, if any.

    Walks the whole iterable expression so wrappers like
    ``zip(leaf.points, leaf.values)`` and ``enumerate(leaf.points)``
    still match.  Attributes used as a call's function (``d.values()``)
    are method calls on something else entirely and never match.
    """
    called = {
        id(child.func)
        for child in ast.walk(node)
        if isinstance(child, ast.Call)
    }
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and child.attr in _LEAF_ENTRY_ATTRS
            and id(child) not in called
        ):
            return child.attr
    return None


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS
        )
    return False


class _LintVisitor(ast.NodeVisitor):
    """Collects findings for every enabled rule in one AST walk."""

    def __init__(self, path: str, exempt: Set[str]) -> None:
        self.path = path
        self.exempt = exempt
        self.findings: List[LintFinding] = []
        self._loop_depth = 0
        self._range_loop_depth = 0

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.exempt:
            return
        self.findings.append(
            LintFinding(
                rule,
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                message,
            )
        )

    # -- runtime-assert ------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._flag(
            "runtime-assert",
            node,
            "assert statement in production code; raise a typed "
            "exception from repro.errors instead",
        )
        self.generic_visit(node)

    # -- direct-disk-read / struct-in-loop -----------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "read_page"
            and self._is_disk_ref(func.value)
        ):
            self._flag(
                "direct-disk-read",
                node,
                "read bypasses the BufferPool; use pool.fetch_page so "
                "the access is cached and pinned",
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _STRUCT_CALLS
            and self._loop_depth > 0
        ):
            self._flag(
                "struct-in-loop",
                node,
                f"per-record .{func.attr}() inside a loop; batch the "
                f"whole page (encode_many/decode_many/iter_unpack)",
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "fetch_page"
            and self._range_loop_depth > 0
        ):
            self._flag(
                "sequential-fetch-loop",
                node,
                "fetch_page in a loop over a sequential page range "
                "bypasses scan admission and read-ahead; use the "
                "run-scan helper instead",
            )
        self.generic_visit(node)

    # -- struct-in-loop loop tracking ----------------------------------
    def _visit_loop(self, node: ast.AST) -> None:
        ranged = isinstance(node, ast.For) and _is_range_iter(node.iter)
        self._check_leaf_entry_loop(node)
        self._loop_depth += 1
        if ranged:
            self._range_loop_depth += 1
        self.generic_visit(node)
        if ranged:
            self._range_loop_depth -= 1
        self._loop_depth -= 1

    # -- leaf-entry-loop ------------------------------------------------
    def _check_leaf_entry_loop(self, node: ast.AST) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
        ):
            iters = [gen.iter for gen in node.generators]
        else:  # while loops have no iterable to inspect
            return
        for iterable in iters:
            attr = _leaf_entry_attr(iterable)
            if attr is not None:
                self._flag(
                    "leaf-entry-loop",
                    node,
                    f"per-entry loop over leaf .{attr}; go through the "
                    f"column kernels (repro.rtree.kernels) or a "
                    f"scalar-fallback helper",
                )
                return

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop
    visit_ListComp = _visit_loop
    visit_SetComp = _visit_loop
    visit_DictComp = _visit_loop
    visit_GeneratorExp = _visit_loop

    @staticmethod
    def _is_disk_ref(node: ast.expr) -> bool:
        """Matches ``disk`` / ``*.disk`` / ``*.disk_manager`` receivers."""
        if isinstance(node, ast.Name):
            return node.id in ("disk", "disk_manager")
        if isinstance(node, ast.Attribute):
            return node.attr in ("disk", "disk_manager")
        return False

    # -- float-equality ------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floaty(left) or _is_floaty(right):
                self._flag(
                    "float-equality",
                    node,
                    "exact equality against a float; use math.isclose "
                    "(measure values are accumulated float64 states)",
                )
                break
        self.generic_visit(node)

    # -- mutable-default -----------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self._flag(
                    "mutable-default",
                    default,
                    f"mutable default in {node.name}(); the object is "
                    f"shared across every call",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- magic-page-size -----------------------------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            isinstance(node.value, int)
            and not isinstance(node.value, bool)
            and node.value == _PAGE_SIZE_LITERAL
        ):
            self._flag(
                "magic-page-size",
                node,
                "literal 4096; use repro.constants.PAGE_SIZE",
            )
        self.generic_visit(node)


def format_findings(findings: Sequence[LintFinding]) -> str:
    """Render findings plus a one-line summary."""
    lines = [finding.format() for finding in findings]
    lines.append(
        f"{len(findings)} finding(s) across "
        f"{len({finding.path for finding in findings})} file(s)"
        if findings
        else "0 findings"
    )
    return "\n".join(lines)
