"""Flow-aware invariant rules over the repro source tree.

Four rules that need paths, not nodes (see :mod:`repro.analysis.cfg` and
:mod:`repro.analysis.dataflow`):

``pin-balance``
    Every page acquired through ``BufferPool.fetch_page`` /
    ``BufferPool.new_page`` (or the trees' ``_fetch_node`` wrapper) must
    reach a matching release (``unpin_page`` / ``_release`` /
    ``_flush_node`` / ``discard_page``) on **every** path out of the
    enclosing function — including generator abandonment at a ``yield``
    and explicit ``raise`` exits.  The alias analysis tracks which local
    names may hold each pinned page; ownership transfers (returning the
    page, or passing it to a call whose result is returned) close the
    obligation in the acquiring function.

``crash-point-coverage``
    Every durable write site in the checkpoint/disk layer (file-handle
    ``.write``, ``os.rename``/``replace``/``truncate``,
    ``shutil.rmtree``) must be dominated by a
    :class:`~repro.storage.wal.CrashPoint` hit — either directly, via a
    helper that hits (``_crash_hit``), via the guarded
    ``if self.crash_point is not None: ...hit(...)`` idiom, or because
    *every* intra-project caller hits before delegating.  ``os.fsync``
    and ``os.remove`` are deliberately not durable sites: fsync only
    publishes bytes already covered by the preceding write's hit, and
    file removal is modelled as non-recoverable cleanup.

``obs-isolation``
    The observability core (``repro/obs/`` minus the workload harness
    ``bench.py``) must not import or transitively call into storage cost
    accounting (``IOCostModel.record_read``/``record_write``), and no
    instrumented production module may *branch* on metrics state — the
    zero-simulated-drift guarantee: unplugging metrics must not change a
    single simulated I/O.

``shared-state``
    The concurrency-readiness audit for the ROADMAP item-1 server:
    module-level mutable containers, singleton instances, names rebound
    via ``global``, ``functools.lru_cache`` module caches, and
    ``*cache*`` instance attributes mutated outside ``__init__`` are
    flagged unless annotated::

        _REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
        _ENABLED = False       # repro: worker-local
        KEYWORDS = {...}       # repro: read-only

    ``read-only`` additionally promises the object is never mutated
    after import; a mutation of a read-only-annotated name is itself a
    finding.

Findings reuse :class:`~repro.analysis.lint.LintFinding` and honour the
same ``# lint: ignore[rule]`` suppressions.  A committed baseline
(``tools/flow-baseline.json``) records accepted findings by
(rule, path, message) — line-number drift does not invalidate it — so CI
gates on *new* violations only.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    module_name_for_path,
)
from repro.analysis.cfg import (
    CFG,
    CFGNode,
    FunctionNode,
    build_cfg,
    iter_functions,
    walk_statement,
)
from repro.analysis.dataflow import ForwardAnalysis, run_forward
from repro.analysis.lint import (
    LintFinding,
    _normalize,
    _suppressions,
    is_test_path,
    iter_python_files,
)

#: rule id -> short description (merged into ``tools/lint.py
#: --list-rules``).
FLOW_RULES: Dict[str, str] = {  # repro: read-only
    "pin-balance": (
        "a page pinned by fetch_page/new_page/_fetch_node may not be "
        "unpinned on every path out of the function (including yield "
        "abandonment and raise exits)"
    ),
    "crash-point-coverage": (
        "a durable write site (file write/rename/truncate/rmtree) in "
        "the checkpoint layer is not dominated by a CrashPoint hit"
    ),
    "obs-isolation": (
        "observability reaches storage cost accounting, or production "
        "code branches on metrics state (breaks zero simulated-I/O "
        "drift)"
    ),
    "shared-state": (
        "module-level mutable state, singleton, or cache without a "
        "concurrency annotation (# repro: guarded-by(<lock>) / "
        "worker-local / read-only)"
    ),
}

#: Path suffixes exempt per flow rule, by design.
FLOW_PATH_EXEMPTIONS: Dict[str, Tuple[str, ...]] = {  # repro: read-only
    # The pool implements the pin protocol; inside it, pin_count
    # manipulation is the mechanism, not a client obligation.
    "pin-balance": ("repro/storage/buffer.py",),
}

#: Only these modules have durable write sites worth auditing; the rest
#: of the tree writes through them.
CRASH_AUDITED_SUFFIXES: Tuple[str, ...] = (
    "repro/core/persistence.py",
    "repro/storage/disk.py",
    "repro/storage/wal.py",
)

#: The observability core: must stay import- and call-isolated from the
#: engine.  ``obs/bench.py`` is the workload harness — it *drives* the
#: engine by design and is exempt.
OBS_CORE_SUFFIXES: Tuple[str, ...] = (
    "repro/obs/__init__.py",
    "repro/obs/registry.py",
    "repro/obs/trace.py",
)

#: Engine-layer module prefixes the obs core may not import.
ENGINE_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.storage",
    "repro.core",
    "repro.rtree",
    "repro.btree",
    "repro.query",
    "repro.relational",
    "repro.sql",
    "repro.warehouse",
    "repro.experiments",
)

#: Paths where branching on metrics is the point (reporting layers).
METRIC_BRANCH_EXEMPT_PREFIXES: Tuple[str, ...] = (
    "repro/obs/",
    "repro/experiments/",
    "repro/cli.py",
)

_ANNOTATION_RE = re.compile(
    r"#\s*repro:\s*(guarded-by\(([^)]*)\)|worker-local|read-only)"
)


@dataclass(frozen=True)
class Annotation:
    """One ``# repro: ...`` concurrency annotation on a source line."""

    kind: str  # "guarded-by" | "worker-local" | "read-only"
    detail: str = ""

    def format(self) -> str:
        if self.kind == "guarded-by":
            return f"guarded-by({self.detail})"
        return self.kind


def parse_annotations(source: str) -> Dict[int, Annotation]:
    """``# repro: ...`` markers, keyed by line number."""
    out: Dict[int, Annotation] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ANNOTATION_RE.search(line)
        if not match:
            continue
        if match.group(1).startswith("guarded-by"):
            out[lineno] = Annotation("guarded-by", match.group(2).strip())
        else:
            out[lineno] = Annotation(match.group(1))
    return out


@dataclass(frozen=True)
class SharedStateEntry:
    """One shared-state site for the concurrency-readiness report."""

    path: str
    line: int
    name: str
    description: str
    annotation: Optional[str]  # None = unannotated (also a finding)


@dataclass
class FlowReport:
    """Everything one flow-analysis run produced."""

    findings: List[LintFinding] = field(default_factory=list)
    inventory: List[SharedStateEntry] = field(default_factory=list)


@dataclass
class _Module:
    path: str
    source: str
    tree: ast.Module
    annotations: Dict[int, Annotation]
    suppressions: Dict[int, Set[str]]

    @property
    def norm_path(self) -> str:
        return _normalize(self.path)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def analyze_sources(
    sources: Mapping[str, str], include_tests: bool = False
) -> FlowReport:
    """Run every flow rule over a {path: source} mapping."""
    modules: List[_Module] = []
    for path in sorted(sources):
        if not include_tests and is_test_path(path):
            continue
        source = sources[path]
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # the classic lint reports syntax errors
        modules.append(
            _Module(
                path,
                source,
                tree,
                parse_annotations(source),
                _suppressions(source),
            )
        )

    graph = CallGraph.from_sources(
        {module.path: module.source for module in modules}
    )
    hitters = _hitter_names(graph)
    report = FlowReport()

    analyses = _FunctionAnalyses(hitters)
    for module in modules:
        report.findings.extend(_check_pin_balance(module))
        report.findings.extend(
            _check_crash_coverage(module, graph, analyses)
        )
        report.findings.extend(_check_metric_branches(module))
        report.findings.extend(_check_obs_imports(module))
        _check_shared_state(module, report)
    report.findings.extend(_check_obs_reachability(modules, graph))

    by_path = {module.path: module for module in modules}
    report.findings = [
        finding
        for finding in report.findings
        if finding.rule
        not in by_path[finding.path].suppressions.get(
            finding.line, set()
        )
    ]
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def analyze_paths(
    paths: Iterable[str], include_tests: bool = False
) -> FlowReport:
    """Run every flow rule over files/directories on disk."""
    sources: Dict[str, str] = {}
    for root in paths:
        for path in iter_python_files(root):
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read()
    return analyze_sources(sources, include_tests=include_tests)


def _path_exempt(rule: str, norm_path: str) -> bool:
    return any(
        norm_path.endswith(suffix)
        for suffix in FLOW_PATH_EXEMPTIONS.get(rule, ())
    )


# ----------------------------------------------------------------------
# rule 1: pin-balance
# ----------------------------------------------------------------------
_PIN_ACQUIRERS = frozenset({"fetch_page", "new_page", "_fetch_node"})
_PIN_RELEASERS_BY_ID = frozenset({"unpin_page", "discard_page"})


@dataclass(frozen=True)
class _PinSite:
    """One acquisition site: where a page gets pinned."""

    line: int
    col: int
    call_text: str
    id_expr: Optional[str]  # unparsed page-id argument, when there is one


#: may-analysis state: open acquisition site -> names that may alias it.
_PinState = Tuple[Tuple[_PinSite, FrozenSet[str]], ...]


class _PinAnalysis(ForwardAnalysis[_PinState]):
    def __init__(self) -> None:
        self.sites: Set[_PinSite] = set()

    def initial(self) -> _PinState:
        return ()

    def merge(self, a: _PinState, b: _PinState) -> _PinState:
        merged: Dict[_PinSite, FrozenSet[str]] = dict(a)
        for site, aliases in b:
            merged[site] = merged.get(site, frozenset()) | aliases
        return _freeze_pins(merged)

    def transfer(self, node: CFGNode, state: _PinState) -> _PinState:
        stmt = node.stmt
        if stmt is None:
            return state
        pins: Dict[_PinSite, FrozenSet[str]] = dict(state)
        calls = [
            expr
            for expr in walk_statement(stmt)
            if isinstance(expr, ast.Call)
        ]
        self._apply_releases(calls, pins)
        self._apply_assignments(stmt, pins)
        self._apply_acquisitions(stmt, calls, pins)
        self._apply_escapes(stmt, pins)
        return _freeze_pins(pins)

    # -- releases ------------------------------------------------------
    def _apply_releases(
        self,
        calls: Sequence[ast.Call],
        pins: Dict[_PinSite, FrozenSet[str]],
    ) -> None:
        for call in calls:
            name = _callee_name(call)
            if name in _PIN_RELEASERS_BY_ID and call.args:
                arg = call.args[0]
                for site in list(pins):
                    if _release_arg_matches(arg, pins[site], site):
                        del pins[site]
            elif name == "_release" and call.args:
                self._release_by_var(call.args[0], pins)
            elif name == "_flush_node" and len(call.args) >= 2:
                self._release_by_var(call.args[1], pins)

    @staticmethod
    def _release_by_var(
        arg: ast.expr, pins: Dict[_PinSite, FrozenSet[str]]
    ) -> None:
        if not isinstance(arg, ast.Name):
            return
        for site in list(pins):
            if arg.id in pins[site]:
                del pins[site]

    # -- alias copy / rebinding ----------------------------------------
    def _apply_assignments(
        self, stmt: ast.stmt, pins: Dict[_PinSite, FrozenSet[str]]
    ) -> None:
        pairs: List[Tuple[str, Optional[str]]] = []  # (target, source)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                pairs.extend(_assignment_pairs(target, stmt.value))
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            pairs.extend(_assignment_pairs(stmt.target, stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            pairs.extend(_assignment_pairs(stmt.target, None))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    pairs.extend(
                        _assignment_pairs(item.optional_vars, None)
                    )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    pairs.append((target.id, None))
        if not pairs:
            return
        # compute gains against the pre-assignment state, then rebind
        gains: Dict[_PinSite, Set[str]] = {}
        for target, source in pairs:
            if source is None:
                continue
            for site, aliases in pins.items():
                if source in aliases:
                    gains.setdefault(site, set()).add(target)
        rebound = {target for target, _ in pairs}
        for site in list(pins):
            remaining = pins[site] - rebound
            remaining |= frozenset(gains.get(site, set()))
            pins[site] = frozenset(remaining)

    # -- acquisitions --------------------------------------------------
    def _apply_acquisitions(
        self,
        stmt: ast.stmt,
        calls: Sequence[ast.Call],
        pins: Dict[_PinSite, FrozenSet[str]],
    ) -> None:
        for call in calls:
            name = _callee_name(call)
            if name not in _PIN_ACQUIRERS:
                continue
            aliases = _acquisition_aliases(stmt, call, name)
            id_expr: Optional[str] = None
            if name == "fetch_page" and call.args:
                id_expr = ast.unparse(call.args[0])
            site = _PinSite(
                call.lineno,
                call.col_offset,
                ast.unparse(call.func) + "(...)",
                id_expr,
            )
            self.sites.add(site)
            pins[site] = pins.get(site, frozenset()) | aliases

    # -- ownership transfer --------------------------------------------
    def _apply_escapes(
        self, stmt: ast.stmt, pins: Dict[_PinSite, FrozenSet[str]]
    ) -> None:
        escaping: Set[str] = set()
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            escaping |= _escaping_names(stmt.value)
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, (ast.Attribute, ast.Subscript))
            for t in stmt.targets
        ):
            escaping |= _escaping_names(stmt.value)
        if not escaping:
            return
        for site in list(pins):
            if pins[site] & escaping:
                del pins[site]


def _freeze_pins(
    pins: Mapping[_PinSite, FrozenSet[str]]
) -> _PinState:
    return tuple(
        sorted(
            pins.items(), key=lambda kv: (kv[0].line, kv[0].col)
        )
    )


def _assignment_pairs(
    target: ast.expr, value: Optional[ast.expr]
) -> List[Tuple[str, Optional[str]]]:
    """(bound name, aliased source name or None) pairs of an assignment."""
    if isinstance(target, ast.Name):
        source = value.id if isinstance(value, ast.Name) else None
        return [(target.id, source)]
    if isinstance(target, (ast.Tuple, ast.List)):
        values: List[Optional[ast.expr]]
        if isinstance(value, (ast.Tuple, ast.List)) and len(
            value.elts
        ) == len(target.elts):
            values = list(value.elts)
        else:
            values = [None] * len(target.elts)
        out: List[Tuple[str, Optional[str]]] = []
        for sub_target, sub_value in zip(target.elts, values):
            out.extend(_assignment_pairs(sub_target, sub_value))
        return out
    return []


def _acquisition_aliases(
    stmt: ast.stmt, call: ast.Call, acquirer: str
) -> FrozenSet[str]:
    """Names bound to the pinned page by the acquiring statement."""
    target: Optional[ast.expr] = None
    if isinstance(stmt, ast.Assign) and stmt.value is call:
        target = stmt.targets[0] if len(stmt.targets) == 1 else None
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is call:
        target = stmt.target
    if target is None:
        return frozenset()
    if acquirer == "_fetch_node":
        # the wrappers return (node, pinned page)
        if (
            isinstance(target, (ast.Tuple, ast.List))
            and len(target.elts) >= 2
            and isinstance(target.elts[1], ast.Name)
        ):
            return frozenset({target.elts[1].id})
        if isinstance(target, ast.Name):
            return frozenset({target.id})
        return frozenset()
    if isinstance(target, ast.Name):
        return frozenset({target.id})
    return frozenset()


def _release_arg_matches(
    arg: ast.expr, aliases: FrozenSet[str], site: _PinSite
) -> bool:
    """Does ``unpin_page(arg)`` release this acquisition?"""
    if isinstance(arg, ast.Name) and arg.id in aliases:
        return True
    if (
        isinstance(arg, ast.Attribute)
        and arg.attr == "page_id"
        and isinstance(arg.value, ast.Name)
        and arg.value.id in aliases
    ):
        return True
    if site.id_expr is not None and ast.unparse(arg) == site.id_expr:
        return True
    return False


def _escaping_names(expr: ast.expr) -> Set[str]:
    """Names whose object ownership a return/store hands elsewhere.

    Only *bare* occurrences count — the value itself, elements of a
    returned tuple/list, or direct call arguments.  ``page.page_id``
    does not transfer ownership of ``page``.
    """
    out: Set[str] = set()

    def visit(node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                visit(elt)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                visit(arg)
            for keyword in node.keywords:
                visit(keyword.value)
        elif isinstance(node, ast.IfExp):
            visit(node.body)
            visit(node.orelse)
        elif isinstance(node, ast.Starred):
            visit(node.value)

    visit(expr)
    return out


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _check_pin_balance(module: _Module) -> List[LintFinding]:
    if _path_exempt("pin-balance", module.norm_path):
        return []
    findings: List[LintFinding] = []
    for qual, func in iter_functions(module.tree):
        cfg = build_cfg(func)
        analysis = _PinAnalysis()
        in_states = run_forward(cfg, analysis)
        exit_state = in_states.get(cfg.exit)
        if not exit_state:
            continue
        for site, _aliases in exit_state:
            findings.append(
                LintFinding(
                    "pin-balance",
                    module.path,
                    site.line,
                    site.col,
                    f"page pinned by {site.call_text} in {qual}() may "
                    f"not be unpinned on every path out of the function",
                )
            )
    return findings


# ----------------------------------------------------------------------
# rule 2: crash-point-coverage
# ----------------------------------------------------------------------
_DURABLE_ATTR_CALLS = frozenset(
    {"rename", "replace", "truncate", "rmtree"}
)
_FILE_HANDLE_ATTRS = frozenset({"_file", "file"})


def _hitter_names(graph: CallGraph) -> FrozenSet[str]:
    """Simple names of functions that (transitively) hit a CrashPoint."""
    seeds = {
        qual
        for qual, info in graph.functions.items()
        if _contains_hit_call(info.node)
    }
    closure = graph.transitive_closure_matching(seeds)
    return frozenset(
        graph.functions[qual].simple_name for qual in closure
    )


def _contains_hit_call(func: FunctionNode) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "hit"
        ):
            return True
    return False


def _with_open_handles(func: FunctionNode) -> Set[str]:
    """Names bound by ``with open(...) as h`` (incl. ``path.open``)."""
    handles: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            name = _callee_name(expr)
            if name == "open" and isinstance(
                item.optional_vars, ast.Name
            ):
                handles.add(item.optional_vars.id)
    return handles


def _durable_calls(
    stmt: ast.stmt, handles: Set[str]
) -> List[ast.Call]:
    out: List[ast.Call] = []
    for node in walk_statement(stmt):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        attr = node.func.attr
        if attr in _DURABLE_ATTR_CALLS:
            out.append(node)
        elif attr == "write":
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in handles
            ):
                out.append(node)
            elif (
                isinstance(receiver, ast.Attribute)
                and receiver.attr in _FILE_HANDLE_ATTRS
            ):
                out.append(node)
    return out


def _mentions_crash_name(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "crash" in node.id:
            return True
        if isinstance(node, ast.Attribute) and "crash" in node.attr:
            return True
    return False


def _is_hit_marker(stmt: ast.stmt, hitters: FrozenSet[str]) -> bool:
    """Does executing this statement imply crash-point coverage?

    Either it hits (``*.hit(...)`` or a call into a transitively
    hitting helper), or it is the guarded idiom
    ``if <crash thing> is not None: ... .hit(...)`` — the None branch
    has no crash point to thread, so the fact holds on both arms.
    """
    for node in walk_statement(stmt):
        if not isinstance(node, ast.Call):
            continue
        name = _callee_name(node)
        if name == "hit" or (name is not None and name in hitters):
            return True
    if isinstance(stmt, ast.If) and _mentions_crash_name(stmt.test):
        for inner in ast.walk(stmt):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "hit"
            ):
                return True
    return False


class _CrashAnalysis(ForwardAnalysis[bool]):
    """Must-analysis: has a crash hit happened on *every* path here?"""

    def __init__(self, hitters: FrozenSet[str]) -> None:
        self.hitters = hitters

    def initial(self) -> bool:
        return False

    def merge(self, a: bool, b: bool) -> bool:
        return a and b

    def transfer(self, node: CFGNode, state: bool) -> bool:
        if node.stmt is not None and _is_hit_marker(
            node.stmt, self.hitters
        ):
            return True
        return state


class _FunctionAnalyses:
    """Lazy per-function CFG + crash must-analysis cache (for the
    all-callers-hit rescue)."""

    def __init__(self, hitters: FrozenSet[str]) -> None:
        self.hitters = hitters
        self._cache: Dict[int, Tuple[CFG, Dict[int, bool]]] = {}  # repro: worker-local

    def crash_states(
        self, func: FunctionNode
    ) -> Tuple[CFG, Dict[int, bool]]:
        key = id(func)
        if key not in self._cache:
            cfg = build_cfg(func)
            states = run_forward(cfg, _CrashAnalysis(self.hitters))
            self._cache[key] = (cfg, states)
        return self._cache[key]


def _check_crash_coverage(
    module: _Module, graph: CallGraph, analyses: _FunctionAnalyses
) -> List[LintFinding]:
    if not any(
        module.norm_path.endswith(suffix)
        for suffix in CRASH_AUDITED_SUFFIXES
    ):
        return []
    findings: List[LintFinding] = []
    for qual, func in iter_functions(module.tree):
        handles = _with_open_handles(func)
        cfg, states = analyses.crash_states(func)
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            durables = _durable_calls(node.stmt, handles)
            if not durables:
                continue
            if states.get(node.index, True):
                continue  # dominated by a hit (or unreachable)
            graph_qual = (
                f"{module_name_for_path(module.path)}:{qual}"
            )
            if graph_qual in graph.functions and _rescued_by_callers(
                graph_qual, graph, analyses, set()
            ):
                continue
            for call in durables:
                findings.append(
                    LintFinding(
                        "crash-point-coverage",
                        module.path,
                        call.lineno,
                        call.col_offset,
                        f"durable write {ast.unparse(call.func)}(...) "
                        f"in {qual}() is not preceded by a CrashPoint "
                        f"hit on every path",
                    )
                )
    return findings


def _rescued_by_callers(
    qualname: str,
    graph: CallGraph,
    analyses: _FunctionAnalyses,
    visited: Set[str],
) -> bool:
    """True when every intra-project caller hits before delegating."""
    if qualname in visited:
        return False
    visited.add(qualname)
    info = graph.functions[qualname]
    callers = graph.callers_of(qualname)
    if not callers:
        return False
    for caller in callers:
        cfg, states = analyses.crash_states(caller.node)
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            if not _stmt_calls(node.stmt, info.simple_name):
                continue
            if states.get(node.index, True):
                continue
            if not _rescued_by_callers(
                caller.qualname, graph, analyses, visited
            ):
                return False
    return True


def _stmt_calls(stmt: ast.stmt, simple_name: str) -> bool:
    for node in walk_statement(stmt):
        if isinstance(node, ast.Call) and _callee_name(
            node
        ) == simple_name:
            return True
    return False


# ----------------------------------------------------------------------
# rule 3: obs-isolation
# ----------------------------------------------------------------------
def _is_obs_core(norm_path: str) -> bool:
    return any(
        norm_path.endswith(suffix) for suffix in OBS_CORE_SUFFIXES
    )


def _check_obs_imports(module: _Module) -> List[LintFinding]:
    if not _is_obs_core(module.norm_path):
        return []
    findings: List[LintFinding] = []
    for node in ast.walk(module.tree):
        target: Optional[str] = None
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(ENGINE_MODULE_PREFIXES):
                    target = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.module.startswith(
                ENGINE_MODULE_PREFIXES
            ):
                target = node.module
        if target is not None:
            findings.append(
                LintFinding(
                    "obs-isolation",
                    module.path,
                    node.lineno,
                    node.col_offset,
                    f"observability core imports engine module "
                    f"{target}; obs must not feed back into storage "
                    f"cost accounting",
                )
            )
    return findings


def _forbidden_for_obs(info: FunctionInfo) -> bool:
    return (
        info.module == "repro.storage.iomodel"
        or info.simple_name in ("record_read", "record_write")
    )


def _check_obs_reachability(
    modules: Sequence[_Module], graph: CallGraph
) -> List[LintFinding]:
    core_paths = {
        module.path: module
        for module in modules
        if _is_obs_core(module.norm_path)
    }
    findings: List[LintFinding] = []
    for qual, info in sorted(graph.functions.items()):
        module = core_paths.get(info.path)
        if module is None:
            continue
        chain = graph.reaches(qual, _forbidden_for_obs)
        if chain is None:
            continue
        findings.append(
            LintFinding(
                "obs-isolation",
                info.path,
                info.node.lineno,
                info.node.col_offset,
                f"{qual} can reach storage cost accounting via "
                + " -> ".join(chain),
            )
        )
    return findings


def _check_metric_branches(module: _Module) -> List[LintFinding]:
    norm = module.norm_path
    if any(
        f"/{prefix}" in f"/{norm}" or norm.endswith(prefix)
        for prefix in METRIC_BRANCH_EXEMPT_PREFIXES
    ):
        return []
    handles: Set[str] = set()
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr
            in ("counter", "gauge", "histogram")
        ):
            handles.add(stmt.targets[0].id)
    if not handles:
        return []
    findings: List[LintFinding] = []
    for node in ast.walk(module.tree):
        tests: List[ast.expr] = []
        if isinstance(node, (ast.If, ast.While)):
            tests.append(node.test)
        elif isinstance(node, ast.IfExp):
            tests.append(node.test)
        elif isinstance(node, ast.Assert):
            tests.append(node.test)
        elif isinstance(node, ast.comprehension):
            tests.extend(node.ifs)
        for test in tests:
            used = {
                inner.id
                for inner in ast.walk(test)
                if isinstance(inner, ast.Name) and inner.id in handles
            }
            if used:
                findings.append(
                    LintFinding(
                        "obs-isolation",
                        module.path,
                        test.lineno,
                        test.col_offset,
                        f"hot path branches on metrics state "
                        f"({', '.join(sorted(used))}); control flow "
                        f"must not depend on observability",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# rule 4: shared-state
# ----------------------------------------------------------------------
_MUTABLE_CALL_NAMES = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "defaultdict",
        "OrderedDict",
        "deque",
        "Counter",
    }
)
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "appendleft",
    }
)


def _check_shared_state(module: _Module, report: FlowReport) -> None:
    tree = module.tree
    local_classes = {
        stmt.name
        for stmt in tree.body
        if isinstance(stmt, ast.ClassDef)
    }
    project_imports: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            if node.module is not None and node.module.startswith(
                "repro"
            ):
                for alias in node.names:
                    project_imports.add(alias.asname or alias.name)

    module_assign_line: Dict[str, int] = {}
    for stmt in tree.body:
        name = _single_name_target(stmt)
        if name is not None:
            module_assign_line.setdefault(name, stmt.lineno)

    def annotation_at(line: int) -> Optional[Annotation]:
        return module.annotations.get(line)

    def flag(
        line: int,
        col: int,
        name: str,
        description: str,
        annotation: Optional[Annotation],
    ) -> None:
        report.inventory.append(
            SharedStateEntry(
                module.path,
                line,
                name,
                description,
                annotation.format() if annotation else None,
            )
        )
        if annotation is None:
            report.findings.append(
                LintFinding(
                    "shared-state",
                    module.path,
                    line,
                    col,
                    f"{description}; annotate with # repro: "
                    f"guarded-by(<lock>) / worker-local / read-only",
                )
            )

    read_only_names: Set[str] = set()

    # -- module-level assignments --------------------------------------
    for stmt in tree.body:
        name = _single_name_target(stmt)
        if name is None:
            continue
        if name.startswith("__") and name.endswith("__"):
            continue  # __all__ and friends: conventionally immutable
        value = getattr(stmt, "value", None)
        if value is None:
            continue
        description = _shared_value_description(
            value, local_classes, project_imports
        )
        if description is None:
            # a handle derived from an annotated singleton (e.g.
            # _OBS_X = _REG.counter(...)) inherits that annotation
            continue
        annotation = annotation_at(stmt.lineno)
        if annotation is not None and annotation.kind == "read-only":
            read_only_names.add(name)
        flag(
            stmt.lineno,
            stmt.col_offset,
            name,
            f"module-level {description} '{name}' is shared process "
            f"state",
            annotation,
        )

    # -- names rebound via ``global`` ----------------------------------
    for func_qual, func in iter_functions(tree):
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Global):
                continue
            for name in stmt.names:
                def_line = module_assign_line.get(name, stmt.lineno)
                annotation = annotation_at(def_line) or annotation_at(
                    stmt.lineno
                )
                if annotation is not None and annotation.kind == (
                    "read-only"
                ):
                    report.findings.append(
                        LintFinding(
                            "shared-state",
                            module.path,
                            stmt.lineno,
                            stmt.col_offset,
                            f"'{name}' is annotated read-only but "
                            f"rebound via global in {func_qual}()",
                        )
                    )
                    continue
                flag(
                    stmt.lineno,
                    stmt.col_offset,
                    name,
                    f"module global '{name}' rebound at runtime in "
                    f"{func_qual}()",
                    annotation,
                )

    # -- functools.lru_cache module caches -----------------------------
    for stmt in tree.body:
        if not isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        for decorator in stmt.decorator_list:
            target = decorator
            if isinstance(target, ast.Call):
                target = target.func
            dec_name = None
            if isinstance(target, ast.Name):
                dec_name = target.id
            elif isinstance(target, ast.Attribute):
                dec_name = target.attr
            if dec_name not in ("lru_cache", "cache"):
                continue
            annotation = annotation_at(
                decorator.lineno
            ) or annotation_at(stmt.lineno)
            flag(
                decorator.lineno,
                decorator.col_offset,
                stmt.name,
                f"lru_cache on module function '{stmt.name}' is a "
                f"shared mutable cache",
                annotation,
            )

    # -- instance caches mutated outside __init__ ----------------------
    for class_node in tree.body:
        if not isinstance(class_node, ast.ClassDef):
            continue
        init_lines = _init_attr_lines(class_node)
        for method in class_node.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if method.name == "__init__":
                continue
            for line, col, attr in _cache_mutations(method):
                annotation = (
                    annotation_at(line)
                    or annotation_at(init_lines.get(attr, -1))
                )
                flag(
                    line,
                    col,
                    attr,
                    f"cache attribute 'self.{attr}' mutated outside "
                    f"__init__ (in {class_node.name}.{method.name})",
                    annotation,
                )

    # -- read-only contradiction ---------------------------------------
    if read_only_names:
        for func_qual, func in iter_functions(tree):
            for line, col, name in _name_mutations(
                func, read_only_names
            ):
                report.findings.append(
                    LintFinding(
                        "shared-state",
                        module.path,
                        line,
                        col,
                        f"'{name}' is annotated read-only but mutated "
                        f"in {func_qual}()",
                    )
                )


def _single_name_target(stmt: ast.stmt) -> Optional[str]:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    elif isinstance(stmt, ast.AnnAssign) and isinstance(
        stmt.target, ast.Name
    ):
        return stmt.target.id
    return None


def _shared_value_description(
    value: ast.expr,
    local_classes: Set[str],
    project_imports: Set[str],
) -> Optional[str]:
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "mutable dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "mutable list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "mutable set"
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            if func.id in _MUTABLE_CALL_NAMES:
                return f"mutable {func.id}()"
            if func.id in local_classes:
                return f"singleton {func.id}() instance"
            if func.id in project_imports:
                return f"singleton from {func.id}()"
    return None


def _init_attr_lines(class_node: ast.ClassDef) -> Dict[str, int]:
    """``self.X = ...`` line numbers inside ``__init__``."""
    out: Dict[str, int] = {}
    for method in class_node.body:
        if (
            isinstance(method, ast.FunctionDef)
            and method.name == "__init__"
        ):
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        out.setdefault(target.attr, node.lineno)
    return out


def _cache_mutations(
    method: FunctionNode,
) -> List[Tuple[int, int, str]]:
    """Mutations of ``self.*cache*`` attributes inside a method."""
    out: List[Tuple[int, int, str]] = []

    def is_cache_attr(node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and "cache" in node.attr.lower()
        ):
            return node.attr
        return None

    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = is_cache_attr(target.value)
                    if attr is not None:
                        out.append(
                            (node.lineno, node.col_offset, attr)
                        )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATOR_METHODS:
                attr = is_cache_attr(node.func.value)
                if attr is not None:
                    out.append(
                        (node.lineno, node.col_offset, attr)
                    )
    return out


def _name_mutations(
    func: FunctionNode, names: Set[str]
) -> List[Tuple[int, int, str]]:
    """Mutations of module-level names inside a function."""
    out: List[Tuple[int, int, str]] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    out.append(
                        (node.lineno, node.col_offset, target.value.id)
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    out.append(
                        (node.lineno, node.col_offset, target.value.id)
                    )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if (
                node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in names
            ):
                out.append(
                    (node.lineno, node.col_offset, node.func.value.id)
                )
    return out


# ----------------------------------------------------------------------
# suppression baseline
# ----------------------------------------------------------------------
BASELINE_SCHEMA_VERSION = 1


def canonical_path(path: str) -> str:
    """Repo-stable form of a finding path (suffix from ``repro/``)."""
    norm = _normalize(path)
    marker = norm.rfind("repro/")
    if marker >= 0:
        return norm[marker:]
    return norm


def finding_fingerprint(
    finding: LintFinding,
) -> Tuple[str, str, str]:
    """Baseline identity: line numbers deliberately excluded so
    unrelated edits do not invalidate accepted findings."""
    return (
        finding.rule,
        canonical_path(finding.path),
        finding.message,
    )


def findings_payload(findings: Sequence[LintFinding]) -> dict:
    """The JSON document shared by ``--format json``, the CI artifact,
    and the baseline file."""
    return {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "findings": [
            {
                "rule": finding.rule,
                "path": canonical_path(finding.path),
                "line": finding.line,
                "message": finding.message,
            }
            for finding in findings
        ],
    }


def load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    """Fingerprints accepted by a committed baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported flow baseline schema "
            f"{payload.get('schema_version')!r} in {path!r}"
        )
    return {
        (
            str(entry["rule"]),
            canonical_path(str(entry["path"])),
            str(entry["message"]),
        )
        for entry in payload.get("findings", [])
    }


def apply_baseline(
    findings: Sequence[LintFinding],
    baseline: Set[Tuple[str, str, str]],
) -> Tuple[List[LintFinding], int]:
    """Split findings into (new, count suppressed by the baseline)."""
    fresh: List[LintFinding] = []
    suppressed = 0
    for finding in findings:
        if finding_fingerprint(finding) in baseline:
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def format_inventory(inventory: Sequence[SharedStateEntry]) -> str:
    """Human-readable concurrency-readiness report."""
    if not inventory:
        return "shared-state inventory: empty"
    lines = [
        f"shared-state inventory ({len(inventory)} site(s)):"
    ]
    for entry in sorted(
        inventory, key=lambda e: (e.path, e.line)
    ):
        marker = entry.annotation or "UNANNOTATED"
        lines.append(
            f"  {canonical_path(entry.path)}:{entry.line}: "
            f"{entry.name} [{marker}] — {entry.description}"
        )
    return "\n".join(lines)
