"""Static and structural analysis for the Cubetree reproduction.

Two halves:

* :mod:`repro.analysis.fsck` — the structural verifier ("cubetree
  fsck") that walks packed R-trees / forests and machine-checks the
  paper's physical invariants (packed leaves, contiguous sorted view
  runs, compressed arity-k leaves, MBR containment).  Exposed on the
  command line as ``repro check`` and, behind ``REPRO_DEBUG_CHECKS``,
  as a post-condition of bulk load and merge-pack.
* :mod:`repro.analysis.lint` — repo-specific AST lint rules enforced
  over ``src/`` by ``tools/lint.py`` and CI.
"""

from repro.analysis.fsck import (
    FsckReport,
    Violation,
    check_cubetree,
    check_engine,
    check_forest,
    check_tree,
    debug_checks_enabled,
    set_debug_checks,
    verify_tree,
)
from repro.analysis.lint import (
    RULES,
    LintFinding,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "FsckReport",
    "Violation",
    "check_cubetree",
    "check_engine",
    "check_forest",
    "check_tree",
    "debug_checks_enabled",
    "set_debug_checks",
    "verify_tree",
    "RULES",
    "LintFinding",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
]
