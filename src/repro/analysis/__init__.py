"""Static and structural analysis for the Cubetree reproduction.

Two halves:

* :mod:`repro.analysis.fsck` — the structural verifier ("cubetree
  fsck") that walks packed R-trees / forests and machine-checks the
  paper's physical invariants (packed leaves, contiguous sorted view
  runs, compressed arity-k leaves, MBR containment).  Exposed on the
  command line as ``repro check`` and, behind ``REPRO_DEBUG_CHECKS``,
  as a post-condition of bulk load and merge-pack.
* :mod:`repro.analysis.lint` — repo-specific AST lint rules enforced
  over ``src/`` by ``tools/lint.py`` and CI.
* :mod:`repro.analysis.flowrules` — flow-aware rules (pin-balance,
  crash-point-coverage, obs-isolation, shared-state) built on the
  statement-level CFGs of :mod:`repro.analysis.cfg`, the worklist
  engine of :mod:`repro.analysis.dataflow`, and the heuristic call
  graph of :mod:`repro.analysis.callgraph`.  Exposed as
  ``repro check --flow`` and ``tools/lint.py --flow``.
"""

from repro.analysis.fsck import (
    FsckReport,
    Violation,
    check_cubetree,
    check_engine,
    check_forest,
    check_tree,
    debug_checks_enabled,
    set_debug_checks,
    verify_tree,
)
from repro.analysis.flowrules import (
    FLOW_RULES,
    FlowReport,
    SharedStateEntry,
    analyze_paths,
    analyze_sources,
)
from repro.analysis.lint import (
    RULES,
    LintFinding,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "FsckReport",
    "Violation",
    "check_cubetree",
    "check_engine",
    "check_forest",
    "check_tree",
    "debug_checks_enabled",
    "set_debug_checks",
    "verify_tree",
    "RULES",
    "LintFinding",
    "format_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
    "FLOW_RULES",
    "FlowReport",
    "SharedStateEntry",
    "analyze_paths",
    "analyze_sources",
]
