"""An intra-project call graph built from source text.

Resolution is deliberately heuristic — the analyzer runs on plain
source, without importing anything:

* ``f(...)`` resolves through the module's own ``def``s and its
  ``from repro.x import f`` / ``import repro.x`` statements;
* ``obj.m(...)`` resolves *receiver-agnostically* to every project
  function or method named ``m`` (plus, when ``obj`` is a recognised
  stdlib module alias like ``os``, to the external name ``os.m``).

The result over-approximates the real call relation, which is the right
direction for the flow rules that consume it: obs-isolation asks "can
anything in ``repro/obs/`` *reach* storage cost accounting?", and
crash-point coverage asks "does *every* caller of this helper hit a
crash point first?" — both want a superset of feasible edges.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.cfg import FunctionNode, iter_functions


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path (``.../repro/obs/trace.py``
    -> ``repro.obs.trace``); falls back to the basename stem."""
    norm = path.replace(os.sep, "/")
    marker = norm.rfind("repro/")
    if marker >= 0:
        tail = norm[marker:]
    else:
        tail = os.path.basename(norm)
    if tail.endswith(".py"):
        tail = tail[: -len(".py")]
    if tail.endswith("/__init__"):
        tail = tail[: -len("/__init__")]
    return tail.replace("/", ".")


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: resolved target ("repro.obs.registry:get_registry",
    #: "ext:os.rename") or a bare method/function name ("unpin_page")
    target: str


@dataclass
class FunctionInfo:
    """One project function or method."""

    qualname: str  # "repro.storage.disk:DiskManager.write_page"
    module: str
    simple_name: str  # "write_page"
    path: str
    node: FunctionNode
    calls: List[CallSite] = field(default_factory=list)


class CallGraph:
    """Project-wide call graph with name-based edge resolution."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self._by_simple_name: Dict[str, List[str]] = {}
        self.module_imports: Dict[str, Set[str]] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "CallGraph":
        """Build from a {path: source} mapping (also used by tests)."""
        graph = cls()
        for path, source in sorted(sources.items()):
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            graph._add_module(path, tree)
        return graph

    @classmethod
    def from_files(cls, paths: Iterable[str]) -> "CallGraph":
        sources: Dict[str, str] = {}
        for path in paths:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    sources[path] = handle.read()
            except OSError:
                continue
        return cls.from_sources(sources)

    def _add_module(self, path: str, tree: ast.Module) -> None:
        module = module_name_for_path(path)
        imports = _module_imports(tree)
        self.module_imports[module] = {
            target for target in imports.values()
        }
        local_defs = {
            node.name
            for node in tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        }
        for qual, func in iter_functions(tree):
            info = FunctionInfo(
                qualname=f"{module}:{qual}",
                module=module,
                simple_name=func.name,
                path=path,
                node=func,
            )
            info.calls = _extract_calls(func, imports, local_defs, module)
            self.functions[info.qualname] = info
            self._by_simple_name.setdefault(func.name, []).append(
                info.qualname
            )

    # -- queries -------------------------------------------------------
    def functions_named(self, simple_name: str) -> List[FunctionInfo]:
        return [
            self.functions[qual]
            for qual in self._by_simple_name.get(simple_name, [])
        ]

    def callees(self, qualname: str) -> Set[str]:
        """Qualnames of project functions this function may call."""
        info = self.functions.get(qualname)
        if info is None:
            return set()
        out: Set[str] = set()
        for site in info.calls:
            out.update(self._resolve(site.target, info.module))
        return out

    def _resolve(self, target: str, caller_module: str) -> Set[str]:
        if target.startswith("ext:"):
            return set()
        if ":" in target:
            if target in self.functions:
                return {target}
            # "module:name" where name is a method of some class in
            # that module
            module, name = target.split(":", 1)
            return {
                qual
                for qual in self._by_simple_name.get(name.split(".")[-1], [])
                if self.functions[qual].module == module
            }
        # A bare method name fans out receiver-agnostically, but only to
        # modules the caller could plausibly hold an instance from: its
        # own module and its direct imports.  Without this, generic
        # names (append, clear, snapshot, ...) connect everything to
        # everything and reachability checks drown in false edges.
        candidates = self._by_simple_name.get(target, [])
        visible = self.module_imports.get(caller_module, set())
        out = set()
        for qual in candidates:
            module = self.functions[qual].module
            if module == caller_module or any(
                origin == module or origin.startswith(module + ".")
                for origin in visible
            ):
                out.add(qual)
        return out

    def reaches(
        self,
        start: str,
        predicate: Callable[[FunctionInfo], bool],
        max_depth: int = 12,
    ) -> Optional[List[str]]:
        """BFS from ``start``: the first call chain (list of qualnames,
        start excluded) reaching a function matching ``predicate``, or
        None."""
        seen = {start}
        frontier: List[Tuple[str, List[str]]] = [(start, [])]
        for _ in range(max_depth):
            next_frontier: List[Tuple[str, List[str]]] = []
            for qual, chain in frontier:
                for callee in sorted(self.callees(qual)):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    path = chain + [callee]
                    info = self.functions[callee]
                    if predicate(info):
                        return path
                    next_frontier.append((callee, path))
            if not next_frontier:
                return None
            frontier = next_frontier
        return None

    def callers_of(self, qualname: str) -> List[FunctionInfo]:
        """Project functions that may call ``qualname``."""
        out = []
        for info in self.functions.values():
            if info.qualname == qualname:
                continue
            if qualname in self.callees(info.qualname):
                out.append(info)
        return out

    def transitive_closure_matching(
        self, seeds: Set[str]
    ) -> Set[str]:
        """Grow a seed set of qualnames with every function that calls
        into the set (directly or transitively)."""
        closed = set(seeds)
        changed = True
        while changed:
            changed = False
            for qual, info in self.functions.items():
                if qual in closed:
                    continue
                if self.callees(qual) & closed:
                    closed.add(qual)
                    changed = True
        return closed


# ----------------------------------------------------------------------
# extraction helpers
# ----------------------------------------------------------------------
_STDLIB_MODULES = frozenset(
    {
        "os",
        "io",
        "sys",
        "json",
        "math",
        "time",
        "shutil",
        "struct",
        "zlib",
        "heapq",
        "bisect",
        "random",
        "itertools",
        "functools",
        "collections",
        "threading",
        "contextlib",
        "dataclasses",
        "tempfile",
        "pathlib",
        "argparse",
        "re",
        "ast",
    }
)


def _module_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local name -> imported dotted origin for a module."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _extract_calls(
    func: FunctionNode,
    imports: Dict[str, str],
    local_defs: Set[str],
    module: str,
) -> List[CallSite]:
    calls: List[CallSite] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # nested defs carry their own FunctionInfo
        if isinstance(node, ast.Call):
            target = _call_target(node, imports, local_defs, module)
            if target is not None:
                calls.append(CallSite(node, target))
        stack.extend(ast.iter_child_nodes(node))
    return calls


def _call_target(
    call: ast.Call,
    imports: Dict[str, str],
    local_defs: Set[str],
    module: str,
) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in local_defs:
            return f"{module}:{name}"
        origin = imports.get(name)
        if origin is not None:
            if origin.startswith("repro."):
                head, _, leaf = origin.rpartition(".")
                return f"{head}:{leaf}"
            return f"ext:{origin}"
        return name
    if isinstance(func, ast.Attribute):
        receiver = func.value
        if isinstance(receiver, ast.Name):
            origin = imports.get(receiver.id)
            if origin is not None and not origin.startswith("repro."):
                return f"ext:{origin}.{func.attr}"
            if receiver.id in _STDLIB_MODULES:
                return f"ext:{receiver.id}.{func.attr}"
            if origin is not None and origin.startswith("repro."):
                return f"{origin}:{func.attr}"
        return func.attr
    return None
