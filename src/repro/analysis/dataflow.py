"""A small forward dataflow engine over :mod:`repro.analysis.cfg` graphs.

Classic worklist iteration to a fixpoint.  An analysis supplies three
things: the state entering the function (:meth:`ForwardAnalysis.initial`),
a per-node transfer function, and a merge for join points.  The engine
makes no assumption about the lattice beyond merge being monotone and
the state space finite (both pin-sets over a fixed set of acquisition
sites and the crash-coverage boolean are) — an iteration cap backstops
termination regardless.

Findings are *not* emitted during iteration (a node's in-state may be
revised several times before the fixpoint); rules run a post-pass over
the final in-states instead, via :func:`analyze`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generic, List, TypeVar

from repro.analysis.cfg import CFG, CFGNode

S = TypeVar("S")


class ForwardAnalysis(ABC, Generic[S]):
    """A forward dataflow problem over statement-level CFGs."""

    @abstractmethod
    def initial(self) -> S:
        """State entering the function."""

    @abstractmethod
    def transfer(self, node: CFGNode, state: S) -> S:
        """State after executing ``node`` given the state before it.

        Must not mutate ``state``; return a new value when the state
        changes.
        """

    @abstractmethod
    def merge(self, a: S, b: S) -> S:
        """Join two states at a CFG confluence point."""


class FixpointError(RuntimeError):
    """The worklist failed to converge within the iteration cap."""


def run_forward(cfg: CFG, analysis: ForwardAnalysis[S]) -> Dict[int, S]:
    """Iterate ``analysis`` to a fixpoint; returns in-states by node.

    Unreachable nodes (statements after an abrupt jump) have no entry in
    the result.
    """
    in_states: Dict[int, S] = {cfg.entry: analysis.initial()}
    worklist: List[int] = [cfg.entry]
    budget = max(1000, 64 * len(cfg.nodes) * max(1, len(cfg.nodes)))
    while worklist:
        budget -= 1
        if budget < 0:
            raise FixpointError(
                f"dataflow did not converge over {len(cfg.nodes)} nodes"
            )
        idx = worklist.pop()
        node = cfg.node(idx)
        out = analysis.transfer(node, in_states[idx])
        for succ in node.succs:
            if succ not in in_states:
                in_states[succ] = out
                worklist.append(succ)
            else:
                merged = analysis.merge(in_states[succ], out)
                if merged != in_states[succ]:
                    in_states[succ] = merged
                    worklist.append(succ)
    return in_states
