"""Cubetrees: packed R-tree storage for ROLAP aggregate views.

A reproduction of Kotidis & Roussopoulos, *"An Alternative Storage
Organization for ROLAP Aggregate Views Based on Cubetrees"* (SIGMOD 1998).

Public API highlights
---------------------

* :class:`repro.core.engine.CubetreeEngine` — the paper's contribution:
  materialize views as a forest of packed/compressed R-trees, answer
  slice queries, refresh by merge-packing.
* :class:`repro.core.conventional.ConventionalEngine` — the baseline:
  the same views as relational summary tables + B-tree indexes.
* :func:`repro.core.mapping.select_mapping` — the SelectMapping algorithm.
* :class:`repro.warehouse.tpcd.TPCDGenerator` — deterministic TPC-D-style
  data (the evaluation workload).
* :mod:`repro.sql` — the SQL subset used to define views and queries.
* :mod:`repro.experiments` — one module per table/figure of the paper.
"""

from repro.core.conventional import ConventionalEngine
from repro.core.engine import CubetreeEngine
from repro.core.mapping import select_mapping
from repro.query.slice import SliceQuery
from repro.relational.view import ViewDefinition
from repro.warehouse.tpcd import TPCDGenerator

__version__ = "1.0.0"

__all__ = [
    "ConventionalEngine",
    "CubetreeEngine",
    "SliceQuery",
    "TPCDGenerator",
    "ViewDefinition",
    "select_mapping",
    "__version__",
]
