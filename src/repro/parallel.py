"""Process-parallel execution helpers, gated by ``REPRO_WORKERS``.

The simulated-I/O experiments are single-device by construction: every
page access moves one shared disk head, so the cost model is only
meaningful when all pool traffic happens in the parent process in a
deterministic order.  Parallel execution is therefore restricted to
*pure-CPU* stages — cube-computation branches and merge-pack run
preparation — whose results are handed back to the parent before any
storage I/O happens.  With the default of one worker every code path is
byte-for-byte the serial one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_ENV_VAR = "REPRO_WORKERS"

#: Below this many input rows, parallel stages run serially: the pickle
#: round-trip and dispatch latency of a process pool cost milliseconds,
#: which small inputs cannot amortize (see docs/PERFORMANCE.md for the
#: measured crossover).
MIN_PARALLEL_ROWS = 32_768


def worker_count(default: int = 1) -> int:
    """The configured worker count (``REPRO_WORKERS``, min 1)."""
    raw = os.environ.get(_ENV_VAR, "")
    if not raw:
        return max(1, default)
    try:
        value = int(raw)
    except ValueError:
        return max(1, default)
    return max(1, value)


#: Lazily-created pools, keyed by worker count and shared process-wide so
#: repeated parallel stages amortize the fork cost instead of paying it
#: per call.  ``concurrent.futures`` joins them at interpreter exit.
_POOLS: dict = {}  # repro: worker-local


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor for a worker count (created on first use)."""
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def run_tasks(
    fn: Callable[[T], R], payloads: Sequence[T], workers: int
) -> List[R]:
    """Apply ``fn`` to every payload, in order, across a process pool.

    Falls back to an inline loop when one worker (or one payload) makes a
    pool pointless, so serial runs never pay the fork/pickle overhead.
    ``fn`` must be a module-level function and payloads picklable.
    """
    if workers <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    return list(shared_pool(workers).map(fn, payloads))
