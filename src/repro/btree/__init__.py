"""B+-tree indexes over the paged storage substrate.

This is the index structure of the *conventional* configuration: composite
integer keys (concatenations of view attributes, e.g. ``I{partkey, custkey,
suppkey}``) mapping to heap-file RIDs.  Supports point/range/prefix search,
one-at-a-time inserts with node splits, and bottom-up bulk loading from
sorted input.
"""

from repro.btree.keys import compare_keys, prefix_range
from repro.btree.tree import BPlusTree

__all__ = ["BPlusTree", "compare_keys", "prefix_range"]
