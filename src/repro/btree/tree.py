"""The B+-tree proper: search, range scans, inserts with splits, deletes.

Notes on semantics:

* Duplicate keys are allowed (a key may map to several RIDs); the view
  indexes of the experiments happen to be unique, which tests assert at a
  higher layer.
* Deletion is *lazy*: entries are removed from leaves but nodes are never
  merged (the strategy of many production systems).  The experiments never
  shrink indexes.

Pin protocol: ``_fetch_node`` pins the page and returns ``(node, page)``;
every path either calls ``_release(page)`` (read-only) or
``_flush_node(node, page)`` (serialize + unpin dirty) exactly once.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.btree.keys import Key, validate_key
from repro.btree.node import (
    InteriorNode,
    LeafNode,
    interior_capacity,
    leaf_capacity,
    node_type_of,
)
from repro.errors import IntegrityError, KeyNotFoundError, StorageError
from repro.obs import get_registry
from repro.storage.buffer import BufferPool
from repro.storage.heap import RID
from repro.storage.page import Page

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_SEARCHES = _REG.counter("btree.searches")
_OBS_INSERTS = _REG.counter("btree.inserts")


class BPlusTree:
    """A B+-tree mapping composite integer keys to heap RIDs.

    Parameters
    ----------
    pool:
        Shared buffer pool.
    arity:
        Number of int64 components in every key.
    """

    def __init__(self, pool: BufferPool, arity: int) -> None:
        if arity < 1:
            raise ValueError("key arity must be >= 1")
        self.pool = pool
        self.arity = arity
        self.leaf_capacity = leaf_capacity(arity)
        self.interior_capacity = interior_capacity(arity)
        self.count = 0
        self.height = 1
        page = pool.new_page()
        self.root_page_id = page.page_id
        self._flush_node(LeafNode(arity), page)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def insert(self, key: Sequence[int], rid: RID) -> None:
        """Insert one (key, rid) entry, splitting nodes as needed."""
        key = validate_key(key, self.arity)
        _OBS_INSERTS.value += 1
        split = self._insert(self.root_page_id, key, rid)
        if split is not None:
            sep, right_id = split
            new_root = InteriorNode(self.arity)
            new_root.keys = [sep]
            new_root.children = [self.root_page_id, right_id]
            page = self.pool.new_page()
            self.root_page_id = page.page_id
            self._flush_node(new_root, page)
            self.height += 1
        self.count += 1

    def search(self, key: Sequence[int]) -> List[RID]:
        """Return every RID stored under ``key`` (possibly empty)."""
        key = validate_key(key, self.arity)
        _OBS_SEARCHES.value += 1
        return [rid for _k, rid in self.range_scan(key, key)]

    def search_one(self, key: Sequence[int]) -> Optional[RID]:
        """Return one RID for ``key``, or None."""
        matches = self.search(key)
        return matches[0] if matches else None

    def range_scan(
        self, low: Sequence[int], high: Sequence[int]
    ) -> Iterator[Tuple[Key, RID]]:
        """Yield entries with ``low <= key <= high`` in key order."""
        low_key = validate_key(low, self.arity)
        high_key = validate_key(high, self.arity)
        if low_key > high_key:
            return
        page_id = self._descend_to_leaf(low_key)
        start_key: Tuple[int, ...] = low_key
        while page_id != -1:
            node, page = self._fetch_node(page_id)
            # The page stays pinned across yields, so an abandoned
            # iterator (break / gc) must still unpin it: the finally
            # runs when the generator is closed.
            try:
                if not isinstance(node, LeafNode):
                    raise IntegrityError(
                        f"leaf chain points at non-leaf page {page.page_id}"
                    )
                start = bisect_left(node.keys, start_key)
                for i in range(start, len(node.keys)):
                    if node.keys[i] > high_key:
                        return
                    yield node.keys[i], node.rids[i]
                next_id = node.next_leaf
            finally:
                self._release(page)
            page_id = next_id
            start_key = ()  # every later leaf starts within range

    def scan_all(self) -> Iterator[Tuple[Key, RID]]:
        """Yield every entry in key order."""
        page_id = self._leftmost_leaf()
        while page_id != -1:
            node, page = self._fetch_node(page_id)
            try:
                if not isinstance(node, LeafNode):
                    raise IntegrityError(
                        f"leaf chain points at non-leaf page {page.page_id}"
                    )
                yield from zip(node.keys, node.rids)
                next_id = node.next_leaf
            finally:
                self._release(page)
            page_id = next_id

    def delete(self, key: Sequence[int], rid: Optional[RID] = None) -> None:
        """Remove one entry for ``key`` (matching ``rid`` when given).

        Walks the leaf chain while duplicates of ``key`` continue, since a
        duplicate run may span several leaves.
        """
        key = validate_key(key, self.arity)
        page_id = self._descend_to_leaf(key)
        while page_id != -1:
            node, page = self._fetch_node(page_id)
            node = self._expect_leaf(node, page)
            idx = bisect_left(node.keys, key)
            while idx < len(node.keys) and node.keys[idx] == key:
                if rid is None or node.rids[idx] == rid:
                    del node.keys[idx]
                    del node.rids[idx]
                    self._flush_node(node, page)
                    self.count -= 1
                    return
                idx += 1
            # Stop once this leaf holds keys beyond the target.
            done = bool(node.keys) and node.keys[-1] > key
            next_id = node.next_leaf
            self._release(page)
            if done:
                break
            page_id = next_id
        raise KeyNotFoundError(f"key {key} not found in index")

    @property
    def num_pages(self) -> int:
        """Pages owned by this tree (counted by traversal)."""
        return self._count_pages(self.root_page_id)

    def check_invariants(self) -> None:
        """Verify ordering and entry count; raises StorageError on violation."""
        keys = [key for key, _ in self.scan_all()]
        if keys != sorted(keys):
            raise StorageError("B+-tree leaf chain is not sorted")
        if len(keys) != self.count:
            raise StorageError(
                f"entry count mismatch: scan={len(keys)} counter={self.count}"
            )

    # ------------------------------------------------------------------
    # node I/O through the buffer pool
    # ------------------------------------------------------------------
    def _fetch_node(self, page_id: int):
        """Fetch + deserialize a node; returns (node, pinned page)."""
        page = self.pool.fetch_page(page_id)
        if page.cached_obj is None:
            raw = bytes(page.data)
            if node_type_of(raw) == 1:
                page.cached_obj = LeafNode.from_bytes(raw, self.arity)
            else:
                page.cached_obj = InteriorNode.from_bytes(raw, self.arity)
        return page.cached_obj, page

    def _release(self, page: Page) -> None:
        self.pool.unpin_page(page.page_id)

    def _expect_leaf(self, node, page: Page) -> LeafNode:
        """Narrow a fetched node to a leaf; release + raise otherwise."""
        if not isinstance(node, LeafNode):
            self._release(page)
            raise IntegrityError(
                f"leaf chain points at non-leaf page {page.page_id}"
            )
        return node

    def _flush_node(self, node, page: Page) -> None:
        """Serialize a node into its pinned page and unpin dirty."""
        page.data[:] = node.to_bytes()
        page.cached_obj = node
        self.pool.unpin_page(page.page_id, dirty=True)

    # ------------------------------------------------------------------
    # descent helpers
    # ------------------------------------------------------------------
    def _child_index(self, node: InteriorNode, key: Key) -> int:
        return bisect_right(node.keys, key)

    def _descend_to_leaf(self, key: Key) -> int:
        """Find the leaf holding the *first* occurrence of ``key``.

        Descends with ``bisect_left``: duplicates of a separator key may
        span the boundary it marks (bulk loading fills leaves to capacity
        regardless of duplicate runs), so scans must start at the leftmost
        candidate leaf and walk right via the leaf chain.
        """
        page_id = self.root_page_id
        while True:
            node, page = self._fetch_node(page_id)
            if isinstance(node, LeafNode):
                self._release(page)
                return page_id
            child = node.children[bisect_left(node.keys, key)]
            self._release(page)
            page_id = child

    def _leftmost_leaf(self) -> int:
        page_id = self.root_page_id
        while True:
            node, page = self._fetch_node(page_id)
            if isinstance(node, LeafNode):
                self._release(page)
                return page_id
            child = node.children[0]
            self._release(page)
            page_id = child

    # ------------------------------------------------------------------
    # insert machinery
    # ------------------------------------------------------------------
    def _insert(
        self, page_id: int, key: Key, rid: RID
    ) -> Optional[Tuple[Key, int]]:
        node, page = self._fetch_node(page_id)
        if isinstance(node, LeafNode):
            idx = bisect_right(node.keys, key)
            node.keys.insert(idx, key)
            node.rids.insert(idx, rid)
            if len(node.keys) <= self.leaf_capacity:
                self._flush_node(node, page)
                return None
            return self._split_leaf(node, page)

        child_idx = self._child_index(node, key)
        child_id = node.children[child_idx]
        self._release(page)
        split = self._insert(child_id, key, rid)
        if split is None:
            return None
        sep, right_id = split
        node, page = self._fetch_node(page_id)
        node.keys.insert(child_idx, sep)
        node.children.insert(child_idx + 1, right_id)
        if len(node.keys) <= self.interior_capacity:
            self._flush_node(node, page)
            return None
        return self._split_interior(node, page)

    def _split_leaf(self, node: LeafNode, page: Page) -> Tuple[Key, int]:
        mid = len(node.keys) // 2
        right = LeafNode(self.arity)
        right.keys = node.keys[mid:]
        right.rids = node.rids[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.rids = node.rids[:mid]
        right_page = self.pool.new_page()
        node.next_leaf = right_page.page_id
        self._flush_node(right, right_page)
        self._flush_node(node, page)
        return right.keys[0], right_page.page_id

    def _split_interior(
        self, node: InteriorNode, page: Page
    ) -> Tuple[Key, int]:
        mid = len(node.keys) // 2
        push_up = node.keys[mid]
        right = InteriorNode(self.arity)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        right_page = self.pool.new_page()
        self._flush_node(right, right_page)
        self._flush_node(node, page)
        return push_up, right_page.page_id

    # ------------------------------------------------------------------
    def _count_pages(self, page_id: int) -> int:
        node, page = self._fetch_node(page_id)
        try:
            if isinstance(node, LeafNode):
                return 1
            children = list(node.children)
        finally:
            self._release(page)
        return 1 + sum(self._count_pages(c) for c in children)
