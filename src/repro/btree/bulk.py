"""Bottom-up B+-tree bulk loading from sorted input.

The conventional configuration builds its view indexes after the views are
materialized; building them bottom-up from sorted (key, RID) pairs writes
each index page exactly once, in allocation order — the best case the
baseline gets.  (The Cubetrees' packing algorithm is the R-tree analogue of
this routine.)
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.btree.keys import Key
from repro.btree.node import InteriorNode, LeafNode
from repro.btree.tree import BPlusTree
from repro.errors import InternalError, StorageError
from repro.obs import get_registry, trace
from repro.storage.buffer import BufferPool
from repro.storage.heap import RID

_REG = get_registry()  # repro: guarded-by(MetricsRegistry._lock)
_OBS_BULK_ENTRIES = _REG.counter("btree.bulk_load.entries")

#: Default leaf/interior fill fraction.  Production B-trees leave headroom
#: for future inserts; 1.0 packs to capacity like the Cubetrees do.
DEFAULT_FILL = 0.9


def bulk_load_btree(
    pool: BufferPool,
    arity: int,
    entries: Sequence[Tuple[Key, RID]],
    fill: float = DEFAULT_FILL,
) -> BPlusTree:
    """Build a B+-tree from entries sorted by key.

    Parameters
    ----------
    pool:
        Buffer pool to allocate pages from.
    arity:
        Key arity of the new index.
    entries:
        (key, rid) pairs, already sorted by key.
    fill:
        Fraction of node capacity to fill (0 < fill <= 1).
    """
    with trace("btree.bulk_load", entries=len(entries)):
        return _bulk_load_btree(pool, arity, entries, fill)


def _bulk_load_btree(
    pool: BufferPool,
    arity: int,
    entries: Sequence[Tuple[Key, RID]],
    fill: float,
) -> BPlusTree:
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must be in (0, 1]")
    _OBS_BULK_ENTRIES.value += len(entries)
    for i in range(1, len(entries)):
        if entries[i - 1][0] > entries[i][0]:
            raise StorageError("bulk_load_btree requires sorted input")

    tree = BPlusTree(pool, arity)
    if not entries:
        return tree

    leaf_take = max(2, int(tree.leaf_capacity * fill))
    interior_take = max(2, int(tree.interior_capacity * fill))

    # ------------------------------------------------------------------
    # build the leaf level
    # ------------------------------------------------------------------
    level: List[Tuple[Key, int]] = []  # (min key, page id) per node
    prev_leaf: LeafNode | None = None
    prev_page = None
    i = 0
    while i < len(entries):
        take = min(leaf_take, len(entries) - i)
        # Avoid a dangling 1-entry final leaf: borrow from this one.
        remaining = len(entries) - i - take
        if 0 < remaining < 2 and take > 2:
            take -= 2 - remaining
        leaf = LeafNode(arity)
        chunk = entries[i : i + take]
        leaf.keys = [key for key, _ in chunk]
        leaf.rids = [rid for _, rid in chunk]
        page = pool.new_page()
        if prev_leaf is not None:
            prev_leaf.next_leaf = page.page_id
            tree._flush_node(prev_leaf, prev_page)
        prev_leaf, prev_page = leaf, page
        level.append((leaf.keys[0], page.page_id))
        i += take
    if prev_leaf is None:
        raise InternalError("non-empty bulk load produced no leaves")
    prev_leaf.next_leaf = -1
    tree._flush_node(prev_leaf, prev_page)

    # ------------------------------------------------------------------
    # build interior levels until a single root remains
    # ------------------------------------------------------------------
    height = 1
    while len(level) > 1:
        next_level: List[Tuple[Key, int]] = []
        i = 0
        while i < len(level):
            take = min(interior_take + 1, len(level) - i)  # children count
            remaining = len(level) - i - take
            if 0 < remaining < 2 and take > 2:
                take -= 2 - remaining
            group = level[i : i + take]
            node = InteriorNode(arity)
            node.children = [pid for _, pid in group]
            node.keys = [min_key for min_key, _ in group[1:]]
            page = pool.new_page()
            tree._flush_node(node, page)
            next_level.append((group[0][0], page.page_id))
            i += take
        level = next_level
        height += 1

    tree.root_page_id = level[0][1]
    tree.height = height
    tree.count = len(entries)
    return tree
