"""Composite integer keys for B+-trees.

A key is a tuple of ``arity`` signed 64-bit integers, compared
lexicographically.  Prefix searches (equality on the first ``p`` attributes,
open on the rest) become closed ranges by padding with the INT64 extremes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

Key = Tuple[int, ...]


def validate_key(key: Sequence[int], arity: int) -> Key:
    """Check shape and range of a key; return it as a tuple."""
    if len(key) != arity:
        raise ValueError(f"key {key!r} has arity {len(key)}, expected {arity}")
    for part in key:
        if not INT64_MIN <= part <= INT64_MAX:
            raise ValueError(f"key component {part} out of int64 range")
    return tuple(key)


def compare_keys(left: Sequence[int], right: Sequence[int]) -> int:
    """Lexicographic comparison; returns -1/0/+1."""
    lt, rt = tuple(left), tuple(right)
    if lt < rt:
        return -1
    if lt > rt:
        return 1
    return 0


def prefix_range(prefix: Sequence[int], arity: int) -> Tuple[Key, Key]:
    """Closed key range matching every key that starts with ``prefix``.

    ``prefix_range((5,), 3)`` covers exactly the keys ``(5, *, *)``.
    """
    if len(prefix) > arity:
        raise ValueError(
            f"prefix of length {len(prefix)} longer than key arity {arity}"
        )
    pad = arity - len(prefix)
    low = tuple(prefix) + (INT64_MIN,) * pad
    high = tuple(prefix) + (INT64_MAX,) * pad
    return low, high
