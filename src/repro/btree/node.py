"""On-page layout of B+-tree nodes.

Leaf page layout (little-endian)::

    offset 0  uint8    node type (1 = leaf)
    offset 1  uint16   entry count
    offset 3  int64    next-leaf page id (-1 for none)
    offset 11 entries  each: arity * int64 key, int64 page_id, int32 slot

Interior page layout::

    offset 0  uint8    node type (2 = interior)
    offset 1  uint16   separator count  (children = count + 1)
    offset 3  keys     count * arity * int64
    ...       children (count + 1) * int64

Child ``i`` holds keys < separator ``i``; child ``count`` holds the rest
(search goes right on equality, so duplicates of a separator live right of
it).
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.storage.codec import entry_codec
from repro.storage.heap import RID

LEAF_TYPE = 1
INTERIOR_TYPE = 2

_LEAF_HEADER = struct.Struct("<BHq")
_INTERIOR_HEADER = struct.Struct("<BH")

Key = Tuple[int, ...]


def leaf_capacity(arity: int) -> int:
    """Max entries a leaf of the given key arity can hold."""
    entry = struct.calcsize(f"<{arity}qqi")
    return (PAGE_SIZE - _LEAF_HEADER.size) // entry


def interior_capacity(arity: int) -> int:
    """Max separator keys an interior node can hold."""
    key_bytes = arity * 8
    # count keys + (count + 1) children must fit.
    return (PAGE_SIZE - _INTERIOR_HEADER.size - 8) // (key_bytes + 8)


class LeafNode:
    """A deserialized leaf: parallel lists of keys and RIDs."""

    __slots__ = ("arity", "keys", "rids", "next_leaf")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.keys: List[Key] = []
        self.rids: List[RID] = []
        self.next_leaf = -1

    def __len__(self) -> int:
        return len(self.keys)

    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer."""
        codec = entry_codec(f"{self.arity}qqi")
        count = len(self.keys)
        out = bytearray(PAGE_SIZE)
        _LEAF_HEADER.pack_into(out, 0, LEAF_TYPE, count, self.next_leaf)
        if _LEAF_HEADER.size + count * codec.item_size > PAGE_SIZE:
            raise StorageError("leaf node overflow")
        flat: List[object] = []
        for key, rid in zip(self.keys, self.rids):
            flat.extend(key)
            flat.append(rid.page_id)
            flat.append(rid.slot)
        codec.pack_into(out, _LEAF_HEADER.size, flat, count)
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes, arity: int) -> "LeafNode":
        """Deserialize from a page buffer."""
        node_type, count, next_leaf = _LEAF_HEADER.unpack_from(raw, 0)
        if node_type != LEAF_TYPE:
            raise StorageError(f"expected leaf page, found type {node_type}")
        node = cls(arity)
        node.next_leaf = next_leaf
        codec = entry_codec(f"{arity}qqi")
        keys = node.keys
        rids = node.rids
        for fields in codec.iter_unpack_from(raw, _LEAF_HEADER.size, count):
            keys.append(fields[:arity])
            rids.append(RID(fields[arity], fields[arity + 1]))
        return node


class InteriorNode:
    """A deserialized interior node: separators and child page ids."""

    __slots__ = ("arity", "keys", "children")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.keys: List[Key] = []
        self.children: List[int] = []

    def __len__(self) -> int:
        return len(self.keys)

    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer."""
        out = bytearray(PAGE_SIZE)
        count = len(self.keys)
        _INTERIOR_HEADER.pack_into(out, 0, INTERIOR_TYPE, count)
        key_codec = entry_codec(f"{self.arity}q")
        child_codec = entry_codec("q")
        end = (
            _INTERIOR_HEADER.size
            + count * key_codec.item_size
            + len(self.children) * child_codec.item_size
        )
        if end > PAGE_SIZE:
            raise StorageError("interior node overflow")
        off = _INTERIOR_HEADER.size
        flat: List[object] = []
        for key in self.keys:
            flat.extend(key)
        off += key_codec.pack_into(out, off, flat, count)
        child_codec.pack_into(out, off, self.children, len(self.children))
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes, arity: int) -> "InteriorNode":
        """Deserialize from a page buffer."""
        node_type, count = _INTERIOR_HEADER.unpack_from(raw, 0)
        if node_type != INTERIOR_TYPE:
            raise StorageError(f"expected interior page, found type {node_type}")
        node = cls(arity)
        key_codec = entry_codec(f"{arity}q")
        off = _INTERIOR_HEADER.size
        node.keys = list(key_codec.iter_unpack_from(raw, off, count))
        off += count * key_codec.item_size
        node.children = list(
            entry_codec("q").unpack_flat_from(raw, off, count + 1)
        )
        return node


def node_type_of(raw: bytes) -> int:
    """Peek the node-type byte of a serialized node page."""
    return raw[0]
