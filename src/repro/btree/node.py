"""On-page layout of B+-tree nodes.

Leaf page layout (little-endian)::

    offset 0  uint8    node type (1 = leaf)
    offset 1  uint16   entry count
    offset 3  int64    next-leaf page id (-1 for none)
    offset 11 entries  each: arity * int64 key, int64 page_id, int32 slot

Interior page layout::

    offset 0  uint8    node type (2 = interior)
    offset 1  uint16   separator count  (children = count + 1)
    offset 3  keys     count * arity * int64
    ...       children (count + 1) * int64

Child ``i`` holds keys < separator ``i``; child ``count`` holds the rest
(search goes right on equality, so duplicates of a separator live right of
it).
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.constants import PAGE_SIZE
from repro.errors import StorageError
from repro.storage.heap import RID

LEAF_TYPE = 1
INTERIOR_TYPE = 2

_LEAF_HEADER = struct.Struct("<BHq")
_INTERIOR_HEADER = struct.Struct("<BH")

Key = Tuple[int, ...]


def leaf_capacity(arity: int) -> int:
    """Max entries a leaf of the given key arity can hold."""
    entry = struct.calcsize(f"<{arity}qqi")
    return (PAGE_SIZE - _LEAF_HEADER.size) // entry


def interior_capacity(arity: int) -> int:
    """Max separator keys an interior node can hold."""
    key_bytes = arity * 8
    # count keys + (count + 1) children must fit.
    return (PAGE_SIZE - _INTERIOR_HEADER.size - 8) // (key_bytes + 8)


class LeafNode:
    """A deserialized leaf: parallel lists of keys and RIDs."""

    __slots__ = ("arity", "keys", "rids", "next_leaf")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.keys: List[Key] = []
        self.rids: List[RID] = []
        self.next_leaf = -1

    def __len__(self) -> int:
        return len(self.keys)

    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer."""
        entry = struct.Struct(f"<{self.arity}qqi")
        out = bytearray(PAGE_SIZE)
        _LEAF_HEADER.pack_into(out, 0, LEAF_TYPE, len(self.keys), self.next_leaf)
        off = _LEAF_HEADER.size
        for key, rid in zip(self.keys, self.rids):
            entry.pack_into(out, off, *key, rid.page_id, rid.slot)
            off += entry.size
        if off > PAGE_SIZE:
            raise StorageError("leaf node overflow")
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes, arity: int) -> "LeafNode":
        """Deserialize from a page buffer."""
        node_type, count, next_leaf = _LEAF_HEADER.unpack_from(raw, 0)
        if node_type != LEAF_TYPE:
            raise StorageError(f"expected leaf page, found type {node_type}")
        node = cls(arity)
        node.next_leaf = next_leaf
        entry = struct.Struct(f"<{arity}qqi")
        off = _LEAF_HEADER.size
        for _ in range(count):
            fields = entry.unpack_from(raw, off)
            node.keys.append(tuple(fields[:arity]))
            node.rids.append(RID(fields[arity], fields[arity + 1]))
            off += entry.size
        return node


class InteriorNode:
    """A deserialized interior node: separators and child page ids."""

    __slots__ = ("arity", "keys", "children")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.keys: List[Key] = []
        self.children: List[int] = []

    def __len__(self) -> int:
        return len(self.keys)

    def to_bytes(self) -> bytes:
        """Serialize into a full page buffer."""
        out = bytearray(PAGE_SIZE)
        _INTERIOR_HEADER.pack_into(out, 0, INTERIOR_TYPE, len(self.keys))
        off = _INTERIOR_HEADER.size
        key_struct = struct.Struct(f"<{self.arity}q")
        for key in self.keys:
            key_struct.pack_into(out, off, *key)
            off += key_struct.size
        for child in self.children:
            struct.pack_into("<q", out, off, child)
            off += 8
        if off > PAGE_SIZE:
            raise StorageError("interior node overflow")
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes, arity: int) -> "InteriorNode":
        """Deserialize from a page buffer."""
        node_type, count = _INTERIOR_HEADER.unpack_from(raw, 0)
        if node_type != INTERIOR_TYPE:
            raise StorageError(f"expected interior page, found type {node_type}")
        node = cls(arity)
        key_struct = struct.Struct(f"<{arity}q")
        off = _INTERIOR_HEADER.size
        for _ in range(count):
            node.keys.append(tuple(key_struct.unpack_from(raw, off)))
            off += key_struct.size
        for _ in range(count + 1):
            node.children.append(struct.unpack_from("<q", raw, off)[0])
            off += 8
        return node


def node_type_of(raw: bytes) -> int:
    """Peek the node-type byte of a serialized node page."""
    return raw[0]
