"""Run every experiment in sequence: ``python -m repro.experiments.runner``.

Accepts an optional scale-factor argument, e.g.::

    python -m repro.experiments.runner 0.005
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.experiments import (
    ablations,
    baseline_onthefly,
    fig12_queries,
    fig13_throughput,
    fig14_scalability,
    storage_breakdown,
    table5_mapping,
    table6_loading,
    table7_updates,
)
from repro.experiments.common import ExperimentConfig


def main(argv: list[str] | None = None) -> None:
    """Run every experiment at the configured scale."""
    argv = sys.argv[1:] if argv is None else argv
    config = ExperimentConfig()
    if argv:
        config = replace(config, scale_factor=float(argv[0]))

    print(f"Running all experiments at scale factor {config.scale_factor} "
          f"({config.queries_per_node} queries/view)")
    table5_mapping.run(config)
    table6_loading.run(config)
    fig12_queries.run(config)
    fig13_throughput.run(config)
    fig14_scalability.run(config)
    table7_updates.run(config)
    storage_breakdown.run(config)
    baseline_onthefly.run(config)
    ablations.run(config)


if __name__ == "__main__":
    main()
