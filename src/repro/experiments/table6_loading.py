"""Table 6 — initial load of the TPC-D views, plus the storage comparison.

Paper (Table 6, SF 1)::

    Configuration   Views        Indices    Total
    Conventional    10h 58m 23s  51m 05s    11h 49m 28s
    Cubetrees       45m 04s      -          45m 04s       (~16x faster)

and Sec. 3.2 storage: 602 MB conventional vs 293 MB Cubetrees (51% less).

Our substrate is a simulated late-90s disk, so absolute numbers differ;
the claim shape asserted is the load-time ratio and the storage saving.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    ExperimentConfig,
    build_conventional_engine,
    build_cubetree_engine,
    build_warehouse,
    fmt_bytes,
    fmt_duration,
    print_table,
)

PAPER = {  # repro: read-only
    "conventional_views": "10h 58m 23s",
    "conventional_indexes": "51m 05s",
    "conventional_total": "11h 49m 28s",
    "cubetrees_total": "45m 04s",
    "ratio": 15.7,
    "conventional_mb": 602,
    "cubetree_mb": 293,
    "savings_pct": 51,
}


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Regenerate Table 6 and the storage figures."""
    config = config or ExperimentConfig()
    _gen, data = build_warehouse(config)

    cube, cube_report = build_cubetree_engine(config, data)
    conv, conv_report = build_conventional_engine(config, data)

    # The smallest-parent computation plan (the dependency graph of
    # Fig. 10 that both configurations share, Fig. 11's SORT box).
    from repro.experiments.common import paper_views

    plan = cube.computation.plan(paper_views(), len(data.facts))
    print_table(
        "Figure 10: dependency graph for V (each view <- smallest parent)",
        ["view", "computed from"],
        [[step.view.name, step.parent or "F (fact table)"]
         for step in plan],
        verbose,
    )

    conv_views = conv_report.phases["views"].simulated_ms
    conv_idx = conv_report.phases["indexes"].simulated_ms
    conv_total = conv_report.total_simulated_ms
    cube_total = cube_report.total_simulated_ms
    ratio = conv_total / cube_total if cube_total else float("inf")

    print_table(
        f"Table 6: loading the databases (SF {config.scale_factor}, "
        f"simulated I/O time; paper values at SF 1 in parentheses)",
        ["Configuration", "Views", "Indices", "Total"],
        [
            ["Conventional",
             f"{fmt_duration(conv_views)} ({PAPER['conventional_views']})",
             f"{fmt_duration(conv_idx)} ({PAPER['conventional_indexes']})",
             f"{fmt_duration(conv_total)} ({PAPER['conventional_total']})"],
            ["Cubetrees", f"{fmt_duration(cube_total)} "
             f"({PAPER['cubetrees_total']})", "-",
             f"{fmt_duration(cube_total)} ({PAPER['cubetrees_total']})"],
            ["Speedup", "", "", f"{ratio:.1f}x (paper {PAPER['ratio']}x)"],
        ],
        verbose,
    )

    savings = 1.0 - cube_report.bytes_on_disk / conv_report.bytes_on_disk
    print_table(
        "Storage (views + indexes; paper: 602 MB vs 293 MB, 51% less)",
        ["Configuration", "bytes on disk", "pages", "rows"],
        [
            ["Conventional", fmt_bytes(conv_report.bytes_on_disk),
             conv_report.pages, conv_report.view_rows],
            ["Cubetrees (with replicas)",
             fmt_bytes(cube_report.bytes_on_disk),
             cube_report.pages, cube_report.view_rows],
            ["Savings", f"{savings:.0%} (paper {PAPER['savings_pct']}%)",
             "", ""],
        ],
        verbose,
    )

    return {
        "conventional_views_ms": conv_views,
        "conventional_indexes_ms": conv_idx,
        "conventional_total_ms": conv_total,
        "cubetree_total_ms": cube_total,
        "ratio": ratio,
        "conventional_bytes": conv_report.bytes_on_disk,
        "cubetree_bytes": cube_report.bytes_on_disk,
        "savings": savings,
        "view_rows": conv_report.view_rows,
        "wall_ms": {
            "cubetree": cube_report.total_wall_ms,
            "conventional": conv_report.total_wall_ms,
        },
    }


if __name__ == "__main__":
    run()
