"""Figure 14 — Cubetree query scalability (1 GB vs 2 GB dataset).

Paper: "query performance is practically unaffected by the larger input.
The small differences are caused by the variation on the output size."
The Cubetree answer cost is a root-to-leaf descent plus the clustered
matches, so doubling the data mostly deepens nothing and widens outputs
slightly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.experiments.common import (
    FIG12_NODES,
    ExperimentConfig,
    build_cubetree_engine,
    build_warehouse,
    fmt_duration,
    node_label,
    print_table,
)
from repro.query.generator import RandomQueryGenerator


def _measure(config: ExperimentConfig) -> Dict[str, float]:
    _gen, data = build_warehouse(config)
    cube, _ = build_cubetree_engine(config, data)
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)
    out: Dict[str, float] = {}
    for node in FIG12_NODES:
        queries = qgen.generate_for_node(node, config.queries_per_node)
        out[node_label(node)] = sum(
            cube.query(q).io.total_ms for q in queries
        )
    return out


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Regenerate Fig. 14: same workload at SF s and SF 2s."""
    config = config or ExperimentConfig()
    small = _measure(config)
    big = _measure(replace(config, scale_factor=config.scale_factor * 2))

    rows = [
        [label, fmt_duration(small[label]), fmt_duration(big[label]),
         f"{big[label] / small[label]:.2f}x" if small[label] else "-"]
        for label in small
    ]
    total_small = sum(small.values())
    total_big = sum(big.values())
    rows.append([
        "TOTAL", fmt_duration(total_small), fmt_duration(total_big),
        f"{total_big / total_small:.2f}x" if total_small else "-",
    ])
    print_table(
        f"Figure 14: Cubetree scalability "
        f"(SF {config.scale_factor} vs SF {config.scale_factor * 2}; "
        "paper: nearly flat from 1 GB to 2 GB)",
        ["view", "1x dataset", "2x dataset", "growth"],
        rows,
        verbose,
    )
    return {
        "small": small,
        "big": big,
        "growth": total_big / total_small if total_small else 1.0,
    }


if __name__ == "__main__":
    run()
