"""Ablations for the design choices the paper argues for.

Six studies, each isolating one mechanism:

* ``run_sort_order``      — low-coordinate sort vs Hilbert curve: the
  space-filling curve interleaves views, killing contiguous runs and
  therefore leaf compression (Sec. 2.4's reason for rejecting [FR89]).
* ``run_compression``     — compressed vs uncompressed leaves: storing
  only a view's own coordinates shrinks the tree.
* ``run_mapping_policy``  — SelectMapping vs one-tree-per-view: the
  minimal forest needs fewer pages and hits the buffer more often.
* ``run_packing``         — packed bulk load vs dynamic (Guttman)
  inserts: utilization, size, write pattern, build cost.
* ``run_replication``     — replicas of the apex view on/off: query
  time vs storage trade.
* ``run_buffer_sensitivity`` — buffer-pool size vs Cubetree query cost
  (the Sec. 2.4 hit-ratio argument).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.engine import CubetreeEngine
from repro.core.forest import CubetreeForest
from repro.core.mapping import CubetreeAllocation, TreeAssignment, select_mapping
from repro.experiments.common import (
    FIG12_NODES,
    ExperimentConfig,
    build_warehouse,
    fmt_duration,
    paper_views,
    paper_replicas,
    print_table,
)
from repro.query.generator import RandomQueryGenerator
from repro.rtree.node import set_leaf_format
from repro.rtree.packing import PackedRun, hilbert_sort_key, pack_rtree, sort_key
from repro.rtree.tree import RTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def _pool(buffer_pages: int = 256):
    disk = DiskManager()
    return disk, BufferPool(disk, capacity=buffer_pages)


def _two_view_points(n_1d: int = 3000, n_2d: int = 60):
    one_d = [((i,), (1.0,)) for i in range(1, n_1d + 1)]
    two_d = [
        ((x, y), (1.0,))
        for x in range(1, n_2d + 1)
        for y in range(1, n_2d + 1)
    ]
    return one_d, two_d


# ----------------------------------------------------------------------
def run_sort_order(verbose: bool = True) -> Dict:
    """Low-coordinate packing order vs a Hilbert curve."""
    one_d, two_d = _two_view_points()
    dims = 2

    def padded(stream, view_id):
        for point, values in stream:
            yield view_id, tuple(point) + (0,) * (dims - len(point)), values

    combined = list(padded(one_d, 1)) + list(padded(two_d, 2))

    low_order = sorted(combined, key=lambda e: sort_key(e[1], dims))
    hilbert_order = sorted(
        combined, key=lambda e: hilbert_sort_key(e[1], dims)
    )

    def transitions(stream):
        views = [view_id for view_id, _, _ in stream]
        return sum(1 for a, b in zip(views, views[1:]) if a != b)

    low_t = transitions(low_order)
    hil_t = transitions(hilbert_order)
    print_table(
        "Ablation: packing sort order (view interleaving)",
        ["order", "view transitions in leaf stream", "compression valid"],
        [["low-coordinate (paper)", low_t, "yes (1 transition)"],
         ["Hilbert curve", hil_t,
          "no (views interleave; leaves must store full-width points)"]],
        verbose,
    )
    return {"low_transitions": low_t, "hilbert_transitions": hil_t}


# ----------------------------------------------------------------------
def run_compression(verbose: bool = True) -> Dict:
    """Compressed (arity-wide) vs uncompressed (dims-wide) leaves,
    plus the v3 columnar (delta+varint) leaf format on top."""
    one_d, two_d = _two_view_points()
    dims = 3

    _d1, pool1 = _pool()
    compressed = pack_rtree(pool1, dims, [
        PackedRun(1, 1, 1, sorted(one_d, key=lambda e: sort_key(e[0], dims))),
        PackedRun(2, 2, 1, sorted(two_d, key=lambda e: sort_key(e[0], dims))),
    ])

    _d3, pool3 = _pool()
    set_leaf_format("columnar")
    try:
        columnar = pack_rtree(pool3, dims, [
            PackedRun(1, 1, 1,
                      sorted(one_d, key=lambda e: sort_key(e[0], dims))),
            PackedRun(2, 2, 1,
                      sorted(two_d, key=lambda e: sort_key(e[0], dims))),
        ])
    finally:
        set_leaf_format(None)

    def pad(entries, arity):
        return [
            (tuple(p) + (0,) * (dims - len(p)), v) for p, v in entries
        ]

    _d2, pool2 = _pool()
    uncompressed = pack_rtree(pool2, dims, [
        PackedRun(1, dims, 1,
                  sorted(pad(one_d, 1), key=lambda e: sort_key(e[0], dims))),
        PackedRun(2, dims, 1,
                  sorted(pad(two_d, 2), key=lambda e: sort_key(e[0], dims))),
    ], validate=False)

    saving = 1.0 - compressed.num_pages / uncompressed.num_pages
    columnar_ratio = uncompressed.num_pages / columnar.num_pages
    print_table(
        "Ablation: leaf compression",
        ["variant", "pages", "leaf pages"],
        [["compressed (paper)", compressed.num_pages,
          len(compressed.leaf_page_ids)],
         ["columnar (v3)", columnar.num_pages,
          len(columnar.leaf_page_ids)],
         ["uncompressed", uncompressed.num_pages,
          len(uncompressed.leaf_page_ids)],
         ["saving", f"{saving:.0%}", ""],
         ["columnar ratio", f"{columnar_ratio:.1f}:1", ""]],
        verbose,
    )
    return {
        "compressed_pages": compressed.num_pages,
        "uncompressed_pages": uncompressed.num_pages,
        "columnar_pages": columnar.num_pages,
        "columnar_ratio": columnar_ratio,
        "saving": saving,
    }


# ----------------------------------------------------------------------
def run_mapping_policy(
    config: Optional[ExperimentConfig] = None, verbose: bool = True
) -> Dict:
    """SelectMapping's minimal forest vs one Cubetree per view."""
    config = config or ExperimentConfig()
    _gen, data = build_warehouse(config)
    views = paper_views()

    def build(allocation: CubetreeAllocation):
        disk, pool = _pool(config.buffer_pages)
        engine_data = CubetreeEngine(
            data.schema, buffer_pages=config.buffer_pages
        )
        # Reuse the engine only for computation; build the forest directly.
        computed = engine_data.computation.execute(data.facts, views)
        forest = CubetreeForest(pool, allocation)
        forest.build(computed)
        pool.flush_all()
        return disk, pool, forest

    minimal = select_mapping(views)
    per_view = CubetreeAllocation(
        trees=[TreeAssignment(max(v.arity, 1), (v,)) for v in views]
    )

    results = {}
    qgen_master = RandomQueryGenerator(data.schema, seed=config.query_seed)
    workloads = {
        node: qgen_master.generate_for_node(node, 30) for node in FIG12_NODES
    }
    for name, allocation in (("SelectMapping", minimal),
                             ("one-per-view", per_view)):
        disk, pool, forest = build(allocation)
        pool.stats.hits = pool.stats.misses = 0
        before = disk.cost_model.snapshot()
        from repro.core.answer import finalize_matches, split_bindings
        from repro.query.router import QueryRouter

        engine = CubetreeEngine(data.schema, buffer_pages=config.buffer_pages)
        router = engine.router
        for node, queries in workloads.items():
            for q in queries:
                decision = router.route(q, forest.access_paths())
                view = decision.path.view
                direct, residual = split_bindings(view, q, {})
                matches = forest.query_view(view.name, direct)
                finalize_matches(matches, view, q, {}, residual)
        io = disk.cost_model.stats - before
        results[name] = {
            "trees": forest.num_trees,
            "pages": forest.num_pages,
            "query_ms": io.total_ms,
            "hit_ratio": pool.stats.hit_ratio,
        }

    print_table(
        "Ablation: mapping policy",
        ["policy", "trees", "pages", "query time", "buffer hit ratio"],
        [[name, r["trees"], r["pages"], fmt_duration(r["query_ms"]),
          f"{r['hit_ratio']:.0%}"] for name, r in results.items()],
        verbose,
    )
    return results


# ----------------------------------------------------------------------
def run_packing(verbose: bool = True) -> Dict:
    """Packed bulk load vs dynamic Guttman insertion."""
    points = [((x, y), (1.0,)) for x in range(1, 101) for y in range(1, 101)]

    disk_p, pool_p = _pool()
    before = disk_p.cost_model.snapshot()
    packed = pack_rtree(pool_p, 2, [
        PackedRun(0, 2, 1, sorted(points, key=lambda e: sort_key(e[0], 2)))
    ])
    pool_p.flush_all()
    packed_io = disk_p.cost_model.stats - before

    disk_d, pool_d = _pool()
    before = disk_d.cost_model.snapshot()
    dynamic = RTree(pool_d, 2)
    import random as _random

    shuffled = list(points)
    _random.Random(13).shuffle(shuffled)
    for point, values in shuffled:
        dynamic.insert(point, values)
    pool_d.flush_all()
    dynamic_io = disk_d.cost_model.stats - before

    print_table(
        "Ablation: packed bulk load vs dynamic inserts",
        ["variant", "pages", "leaf fill", "build time",
         "seq writes", "rnd writes"],
        [["packed (paper)", packed.num_pages,
          f"{packed.leaf_utilization():.0%}",
          fmt_duration(packed_io.total_ms),
          packed_io.sequential_writes, packed_io.random_writes],
         ["dynamic (Guttman)", dynamic.num_pages,
          f"{dynamic.leaf_utilization():.0%}",
          fmt_duration(dynamic_io.total_ms),
          dynamic_io.sequential_writes, dynamic_io.random_writes]],
        verbose,
    )
    return {
        "packed_pages": packed.num_pages,
        "dynamic_pages": dynamic.num_pages,
        "packed_fill": packed.leaf_utilization(),
        "dynamic_fill": dynamic.leaf_utilization(),
        "packed_ms": packed_io.total_ms,
        "dynamic_ms": dynamic_io.total_ms,
    }


# ----------------------------------------------------------------------
def run_replication(
    config: Optional[ExperimentConfig] = None, verbose: bool = True
) -> Dict:
    """Apex-view replication on/off."""
    config = config or ExperimentConfig()
    _gen, data = build_warehouse(config)
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)
    workloads = {
        node: qgen.generate_for_node(node, 30) for node in FIG12_NODES
    }

    results = {}
    for name, replicate in (("with replicas", paper_replicas()),
                            ("no replicas", None)):
        engine = CubetreeEngine(data.schema, buffer_pages=config.buffer_pages)
        report = engine.materialize(paper_views(), data.facts,
                                    replicate=replicate)
        query_ms = sum(
            engine.query(q).io.total_ms
            for queries in workloads.values()
            for q in queries
        )
        results[name] = {
            "pages": report.pages,
            "query_ms": query_ms,
        }

    print_table(
        "Ablation: multi-sort-order replication of the apex view",
        ["variant", "pages", "query time"],
        [[name, r["pages"], fmt_duration(r["query_ms"])]
         for name, r in results.items()],
        verbose,
    )
    return results


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Run every ablation."""
    return {
        "sort_order": run_sort_order(verbose),
        "compression": run_compression(verbose),
        "mapping_policy": run_mapping_policy(config, verbose),
        "packing": run_packing(verbose),
        "replication": run_replication(config, verbose),
        "buffer_sensitivity": run_buffer_sensitivity(config, verbose),
    }


if __name__ == "__main__":
    run()


# ----------------------------------------------------------------------
def run_buffer_sensitivity(
    config: Optional[ExperimentConfig] = None, verbose: bool = True
) -> Dict:
    """Buffer-pool size vs Cubetree query cost (Sec. 2.4's hit-ratio
    argument: the forest's few shared top levels cache well, so query
    cost falls steeply once they fit)."""
    from dataclasses import replace

    config = config or ExperimentConfig()
    _gen, data = build_warehouse(config)
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)
    workload = [
        q
        for node in FIG12_NODES
        for q in qgen.generate_for_node(node, 20)
    ]

    results = {}
    for pages in (32, 128, 512):
        engine = CubetreeEngine(data.schema, buffer_pages=pages)
        engine.materialize(paper_views(), data.facts,
                           replicate=paper_replicas())
        engine.pool.stats.hits = engine.pool.stats.misses = 0
        query_ms = sum(engine.query(q).io.total_ms for q in workload)
        results[pages] = {
            "query_ms": query_ms,
            "hit_ratio": engine.pool.stats.hit_ratio,
        }

    print_table(
        "Ablation: buffer-pool size (Cubetree forest)",
        ["buffer pages", "query time", "hit ratio"],
        [[pages, fmt_duration(r["query_ms"]), f"{r['hit_ratio']:.0%}"]
         for pages, r in results.items()],
        verbose,
    )
    return results
