"""Table 5 — SelectMapping allocation of the TPC-D views to Cubetrees.

Paper (Table 5)::

    R1{x,y,z} <- V{partkey,suppkey,custkey}, V{partkey,suppkey},
                 V{custkey}, V{none}
    R2{x}     <- V{suppkey}
    R3{x}     <- V{partkey}

Also re-runs the GHRU 1-greedy selection at SF-1 statistics to confirm the
view/index sets themselves (Sec. 3 setup).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.mapping import select_mapping
from repro.cube.lattice import CubeLattice
from repro.cube.selection import select_views_and_indexes
from repro.experiments.common import (
    ExperimentConfig,
    paper_views,
    print_table,
)

#: SF-1 statistics used by the paper's selection.
SF1_DISTINCT = {  # repro: read-only
    "partkey": 200_000.0,
    "suppkey": 10_000.0,
    "custkey": 150_000.0,
}
SF1_FACTS = 6_001_215
SF1_CORRELATED = {frozenset({"partkey", "suppkey"}): 800_000.0}  # repro: read-only


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Regenerate Table 5 (and the selection that feeds it)."""
    config = config or ExperimentConfig()

    lattice = CubeLattice(("partkey", "suppkey", "custkey"))
    selection = select_views_and_indexes(
        lattice, SF1_DISTINCT, SF1_FACTS,
        correlated_domains=SF1_CORRELATED, max_structures=9,
    )
    print_table(
        "GHRU 1-greedy selection (SF 1 statistics)",
        ["structure", "detail"],
        [["view", "{" + ",".join(v) + "}" if v else "{none}"]
         for v in selection.views]
        + [["index", "I(" + ",".join(k) + ")"] for k in selection.indexes],
        verbose,
    )

    allocation = select_mapping(paper_views())
    rows = []
    for i, tree in enumerate(allocation.trees, start=1):
        coords = ",".join("xyzw"[: tree.dims]) or "x"
        for view in tree.views:
            rows.append([f"R{i}{{{coords}}}", view.name,
                         view.describe()])
    print_table(
        "Table 5: view allocation for the TPC-D dataset",
        ["Cubetree", "view", "definition"],
        rows,
        verbose,
    )
    return {
        "selection_views": [tuple(v) for v in selection.views],
        "selection_indexes": [tuple(k) for k in selection.indexes],
        "num_trees": allocation.num_trees,
        "allocation": [
            (tree.dims, tuple(view.name for view in tree.views))
            for tree in allocation.trees
        ],
    }


if __name__ == "__main__":
    run()
