"""Shared experiment scaffolding: configuration, engine construction, the
paper's selected views/indexes/replicas, and formatting helpers."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.conventional import ConventionalEngine
from repro.core.engine import CubetreeEngine
from repro.core.reports import LoadReport
from repro.relational.view import ViewDefinition
from repro.warehouse.tpcd import TPCDGenerator, WarehouseData

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.sharded import ShardedCubetreeEngine

#: The paper's selected view set V (Sec. 3, from GHRU 1-greedy).
PAPER_VIEW_SPECS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("V_psc", ("partkey", "suppkey", "custkey")),
    ("V_ps", ("partkey", "suppkey")),
    ("V_c", ("custkey",)),
    ("V_s", ("suppkey",)),
    ("V_p", ("partkey",)),
    ("V_none", ()),
)

#: The paper's selected index set I: three composite B-trees on the apex.
PAPER_INDEX_KEYS: Tuple[Tuple[str, ...], ...] = (
    ("custkey", "suppkey", "partkey"),
    ("partkey", "custkey", "suppkey"),
    ("suppkey", "partkey", "custkey"),
)

#: The Datablade replica orders for the apex view (Sec. 3): V{s,c,p} and
#: V{c,p,s}, chosen so every dimension leads one sort order.
PAPER_REPLICA_ORDERS: Tuple[Tuple[str, ...], ...] = (
    ("suppkey", "custkey", "partkey"),
    ("custkey", "partkey", "suppkey"),
)

#: The seven lattice nodes Fig. 12 plots (every node except "none").
FIG12_NODES: Tuple[Tuple[str, ...], ...] = (
    ("partkey", "suppkey", "custkey"),
    ("partkey", "suppkey"),
    ("partkey", "custkey"),
    ("suppkey", "custkey"),
    ("partkey",),
    ("suppkey",),
    ("custkey",),
)


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    The defaults reproduce the paper's setup scaled to laptop size:
    TPC-D at ``scale_factor`` of SF 1 with a buffer pool that is small
    relative to the data (the paper's 32 MB vs. ~600 MB regime).

    Environment overrides: ``REPRO_SCALE`` and ``REPRO_QUERIES``.
    """

    scale_factor: float = field(
        default_factory=lambda: float(os.environ.get("REPRO_SCALE", "0.01"))
    )
    seed: int = 42
    query_seed: int = 7
    buffer_pages: int = 256
    queries_per_node: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_QUERIES", "100"))
    )
    increment_fraction: float = 0.1
    sort_chunk_rows: int = 100_000


def paper_views() -> List[ViewDefinition]:
    """The materialized set V as ViewDefinitions."""
    return [ViewDefinition(name, attrs) for name, attrs in PAPER_VIEW_SPECS]


def paper_indexes() -> Dict[str, List[Tuple[str, ...]]]:
    """The index set I, keyed by owning view."""
    return {"V_psc": [tuple(key) for key in PAPER_INDEX_KEYS]}


def paper_replicas() -> Dict[str, List[Tuple[str, ...]]]:
    """The replication spec for the Cubetree configuration."""
    return {"V_psc": [tuple(order) for order in PAPER_REPLICA_ORDERS]}


def build_warehouse(config: ExperimentConfig) -> Tuple[TPCDGenerator, WarehouseData]:
    """Generate the TPC-D warehouse for a configuration."""
    gen = TPCDGenerator(scale_factor=config.scale_factor, seed=config.seed)
    return gen, gen.generate()


def build_cubetree_engine(
    config: ExperimentConfig,
    data: WarehouseData,
    replicate: bool = True,
) -> Tuple[CubetreeEngine, LoadReport]:
    """Build + load the Cubetree configuration (with replicas)."""
    engine = CubetreeEngine(
        data.schema,
        buffer_pages=config.buffer_pages,
        sort_chunk_rows=config.sort_chunk_rows,
    )
    report = engine.materialize(
        paper_views(),
        data.facts,
        replicate=paper_replicas() if replicate else None,
    )
    return engine, report


def build_sharded_engine(
    config: ExperimentConfig,
    data: WarehouseData,
    shards: int,
    replicate: bool = True,
    workers: Optional[int] = None,
) -> Tuple["ShardedCubetreeEngine", LoadReport]:
    """Build + load the sharded Cubetree configuration.

    At ``shards=1`` this is byte-identical to
    :func:`build_cubetree_engine` (same call sequence through one pool).
    """
    from repro.core.sharded import ShardedCubetreeEngine

    engine = ShardedCubetreeEngine(
        data.schema,
        buffer_pages=config.buffer_pages,
        sort_chunk_rows=config.sort_chunk_rows,
        shards=shards,
        workers=workers,
    )
    report = engine.materialize(
        paper_views(),
        data.facts,
        replicate=paper_replicas() if replicate else None,
    )
    return engine, report


def build_conventional_engine(
    config: ExperimentConfig, data: WarehouseData
) -> Tuple[ConventionalEngine, LoadReport]:
    """Build + load the conventional configuration (with indexes)."""
    engine = ConventionalEngine(
        data.schema,
        buffer_pages=config.buffer_pages,
        sort_chunk_rows=config.sort_chunk_rows,
    )
    engine.load_fact(data.facts)
    report = engine.materialize(paper_views(), indexes=paper_indexes())
    return engine, report


# ----------------------------------------------------------------------
# formatting
# ----------------------------------------------------------------------
def fmt_duration(ms: float) -> str:
    """Human-friendly duration for simulated times."""
    if ms < 1_000:
        return f"{ms:.1f} ms"
    seconds = ms / 1000.0
    if seconds < 120:
        return f"{seconds:.2f} s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 120:
        return f"{int(minutes)}m {secs:04.1f}s"
    hours, mins = divmod(minutes, 60)
    return f"{int(hours)}h {int(mins)}m"


def fmt_bytes(num: float) -> str:
    """Human-friendly byte count."""
    for unit in ("B", "KB", "MB", "GB"):
        if num < 1024 or unit == "GB":
            return f"{num:.1f} {unit}"
        num /= 1024
    return f"{num:.1f} GB"  # pragma: no cover


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    verbose: bool = True,
) -> None:
    """Render an aligned text table (the experiment output format)."""
    if not verbose:
        return
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in cells:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def node_label(node: Sequence[str]) -> str:
    """Fig. 12's axis labels, e.g. 'partkey,suppkey'."""
    return ",".join(node) if node else "none"
