"""The need for materialization — the paper's first validated claim.

"Our experiments first, validate the need for materializing OLAP views"
(Sec. 4).  The introduction motivates it: without summary tables,
"computing the sum of all sales from a fact table grouped by their region
would require (no less than) scanning the whole fact table", join and
bitmap indexes notwithstanding.

Three configurations answer the same workload (the Fig. 12 slice queries
*including* the no-predicate types, which are the ones materialization
helps most):

* on-the-fly — the fact table plus one join index per foreign key and
  bitmap indexes for hierarchy attributes; every aggregate computed at
  query time;
* conventional — materialized summary tables + B-trees;
* Cubetrees — the packed forest.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.onthefly import OnTheFlyEngine
from repro.experiments.common import (
    FIG12_NODES,
    ExperimentConfig,
    build_conventional_engine,
    build_cubetree_engine,
    build_warehouse,
    fmt_bytes,
    fmt_duration,
    node_label,
    print_table,
)
from repro.query.generator import RandomQueryGenerator


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Regenerate the need-for-materialization comparison."""
    config = config or ExperimentConfig()
    _gen, data = build_warehouse(config)

    onthefly = OnTheFlyEngine(data.schema, buffer_pages=config.buffer_pages)
    fly_report = onthefly.load_fact(data.facts)
    cube, cube_report = build_cubetree_engine(config, data)
    conv, conv_report = build_conventional_engine(config, data)

    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)
    per_node = max(10, config.queries_per_node // 5)

    rows = []
    totals = {"on-the-fly": 0.0, "conventional": 0.0, "cubetrees": 0.0}
    for node in FIG12_NODES:
        queries = qgen.generate_for_node(node, per_node,
                                         include_unbound=True)
        ms = {
            "on-the-fly": sum(
                onthefly.query(q).io.total_ms for q in queries),
            "conventional": sum(
                conv.query(q).io.total_ms for q in queries),
            "cubetrees": sum(cube.query(q).io.total_ms for q in queries),
        }
        for name in totals:
            totals[name] += ms[name]
        rows.append([node_label(node)] + [
            fmt_duration(ms[name]) for name in
            ("on-the-fly", "conventional", "cubetrees")
        ])
    rows.append(["TOTAL"] + [
        fmt_duration(totals[name]) for name in
        ("on-the-fly", "conventional", "cubetrees")
    ])
    print_table(
        f"The need for materialization ({per_node} queries/view incl. "
        "no-predicate types)",
        ["view", "on-the-fly (no views)", "conventional", "Cubetrees"],
        rows,
        verbose,
    )
    print_table(
        "Storage of each configuration",
        ["configuration", "bytes on disk"],
        [["on-the-fly (F + join/bitmap indexes)",
          fmt_bytes(fly_report.bytes_on_disk)],
         ["conventional (views + B-trees)",
          fmt_bytes(conv_report.bytes_on_disk)],
         ["Cubetrees (incl. replicas)",
          fmt_bytes(cube_report.bytes_on_disk)]],
        verbose,
    )
    return {
        "totals_ms": totals,
        "onthefly_bytes": fly_report.bytes_on_disk,
        "conventional_bytes": conv_report.bytes_on_disk,
        "cubetree_bytes": cube_report.bytes_on_disk,
    }


if __name__ == "__main__":
    run()
