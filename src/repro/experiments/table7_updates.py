"""Table 7 — refreshing the warehouse with a 10% increment.

Paper (Table 7, SF 1, 598,964-row increment, 24-hour window)::

    Incremental updates of materialized views   > 24 hours   (timed out)
    Re-computation of materialized views        12h 59m 11s
    Incremental updates of Cubetrees            8m 24s       (~100x)

The conventional per-tuple path is run against a deadline set to the same
multiple of the recompute time as the paper's 24-hour window (24h /
12h59m ~ 1.85x), so the ">24 hours" outcome is reproduced whenever the
per-tuple path is proportionally as slow as it was on Informix.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import UpdateTimeoutError
from repro.experiments.common import (
    ExperimentConfig,
    build_conventional_engine,
    build_cubetree_engine,
    build_warehouse,
    fmt_duration,
    print_table,
)

#: The paper's down-time window, as a multiple of its recompute time.
WINDOW_OVER_RECOMPUTE = 24.0 / (12 + 59 / 60)

PAPER = {  # repro: read-only
    "incremental": "> 24 hours",
    "recompute": "12h 59m 11s",
    "merge_pack": "8m 24s",
}


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Regenerate Table 7."""
    config = config or ExperimentConfig()
    gen, data = build_warehouse(config)
    increment = gen.generate_increment(config.increment_fraction)
    all_facts = list(data.facts) + list(increment)

    # Cubetree merge-pack.
    cube, _ = build_cubetree_engine(config, data)
    merge_report = cube.update(increment)
    merge_ms = merge_report.io.total_ms

    # Conventional recompute (fresh engine, same initial state).
    conv, _ = build_conventional_engine(config, data)
    recompute_report = conv.update_recompute(all_facts)
    recompute_ms = recompute_report.io.total_ms

    # Conventional per-tuple incremental, against the scaled 24h window.
    deadline_ms = WINDOW_OVER_RECOMPUTE * recompute_ms
    conv2, _ = build_conventional_engine(config, data)
    timed_out = False
    try:
        incr_report = conv2.update_incremental(
            increment, deadline_ms=deadline_ms
        )
        incremental_ms: Optional[float] = incr_report.io.total_ms
    except UpdateTimeoutError:
        timed_out = True
        incremental_ms = None

    incr_text = (
        f"> {fmt_duration(deadline_ms)} (timed out)"
        if timed_out
        else fmt_duration(incremental_ms or 0.0)
    )
    print_table(
        f"Table 7: updates on the TPC-D dataset "
        f"(10% increment = {len(increment)} rows; "
        "paper values at SF 1 in parentheses)",
        ["Method", "Total time"],
        [
            ["Incremental updates of materialized views",
             f"{incr_text} ({PAPER['incremental']})"],
            ["Re-computation of materialized views",
             f"{fmt_duration(recompute_ms)} ({PAPER['recompute']})"],
            ["Incremental updates of Cubetrees",
             f"{fmt_duration(merge_ms)} ({PAPER['merge_pack']})"],
        ],
        verbose,
    )
    return {
        "merge_pack_ms": merge_ms,
        "recompute_ms": recompute_ms,
        "incremental_ms": incremental_ms,
        "incremental_timed_out": timed_out,
        "deadline_ms": deadline_ms,
        "increment_rows": len(increment),
    }


if __name__ == "__main__":
    run()
