"""Figure 13 — system throughput (queries/second), min and max.

Paper: "the peak performance of the conventional approach barely matches
the system low for the Cubetrees"; averages 1.1 q/s conventional vs
10.1 q/s Cubetrees (~10x).

Throughput is computed from simulated I/O time per query batch; min/max
are taken across the per-node batches of the Fig. 12 workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import (
    FIG12_NODES,
    ExperimentConfig,
    build_conventional_engine,
    build_cubetree_engine,
    build_warehouse,
    node_label,
    print_table,
)
from repro.query.generator import RandomQueryGenerator

PAPER = {"conventional_avg": 1.1, "cubetrees_avg": 10.1}  # repro: read-only


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Regenerate Fig. 13; returns throughput stats in queries/sec."""
    config = config or ExperimentConfig()
    _gen, data = build_warehouse(config)
    cube, _ = build_cubetree_engine(config, data)
    conv, _ = build_conventional_engine(config, data)
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)

    series = ("cubetrees", "cubetrees_batched", "conventional")
    batches: Dict[str, List[float]] = {name: [] for name in series}
    multi: Dict[str, List[float]] = {name: [] for name in series}
    totals: Dict[str, float] = {name: 0.0 for name in series}
    workload = []
    for node in FIG12_NODES:
        queries = list(
            qgen.generate_for_node(node, config.queries_per_node)
        )
        workload.append((node, queries))
    def account(node, queries, name, ms):
        totals[name] += ms
        qps = len(queries) / (ms / 1000.0) if ms else float("inf")
        batches[name].append(qps)
        if len(node) >= 2:
            multi[name].append(qps)

    for node, queries in workload:
        account(node, queries, "cubetrees",
                sum(cube.query(q).io.total_ms for q in queries))
        account(node, queries, "conventional",
                sum(conv.query(q).io.total_ms for q in queries))
    # The same workload fired as one batch per node — the shared-pass
    # throughput mode the paper's Fig. 13 "system" setting implies.
    # Measured in a second loop from a cold pool per batch, so it is
    # priced like the bench `queries` suite and the batch scans cannot
    # perturb the per-query series above.
    for node, queries in workload:
        cube.pool.clear()
        account(node, queries, "cubetrees_batched",
                cube.query_batch(queries).io.total_ms)

    total_queries = len(FIG12_NODES) * config.queries_per_node
    stats = {
        name: {
            "min": min(values),
            "max": max(values),
            "avg": (
                total_queries / (totals[name] / 1000.0)
                if totals[name]
                else float("inf")
            ),
        }
        for name, values in batches.items()
    }
    print_table(
        "Figure 13: system throughput (queries/sec; "
        f"paper averages: conventional {PAPER['conventional_avg']}, "
        f"Cubetrees {PAPER['cubetrees_avg']})",
        ["Configuration", "min", "max", "avg"],
        [
            [name,
             f"{s['min']:.1f}", f"{s['max']:.1f}", f"{s['avg']:.1f}"]
            for name, s in stats.items()
        ],
        verbose,
    )
    # The paper's "conventional peak barely matches the Cubetree low"
    # holds on views that span many pages; at reduced scale that means
    # the multi-attribute nodes (single-attribute views fit in 1-2 pages
    # and distort the extremes — see EXPERIMENTS.md).
    for name, values in multi.items():
        stats[name]["multi_min"] = min(values)
        stats[name]["multi_max"] = max(values)
    print_table(
        "Figure 13 (multi-attribute views only)",
        ["Configuration", "min", "max"],
        [
            [name, f"{s['multi_min']:.1f}", f"{s['multi_max']:.1f}"]
            for name, s in stats.items()
        ],
        verbose,
    )
    return stats


if __name__ == "__main__":
    run()
