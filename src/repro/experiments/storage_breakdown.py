"""Storage breakdown — per-structure pages behind the Sec. 3.2 numbers.

Not a numbered table in the paper, but the evaluation's storage claim
(602 MB vs 293 MB) deserves a per-structure account: view tables, B-tree
indexes, Cubetrees (with per-view tuple counts and leaf utilization).
Also verifies the paper's "about 90% of the pages of every index
correspond to compressed leaf nodes".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.constants import PAGE_SIZE
from repro.errors import InternalError
from repro.experiments.common import (
    ExperimentConfig,
    build_conventional_engine,
    build_cubetree_engine,
    build_warehouse,
    fmt_bytes,
    print_table,
)


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Regenerate the per-structure storage breakdown."""
    config = config or ExperimentConfig()
    _gen, data = build_warehouse(config)
    cube, cube_report = build_cubetree_engine(config, data)
    conv, conv_report = build_conventional_engine(config, data)

    rows = []
    for name, view in sorted(conv.views.items()):
        rows.append(["conventional", name, len(view),
                     view.data_pages, fmt_bytes(view.data_pages * PAGE_SIZE)])
        for attrs, tree in view.indexes.items():
            rows.append(["conventional", f"  I({','.join(attrs)})",
                         len(tree), tree.num_pages,
                         fmt_bytes(tree.num_pages * PAGE_SIZE)])

    leaf_pages = 0
    total_pages = 0
    if cube.forest is None:
        raise InternalError("cubetree engine has no forest after load")
    for i, tree in enumerate(cube.forest.cubetrees, start=1):
        pages = tree.num_pages
        leaves = len(tree.tree.leaf_page_ids)
        leaf_pages += leaves
        total_pages += pages
        util = tree.leaf_utilization()
        rows.append(["cubetrees", f"R{i} ({len(tree.views)} views)",
                     len(tree), pages, fmt_bytes(pages * PAGE_SIZE)])
        rows.append(["cubetrees", f"  leaf fill {util:.0%}, "
                     f"{leaves}/{pages} leaf pages", "", "", ""])

    print_table(
        "Storage breakdown (views + indexes vs Cubetree forest)",
        ["config", "structure", "tuples", "pages", "bytes"],
        rows,
        verbose,
    )

    leaf_fraction = leaf_pages / total_pages if total_pages else 0.0
    print_table(
        "Compression coverage (paper: ~90% of pages are compressed leaves)",
        ["metric", "value"],
        [["compressed leaf pages / total pages", f"{leaf_fraction:.0%}"],
         ["conventional total", fmt_bytes(conv_report.bytes_on_disk)],
         ["cubetrees total", fmt_bytes(cube_report.bytes_on_disk)]],
        verbose,
    )
    return {
        "leaf_fraction": leaf_fraction,
        "conventional_bytes": conv_report.bytes_on_disk,
        "cubetree_bytes": cube_report.bytes_on_disk,
        "view_sizes": cube.view_sizes(),
    }


if __name__ == "__main__":
    run()
