"""Experiment harness: one module per table/figure of the paper.

Each module exposes ``run(config=None, verbose=True) -> dict`` that sets up
the workload, measures both storage organizations on the shared simulated
device, prints the same rows/series the paper reports (next to the paper's
own numbers), and returns the measurements for assertions.

Run everything from the command line::

    python -m repro.experiments.runner            # all experiments
    python -m repro.experiments.table6_loading    # just one
"""

from repro.experiments.common import ExperimentConfig

__all__ = ["ExperimentConfig"]
