"""Figure 12 — total execution time of 100 random slice queries per view.

The paper plots, for each of the seven lattice nodes, the total time of 100
uniformly-drawn slice queries under both configurations: Cubetrees win
every node, most queries run at sub-second levels, and the overall gap is
about an order of magnitude.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    FIG12_NODES,
    ExperimentConfig,
    build_conventional_engine,
    build_cubetree_engine,
    build_warehouse,
    fmt_duration,
    node_label,
    print_table,
)
from repro.query.generator import RandomQueryGenerator


def run(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> Dict:
    """Regenerate the Fig. 12 series; returns per-node totals (ms)."""
    config = config or ExperimentConfig()
    _gen, data = build_warehouse(config)
    cube, _ = build_cubetree_engine(config, data)
    conv, _ = build_conventional_engine(config, data)
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)

    per_node: Dict[str, Dict[str, float]] = {}
    workload = []
    for node in FIG12_NODES:
        queries = list(
            qgen.generate_for_node(node, config.queries_per_node)
        )
        workload.append((node, queries))
        cube_ms = sum(cube.query(q).io.total_ms for q in queries)
        conv_ms = sum(conv.query(q).io.total_ms for q in queries)
        per_node[node_label(node)] = {
            "cubetrees": cube_ms,
            "conventional": conv_ms,
        }
    # The same workload once more as one batch per node: shared run
    # passes where the cost gate prices them cheaper, per-query
    # otherwise.  Measured in a second loop from a cold buffer pool so
    # the batch scans do not perturb the per-query series above, and so
    # each batch is priced like the bench `queries` suite (cold cache)
    # rather than riding on pages the serial pass just faulted in.
    for node, queries in workload:
        cube.pool.clear()
        per_node[node_label(node)]["batched"] = (
            cube.query_batch(queries).io.total_ms
        )
    rows = []
    for node, _queries in workload:
        label = node_label(node)
        cube_ms = per_node[label]["cubetrees"]
        conv_ms = per_node[label]["conventional"]
        speedup = f"{conv_ms / cube_ms:.1f}x" if cube_ms else "-"
        rows.append([
            label, fmt_duration(conv_ms), fmt_duration(cube_ms),
            fmt_duration(per_node[label]["batched"]), speedup,
        ])

    total_cube = sum(v["cubetrees"] for v in per_node.values())
    total_conv = sum(v["conventional"] for v in per_node.values())
    total_batch = sum(v["batched"] for v in per_node.values())
    rows.append([
        "TOTAL", fmt_duration(total_conv), fmt_duration(total_cube),
        fmt_duration(total_batch),
        f"{total_conv / total_cube:.1f}x" if total_cube else "-",
    ])
    print_table(
        f"Figure 12: total time of {config.queries_per_node} queries per "
        f"view (simulated I/O; paper shows ~10x overall)",
        ["view", "Conventional", "Cubetrees", "Cubetrees (batched)",
         "speedup"],
        rows,
        verbose,
    )
    return {
        "per_node": per_node,
        "total_cubetrees_ms": total_cube,
        "total_conventional_ms": total_conv,
        "total_batched_ms": total_batch,
        "ratio": total_conv / total_cube if total_cube else float("inf"),
        "batch_ratio": (
            total_cube / total_batch if total_batch else float("inf")
        ),
    }


if __name__ == "__main__":
    run()
