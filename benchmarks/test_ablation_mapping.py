"""Ablation bench: SelectMapping's minimal forest vs one tree per view.

Paper shape asserted (Sec. 2.4): the minimal forest never uses more pages
than the one-tree-per-view layout (fewer non-leaf levels) while answering
the same workload at least as cheaply overall.
"""

from repro.experiments import ablations


def test_mapping_policy(benchmark, config):
    result = benchmark.pedantic(
        lambda: ablations.run_mapping_policy(config, verbose=True),
        rounds=1, iterations=1,
    )
    minimal = result["SelectMapping"]
    per_view = result["one-per-view"]
    assert minimal["trees"] < per_view["trees"]
    assert minimal["pages"] <= per_view["pages"]
    # Query answers must not get materially worse under the minimal forest.
    assert minimal["query_ms"] <= per_view["query_ms"] * 1.25
