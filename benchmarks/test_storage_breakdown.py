"""Storage-breakdown bench: the structure behind the Sec. 3.2 numbers.

Paper shapes asserted: ~90% of Cubetree pages are compressed leaves, the
packed leaves are nearly full, and the forest (with two apex replicas)
still undercuts the conventional tables+indexes.
"""

from repro.experiments import storage_breakdown


def test_storage_breakdown(benchmark, config):
    result = benchmark.pedantic(
        lambda: storage_breakdown.run(config, verbose=True),
        rounds=1, iterations=1,
    )
    assert result["leaf_fraction"] > 0.85, (
        f"only {result['leaf_fraction']:.0%} of pages are leaves"
    )
    assert result["cubetree_bytes"] < result["conventional_bytes"]
    # The replicas triple the apex view's rows yet stay within budget.
    sizes = result["view_sizes"]
    replicas = [v for name, v in sizes.items() if "__rep_" in name]
    assert len(replicas) == 2
    assert all(v == sizes["V_psc"] for v in replicas)
