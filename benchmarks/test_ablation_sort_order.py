"""Ablation bench: low-coordinate packing order vs Hilbert curve.

Paper shape asserted (Sec. 2.4): the low-coordinate sort keeps every view
in one contiguous run (a single view transition in the leaf stream), while
a space-filling curve interleaves views — which is why the paper considers
"only sorts based on lowY, lowX and not space filling curves".
"""

from repro.experiments import ablations


def test_sort_order_interleaving(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.run_sort_order(verbose=True),
        rounds=1, iterations=1,
    )
    assert result["low_transitions"] == 1
    assert result["hilbert_transitions"] > 10 * result["low_transitions"]


def test_hilbert_key_throughput(benchmark):
    """Microbench: the Hilbert encoder itself (for context)."""
    from repro.rtree.packing import hilbert_sort_key

    state = {"i": 0}

    def encode():
        state["i"] += 1
        return hilbert_sort_key((state["i"] % 1000 + 1, 37), 2)

    assert benchmark(encode) >= 0
