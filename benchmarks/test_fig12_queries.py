"""Figure 12 bench: 100 random slice queries per lattice view.

Paper shape asserted: Cubetrees beat the conventional organization on
every multi-attribute view and by roughly an order of magnitude overall;
single-attribute views run at noise level (a page or two) for both.
"""

import pytest

from repro.experiments.common import FIG12_NODES, node_label
from repro.query.generator import RandomQueryGenerator


@pytest.fixture(scope="module")
def workload(config, warehouse):
    _gen, data = warehouse
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed)
    return {
        node: qgen.generate_for_node(node, config.queries_per_node)
        for node in FIG12_NODES
    }


def run_batch(engine, queries):
    return sum(engine.query(q).io.total_ms for q in queries)


def test_fig12_per_view_totals(benchmark, workload, loaded_cubetree,
                               loaded_conventional):
    cube, _ = loaded_cubetree
    conv, _ = loaded_conventional

    def measure():
        per_node = {}
        for node, queries in workload.items():
            per_node[node_label(node)] = {
                "cubetrees": run_batch(cube, queries),
                "conventional": run_batch(conv, queries),
            }
        return per_node

    per_node = benchmark.pedantic(measure, rounds=1, iterations=1)

    total_cube = sum(v["cubetrees"] for v in per_node.values())
    total_conv = sum(v["conventional"] for v in per_node.values())
    assert total_cube < total_conv
    assert total_conv / total_cube > 4.0, (
        f"overall query advantage collapsed: {total_conv / total_cube:.1f}x"
    )
    # Cubetrees win every multi-attribute view.
    for node in FIG12_NODES:
        if len(node) < 2:
            continue
        label = node_label(node)
        assert per_node[label]["cubetrees"] < per_node[label]["conventional"], (
            f"conventional won on {label}"
        )
    # Single-attribute views stay at noise level for both configurations.
    for node in FIG12_NODES:
        if len(node) == 1:
            label = node_label(node)
            assert per_node[label]["cubetrees"] < 500.0
            assert per_node[label]["conventional"] < 500.0


def test_cubetree_query_latency(benchmark, loaded_cubetree, workload):
    """Microbench: single-query wall latency through the Cubetree engine."""
    cube, _ = loaded_cubetree
    queries = workload[("partkey", "suppkey", "custkey")]
    state = {"i": 0}

    def one_query():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return cube.query(q)

    result = benchmark(one_query)
    assert len(result.rows) >= 0


def test_conventional_query_latency(benchmark, loaded_conventional, workload):
    """Microbench: single-query wall latency through the baseline."""
    conv, _ = loaded_conventional
    queries = workload[("partkey", "suppkey", "custkey")]
    state = {"i": 0}

    def one_query():
        q = queries[state["i"] % len(queries)]
        state["i"] += 1
        return conv.query(q)

    result = benchmark(one_query)
    assert len(result.rows) >= 0
