"""Shared fixtures for the benchmark suite.

Engines are expensive to build, so query-side benches share one loaded
pair per session; load/update benches build their own fresh instances
(they time construction or mutate state).

Scale is controlled by ``REPRO_SCALE`` (default 0.01 = ~60k fact rows) and
query counts by ``REPRO_QUERIES`` (default 100 per view, as in the paper).
"""

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    build_conventional_engine,
    build_cubetree_engine,
    build_warehouse,
)


@pytest.fixture(scope="session")
def config():
    return ExperimentConfig()


@pytest.fixture(scope="session")
def warehouse(config):
    gen, data = build_warehouse(config)
    return gen, data


@pytest.fixture(scope="session")
def increment(config, warehouse):
    gen, _data = warehouse
    return gen.generate_increment(config.increment_fraction)


@pytest.fixture(scope="session")
def loaded_cubetree(config, warehouse):
    _gen, data = warehouse
    engine, report = build_cubetree_engine(config, data)
    return engine, report


@pytest.fixture(scope="session")
def loaded_conventional(config, warehouse):
    _gen, data = warehouse
    engine, report = build_conventional_engine(config, data)
    return engine, report
