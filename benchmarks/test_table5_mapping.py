"""Table 5 bench: SelectMapping allocation + GHRU selection.

Regenerates the paper's Table 5 rows and asserts both the selected
view/index sets (Sec. 3) and the allocation
``R1{x,y,z} + R2{x} + R3{x}``.
"""

from repro.core.mapping import select_mapping
from repro.experiments import table5_mapping
from repro.experiments.common import paper_views


def test_table5_mapping(benchmark):
    result = benchmark.pedantic(
        lambda: table5_mapping.run(verbose=True), rounds=1, iterations=1
    )

    # Paper's V: {psc, ps, c, s, p, none}.
    assert set(map(frozenset, result["selection_views"])) == {
        frozenset(("partkey", "suppkey", "custkey")),
        frozenset(("partkey", "suppkey")),
        frozenset(("custkey",)),
        frozenset(("suppkey",)),
        frozenset(("partkey",)),
        frozenset(),
    }
    # Paper's I: three composite indexes on the apex, one per leading attr.
    assert len(result["selection_indexes"]) == 3
    assert {k[0] for k in result["selection_indexes"]} == {
        "partkey", "suppkey", "custkey",
    }
    # Table 5: three Cubetrees, R1 three-dimensional holding 4 views,
    # R2/R3 one-dimensional singletons.
    assert result["num_trees"] == 3
    dims = [d for d, _views in result["allocation"]]
    sizes = [len(views) for _d, views in result["allocation"]]
    assert dims == [3, 1, 1]
    assert sizes == [4, 1, 1]


def test_select_mapping_throughput(benchmark):
    """Microbench: the mapping algorithm itself is linear and fast."""
    views = paper_views()
    allocation = benchmark(lambda: select_mapping(views))
    assert allocation.num_trees == 3
