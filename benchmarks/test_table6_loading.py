"""Table 6 bench: initial load + storage of both configurations.

Paper shape asserted: Cubetrees load several times faster than the
conventional tables+indexes (paper: ~16x) and use meaningfully less disk
(paper: 51% less) despite carrying two extra apex replicas.
"""

from repro.experiments import table6_loading


def test_table6_loading(benchmark, config):
    result = benchmark.pedantic(
        lambda: table6_loading.run(config, verbose=True),
        rounds=1, iterations=1,
    )
    # Who wins, by roughly what factor.
    assert result["ratio"] > 5.0, (
        f"Cubetree load advantage collapsed: {result['ratio']:.1f}x"
    )
    # Storage: combined storage+index beats tables+B-trees.
    assert result["savings"] > 0.2, (
        f"storage saving too small: {result['savings']:.0%}"
    )
    # The conventional 'Views' phase dominates its 'Indices' phase
    # (paper: 10h58m vs 51m).
    assert result["conventional_views_ms"] > result["conventional_indexes_ms"]


def test_cubetree_packing_rate(benchmark, config, warehouse):
    """Microbench: wall-clock packing throughput of the Cubetree loader."""
    from repro.experiments.common import build_cubetree_engine

    _gen, data = warehouse

    def load():
        engine, report = build_cubetree_engine(config, data)
        return report

    report = benchmark.pedantic(load, rounds=1, iterations=1)
    assert report.view_rows > 0
