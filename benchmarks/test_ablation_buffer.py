"""Ablation bench: buffer-pool size sensitivity.

Paper shape asserted (Sec. 2.4): the Cubetree forest's shared top levels
cache well, so a larger buffer pool strictly helps — higher hit ratio and
no worse query time.
"""

from repro.experiments import ablations


def test_buffer_sensitivity(benchmark, config):
    result = benchmark.pedantic(
        lambda: ablations.run_buffer_sensitivity(config, verbose=True),
        rounds=1, iterations=1,
    )
    sizes = sorted(result)
    for small, big in zip(sizes, sizes[1:]):
        assert result[big]["hit_ratio"] >= result[small]["hit_ratio"] - 0.02
        assert result[big]["query_ms"] <= result[small]["query_ms"] * 1.05
