"""Table 7 bench: refreshing the warehouse with a 10% increment.

Paper shape asserted: merge-pack is the fastest method by a wide margin;
full recomputation is in the middle; per-tuple incremental maintenance is
the slowest and blows the (scaled) 24-hour window exactly as the paper's
"> 24 hours" row reports.
"""

from repro.experiments import table7_updates


def test_table7_updates(benchmark, config):
    result = benchmark.pedantic(
        lambda: table7_updates.run(config, verbose=True),
        rounds=1, iterations=1,
    )
    merge = result["merge_pack_ms"]
    recompute = result["recompute_ms"]

    # Merge-pack wins against recomputation by a healthy factor.
    assert merge < recompute
    assert recompute / merge > 3.0, (
        f"merge-pack advantage collapsed: {recompute / merge:.1f}x"
    )
    # The per-tuple path misses the scaled down-time window (paper: >24h),
    # or — if it finishes — is slower than recomputation.
    if result["incremental_timed_out"]:
        assert result["incremental_ms"] is None
    else:
        assert result["incremental_ms"] > recompute


def test_merge_pack_rate(benchmark, config, warehouse, increment):
    """Microbench: wall-clock merge-pack throughput."""
    from repro.experiments.common import build_cubetree_engine

    _gen, data = warehouse

    def merge():
        engine, _ = build_cubetree_engine(config, data)
        return engine.update(increment)

    report = benchmark.pedantic(merge, rounds=1, iterations=1)
    assert report.rows_applied > 0
    # Merge-pack I/O stays predominantly sequential.
    assert report.io.sequential_writes > report.io.random_writes
