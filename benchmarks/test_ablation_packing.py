"""Ablation bench: packed bulk load vs dynamic (Guttman) insertion.

Paper shape asserted: packing fills leaves to ~100% (dynamic trees hover
near the classic ~70%), uses fewer pages, builds faster, and writes
sequentially.
"""

from repro.experiments import ablations


def test_packed_vs_dynamic(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.run_packing(verbose=True),
        rounds=1, iterations=1,
    )
    assert result["packed_fill"] > 0.95
    assert result["dynamic_fill"] < 0.85
    assert result["packed_pages"] < result["dynamic_pages"]
    assert result["packed_ms"] < result["dynamic_ms"]


def test_pack_rate_microbench(benchmark):
    """Microbench: points/second through the packer."""
    from repro.rtree.packing import PackedRun, pack_rtree, sort_key
    from repro.storage.buffer import BufferPool
    from repro.storage.disk import DiskManager

    entries = sorted(
        [((i,), (1.0,)) for i in range(1, 20_001)],
        key=lambda e: sort_key(e[0], 1),
    )

    def pack():
        pool = BufferPool(DiskManager(), capacity=128)
        return pack_rtree(pool, 1, [PackedRun(0, 1, 1, entries)])

    tree = benchmark(pack)
    assert len(tree) == 20_000
