"""Ablation bench: multi-sort-order replication of the apex view.

Paper shape asserted (Sec. 3): the two extra sort orders of V{p,s,c} are
what compensate for the conventional configuration's three composite
indexes — removing them costs an order of magnitude of query time while
saving storage.
"""

from repro.experiments import ablations


def test_replication(benchmark, config):
    result = benchmark.pedantic(
        lambda: ablations.run_replication(config, verbose=True),
        rounds=1, iterations=1,
    )
    with_rep = result["with replicas"]
    without = result["no replicas"]
    # Replication trades storage for query time.
    assert with_rep["pages"] > without["pages"]
    assert with_rep["query_ms"] < without["query_ms"]
    assert without["query_ms"] / with_rep["query_ms"] > 3.0
