"""Extension bench: arbitrary range queries (paper Sec. 3.1 prediction).

The paper's experiments use equality predicates only and note that
"R-trees in general behave faster in bounded range queries ... in a more
general experiment where arbitrary range queries are allowed we expect
that the Cubetrees would be even faster."  This bench runs that more
general experiment and asserts the prediction: the Cubetree advantage on
range workloads is at least as large as on the equality workload.
"""

from repro.experiments.common import FIG12_NODES
from repro.query.generator import RandomQueryGenerator


def test_range_query_advantage(benchmark, config, warehouse,
                               loaded_cubetree, loaded_conventional):
    _gen, data = warehouse
    cube, _ = loaded_cubetree
    conv, _ = loaded_conventional
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed + 2)
    per_node = max(10, config.queries_per_node // 4)
    nodes = [node for node in FIG12_NODES if len(node) >= 2]

    def measure():
        totals = {"equality": {"cube": 0.0, "conv": 0.0},
                  "range": {"cube": 0.0, "conv": 0.0}}
        for node in nodes:
            eq = qgen.generate_for_node(node, per_node)
            rg = qgen.generate_range_queries(node, per_node,
                                             width_fraction=0.05)
            totals["equality"]["cube"] += sum(
                cube.query(q).io.total_ms for q in eq)
            totals["equality"]["conv"] += sum(
                conv.query(q).io.total_ms for q in eq)
            totals["range"]["cube"] += sum(
                cube.query(q).io.total_ms for q in rg)
            totals["range"]["conv"] += sum(
                conv.query(q).io.total_ms for q in rg)
        return totals

    totals = benchmark.pedantic(measure, rounds=1, iterations=1)
    eq_ratio = totals["equality"]["conv"] / totals["equality"]["cube"]
    rg_ratio = totals["range"]["conv"] / totals["range"]["cube"]
    print(f"\nequality advantage {eq_ratio:.1f}x, "
          f"range advantage {rg_ratio:.1f}x")
    # Cubetrees win range workloads...
    assert rg_ratio > 3.0
    # ...and the paper's prediction: at least as strongly as equality ones
    # (allow 20% slack for workload noise).
    assert rg_ratio > 0.8 * eq_ratio
