"""Figure 13 bench: system throughput (queries/sec) of both configurations.

Paper shape asserted: Cubetree average throughput is several times the
conventional average (paper: 10.1 vs 1.1 q/s).  The paper's "conventional
peak barely matches the Cubetree low" holds at SF 1 where even the
single-attribute views span many pages; at reduced scale those views fit
in a page or two and the conventional best case becomes artificially
fast, so only the average-ratio shape is asserted (see EXPERIMENTS.md).
"""

from repro.experiments.common import FIG12_NODES
from repro.query.generator import RandomQueryGenerator


def test_fig13_throughput(benchmark, config, warehouse, loaded_cubetree,
                          loaded_conventional):
    _gen, data = warehouse
    cube, _ = loaded_cubetree
    conv, _ = loaded_conventional
    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed + 1)
    workload = {
        node: qgen.generate_for_node(node, config.queries_per_node)
        for node in FIG12_NODES
    }

    def measure():
        stats = {}
        for engine, name in ((cube, "cubetrees"), (conv, "conventional")):
            qps = []
            multi = []
            for node, queries in workload.items():
                ms = sum(engine.query(q).io.total_ms for q in queries)
                rate = len(queries) / (ms / 1000.0) if ms else 1e9
                qps.append(rate)
                if len(node) >= 2:
                    multi.append(rate)
            total_queries = sum(len(q) for q in workload.values())
            total_ms = sum(
                len(queries) / v * 1000.0
                for queries, v in zip(workload.values(), qps)
            )
            stats[name] = {
                "min": min(qps),
                "max": max(qps),
                "avg": total_queries / (total_ms / 1000.0),
                "multi_min": min(multi),
                "multi_max": max(multi),
            }
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = stats["cubetrees"]["avg"] / stats["conventional"]["avg"]
    assert ratio > 4.0, f"throughput advantage collapsed: {ratio:.1f}x"
    # The Cubetree worst case stays interactive.
    assert stats["cubetrees"]["min"] > 10.0
    # The paper's headline: "the peak performance of the conventional
    # approach barely matches the system low for the Cubetrees" — holds on
    # the views that span many pages (allow 25% slack for workload noise).
    assert (stats["conventional"]["multi_max"]
            < 1.25 * stats["cubetrees"]["multi_min"])
