"""Ablation bench: compressed vs uncompressed Cubetree leaves.

Paper shape asserted: eliding the valid mapping's padding zeros shrinks
the tree substantially (it is why packed+compressed Cubetrees undercut
even the unindexed relational representation).
"""

from repro.experiments import ablations


def test_leaf_compression(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.run_compression(verbose=True),
        rounds=1, iterations=1,
    )
    assert result["compressed_pages"] < result["uncompressed_pages"]
    assert result["saving"] > 0.2, (
        f"compression saving too small: {result['saving']:.0%}"
    )
    assert result["columnar_pages"] < result["compressed_pages"]
    assert result["columnar_ratio"] > 2.0, (
        f"columnar ratio too small: {result['columnar_ratio']:.2f}:1"
    )
