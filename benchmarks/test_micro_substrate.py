"""Microbenchmarks of the storage substrate (context for the experiments)."""

import random

from repro.btree.bulk import bulk_load_btree
from repro.btree.tree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.codec import RecordCodec, float_column, int_column
from repro.storage.disk import DiskManager
from repro.storage.heap import RID, HeapFile


def make_pool(capacity=512):
    return BufferPool(DiskManager(), capacity=capacity)


def test_heap_insert_rate(benchmark):
    pool = make_pool()
    heap = HeapFile(pool, RecordCodec([int_column(), float_column()]))
    state = {"i": 0}

    def insert():
        state["i"] += 1
        return heap.insert((state["i"], 1.0))

    benchmark(insert)
    assert len(heap) > 0


def test_btree_insert_rate(benchmark):
    pool = make_pool()
    tree = BPlusTree(pool, 1)
    rng = random.Random(3)
    state = {"i": 0}

    def insert():
        state["i"] += 1
        tree.insert((rng.randrange(10**9),), RID(state["i"], 0))

    benchmark(insert)
    assert len(tree) > 0


def test_btree_bulk_load_rate(benchmark):
    entries = [((i,), RID(i, 0)) for i in range(20_000)]

    def load():
        return bulk_load_btree(make_pool(), 1, entries)

    tree = benchmark(load)
    assert len(tree) == 20_000


def test_btree_point_lookup_rate(benchmark):
    pool = make_pool()
    tree = bulk_load_btree(pool, 1, [((i,), RID(i, 0))
                                     for i in range(50_000)])
    rng = random.Random(5)

    def lookup():
        return tree.search_one((rng.randrange(50_000),))

    assert benchmark(lookup) is not None


def test_rtree_search_rate(benchmark):
    from repro.rtree.geometry import Rect
    from repro.rtree.packing import PackedRun, pack_rtree, sort_key

    pool = make_pool()
    points = sorted(
        [((x, y), (1.0,)) for x in range(1, 201) for y in range(1, 201)],
        key=lambda e: sort_key(e[0], 2),
    )
    tree = pack_rtree(pool, 2, [PackedRun(0, 2, 1, points)])
    rng = random.Random(7)

    def search():
        y = rng.randrange(1, 201)
        return sum(1 for _ in tree.search(Rect((1, y), (200, y))))

    assert benchmark(search) == 200
