"""Baseline bench: materialized views vs computing aggregates on the fly.

The paper's first claim ("Our experiments first validate the need for
materializing OLAP views", Sec. 4) is motivated in the introduction:
without summary tables, "computing the sum of all sales from a fact table
grouped by their region would require (no less than) scanning the whole
fact table", even with join/bitmap indexes.

This bench runs the Fig. 12 workload *including* the no-predicate query
types (the ones materialization helps most) against three configurations:
the no-materialization ROLAP baseline (F + join indexes), the
conventional materialized views, and the Cubetrees.
"""

from repro.core.onthefly import OnTheFlyEngine
from repro.experiments.common import FIG12_NODES
from repro.query.generator import RandomQueryGenerator


def test_materialization_is_needed(benchmark, config, warehouse,
                                   loaded_cubetree, loaded_conventional):
    _gen, data = warehouse
    cube, _ = loaded_cubetree
    conv, _ = loaded_conventional
    onthefly = OnTheFlyEngine(data.schema, buffer_pages=config.buffer_pages)
    onthefly.load_fact(data.facts)

    qgen = RandomQueryGenerator(data.schema, seed=config.query_seed + 3)
    per_node = max(10, config.queries_per_node // 5)
    workload = [
        q
        for node in FIG12_NODES
        for q in qgen.generate_for_node(node, per_node,
                                        include_unbound=True)
    ]

    def measure():
        return {
            "on-the-fly": sum(
                onthefly.query(q).io.total_ms for q in workload),
            "conventional": sum(
                conv.query(q).io.total_ms for q in workload),
            "cubetrees": sum(
                cube.query(q).io.total_ms for q in workload),
        }

    totals = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n" + "  ".join(
        f"{name}={ms / 1000:.2f}s" for name, ms in totals.items()
    ))
    # Materialization wins (the paper's first validated claim)...
    assert totals["conventional"] < totals["on-the-fly"]
    assert totals["cubetrees"] < totals["on-the-fly"] / 5.0
    # ...and answers stay identical across all three configurations.
    probe = workload[:3]
    for q in probe:
        a = onthefly.query(q).rows
        assert cube.query(q).rows == a
        assert conv.query(q).rows == a
