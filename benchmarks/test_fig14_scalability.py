"""Figure 14 bench: Cubetree query time vs dataset size.

Paper shape asserted: doubling the dataset leaves Cubetree query time
practically unchanged (paper shows a near-flat line from 1 GB to 2 GB;
small growth comes from larger outputs).
"""

from dataclasses import replace

from repro.experiments import fig14_scalability


def test_fig14_scalability(benchmark, config):
    # Keep the doubled build affordable: a trimmed query count is enough
    # to expose the trend.
    small_config = replace(config, queries_per_node=min(
        50, config.queries_per_node))
    result = benchmark.pedantic(
        lambda: fig14_scalability.run(small_config, verbose=True),
        rounds=1, iterations=1,
    )
    assert result["growth"] < 1.7, (
        f"Cubetree query time grew {result['growth']:.2f}x when the "
        "dataset doubled — the paper's flat trend is lost"
    )
    # The per-view numbers exist for every plotted view.
    assert set(result["small"]) == set(result["big"])
