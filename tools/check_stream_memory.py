#!/usr/bin/env python3
"""CI gate: the streaming bulk load stays within its sort-buffer budget.

Builds the paper configuration twice over the same warehouse — once
through the classic in-memory pack, once through the bounded-memory
streaming path (``REPRO_BUILD_MEMORY``-style budget, forced via
:func:`repro.core.extsort.set_build_memory`) — and requires:

* identical storage (page count) and simulated load cost,
* the external sorter's peak buffer at or below the budget,
* at least one spilled run (otherwise the cap was not exercised).

Exits non-zero with a diagnostic when any bound is violated.
"""

from __future__ import annotations

import sys

#: Sort-buffer budget in entries — far below the scale-0.002 view rows,
#: so every non-trivial view spills.
BUDGET = 1024
SCALE = 0.002
SEED = 42


def main() -> int:
    from repro.core.extsort import set_build_memory
    from repro.experiments.common import (
        ExperimentConfig,
        build_cubetree_engine,
        build_warehouse,
    )
    from repro.obs import get_registry

    config = ExperimentConfig(scale_factor=SCALE, seed=SEED)
    _generator, data = build_warehouse(config)

    classic, _ = build_cubetree_engine(config, data)
    classic_pages = classic.forest.num_pages
    classic_ms = classic.disk.cost_model.stats.simulated_ms

    registry = get_registry()
    registry.reset()
    set_build_memory(BUDGET)
    try:
        streamed, _ = build_cubetree_engine(config, data)
    finally:
        set_build_memory(None)
    streamed_pages = streamed.forest.num_pages
    streamed_ms = streamed.disk.cost_model.stats.simulated_ms

    counters = registry.snapshot()["counters"]
    peak = int(counters.get("extsort.peak_buffered", 0))
    spilled_runs = int(counters.get("extsort.spilled_runs", 0))
    spilled_entries = int(counters.get("extsort.spilled_entries", 0))

    print(f"budget:          {BUDGET} entries")
    print(f"peak buffered:   {peak} entries")
    print(f"spilled runs:    {spilled_runs} ({spilled_entries} entries)")
    print(f"pages:           classic={classic_pages} streamed={streamed_pages}")
    print(f"simulated load:  classic={classic_ms:.1f}ms "
          f"streamed={streamed_ms:.1f}ms")

    problems = []
    if peak > BUDGET:
        problems.append(
            f"sorter buffered {peak} entries, over the {BUDGET}-entry budget"
        )
    if peak == 0:
        problems.append("streaming path did not run (peak buffer is zero)")
    if spilled_runs == 0:
        problems.append("no spilled runs — the budget was never exercised")
    if streamed_pages != classic_pages:
        problems.append(
            f"streamed build wrote {streamed_pages} pages, classic wrote "
            f"{classic_pages}"
        )
    if streamed_ms != classic_ms:
        problems.append(
            f"streamed build cost {streamed_ms}ms simulated, classic "
            f"{classic_ms}ms — the paths must charge identical I/O"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("OK: streaming load is byte- and cost-identical under the budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
