#!/usr/bin/env python3
"""Run the repo-specific static checks (see repro.analysis).

Usage::

    python tools/lint.py                     # AST lint over src/ (CI gate)
    python tools/lint.py --flow              # + flow rules, with baseline
    python tools/lint.py --format json       # machine-readable findings
    python tools/lint.py --write-baseline tools/flow-baseline.json
    python tools/lint.py --write-lint-baseline tools/lint-baseline.json
    python tools/lint.py --list-rules

AST findings are baselined the same way flow findings are: the
committed ``tools/lint-baseline.json`` records the accepted sites
(e.g. the intentional scalar-fallback loops the ``leaf-entry-loop``
rule polices) and only NEW findings fail the run.

Exits 1 when any non-baselined finding is reported, 2 on bad paths.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.analysis.flowrules import (  # noqa: E402 (needs the path insert)
    FLOW_RULES,
    analyze_paths,
    apply_baseline,
    findings_payload,
    format_inventory,
    load_baseline,
)
from repro.analysis.lint import (  # noqa: E402
    RULES,
    format_findings,
    lint_paths,
)

_DEFAULT_BASELINE = os.path.join(_REPO_ROOT, "tools", "flow-baseline.json")
_DEFAULT_LINT_BASELINE = os.path.join(
    _REPO_ROOT, "tools", "lint-baseline.json"
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/lint.py",
        description="repo-specific static checks for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--include-tests",
        action="store_true",
        help="also lint test files (asserts stay exempt there)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the flow-aware rules (pin-balance, "
        "crash-point-coverage, obs-isolation, shared-state)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings output format (json: {rule, path, line, message})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="JSON",
        help="accepted flow findings (default: tools/flow-baseline.json "
        "when present); only NEW findings fail the run",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the default baseline and report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="JSON",
        help="write current flow findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--lint-baseline",
        default=None,
        metavar="JSON",
        help="accepted AST findings (default: tools/lint-baseline.json "
        "when present); only NEW findings fail the run",
    )
    parser.add_argument(
        "--write-lint-baseline",
        default=None,
        metavar="JSON",
        help="write current AST findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the findings document (always JSON) to FILE",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (AST + flow rules) and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}: {description}")
        for rule, description in sorted(FLOW_RULES.items()):
            print(f"{rule} (flow): {description}")
        return 0

    paths = args.paths or [os.path.join(_REPO_ROOT, "src")]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    findings = lint_paths(paths, include_tests=args.include_tests)
    if args.write_lint_baseline:
        with open(args.write_lint_baseline, "w", encoding="utf-8") as fh:
            json.dump(findings_payload(findings), fh, indent=2)
            fh.write("\n")
        print(
            f"wrote {len(findings)} finding(s) to "
            f"{args.write_lint_baseline}"
        )
        return 0
    lint_baseline_path = args.lint_baseline
    if lint_baseline_path is None and not args.no_baseline:
        if os.path.exists(_DEFAULT_LINT_BASELINE):
            lint_baseline_path = _DEFAULT_LINT_BASELINE
    lint_suppressed = 0
    if lint_baseline_path is not None:
        findings, lint_suppressed = apply_baseline(
            findings, load_baseline(lint_baseline_path)
        )
    inventory_text = None
    suppressed = 0
    if args.flow or args.write_baseline:
        flow_report = analyze_paths(
            paths, include_tests=args.include_tests
        )
        if args.write_baseline:
            with open(args.write_baseline, "w", encoding="utf-8") as fh:
                json.dump(
                    findings_payload(flow_report.findings), fh, indent=2
                )
                fh.write("\n")
            print(
                f"wrote {len(flow_report.findings)} finding(s) to "
                f"{args.write_baseline}"
            )
            return 0
        baseline_path = args.baseline
        if baseline_path is None and not args.no_baseline:
            if os.path.exists(_DEFAULT_BASELINE):
                baseline_path = _DEFAULT_BASELINE
        flow_findings = flow_report.findings
        if baseline_path is not None:
            flow_findings, suppressed = apply_baseline(
                flow_findings, load_baseline(baseline_path)
            )
        findings = sorted(
            findings + flow_findings,
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )
        inventory_text = format_inventory(flow_report.inventory)

    payload = findings_payload(findings)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(format_findings(findings))
        if lint_suppressed:
            print(f"lint baseline: {lint_suppressed} finding(s) accepted")
        if inventory_text is not None:
            print(inventory_text)
        if args.flow:
            print(
                f"flow check: {len(findings)} finding(s), "
                f"{suppressed} baselined"
            )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
