#!/usr/bin/env python3
"""Run the repo-specific AST lint rules (see repro.analysis.lint).

Usage::

    python tools/lint.py              # lint src/ (the CI gate)
    python tools/lint.py path ...     # lint specific files/directories
    python tools/lint.py --list-rules

Exits non-zero when any finding is reported.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.analysis.lint import (  # noqa: E402 (needs the path insert)
    RULES,
    format_findings,
    lint_paths,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/lint.py",
        description="repo-specific AST lint for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--include-tests",
        action="store_true",
        help="also lint test files (asserts stay exempt there)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}: {description}")
        return 0

    paths = args.paths or [os.path.join(_REPO_ROOT, "src")]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2
    findings = lint_paths(paths, include_tests=args.include_tests)
    print(format_findings(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
