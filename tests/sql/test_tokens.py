"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SQLError
from repro.sql.tokens import TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    tokens = tokenize("SELECT Sum FROM f")
    assert tokens[0].type is TokenType.KEYWORD
    assert tokens[0].value == "select"
    assert tokens[1].value == "sum"
    assert tokens[3].value == "f"          # identifiers keep their case
    assert tokens[3].type is TokenType.IDENT


def test_punctuation():
    assert kinds("( ) , . * =")[:-1] == [
        TokenType.LPAREN, TokenType.RPAREN, TokenType.COMMA,
        TokenType.DOT, TokenType.STAR, TokenType.EQUALS,
    ]


def test_numbers():
    tokens = tokenize("42 -7 3.5")
    assert [t.value for t in tokens[:-1]] == ["42", "-7", "3.5"]
    assert all(t.type is TokenType.NUMBER for t in tokens[:-1])


def test_identifiers_with_underscores():
    assert values("part_key v2") == ["part_key", "v2"]


def test_end_token():
    assert tokenize("")[-1].type is TokenType.END


def test_stray_character_raises():
    with pytest.raises(SQLError):
        tokenize("select ; from F")


def test_qualified_name_tokens():
    tokens = tokenize("part.type")
    assert [t.type for t in tokens[:-1]] == [
        TokenType.IDENT, TokenType.DOT, TokenType.IDENT,
    ]
