"""Tests for the SQL parser."""

import pytest

from repro.errors import SQLError
from repro.sql.ast import AggCall, ColumnRef, ConstantCondition, JoinCondition
from repro.sql.parser import parse_select


def test_simple_view_statement():
    stmt = parse_select(
        "select partkey, suppkey, sum(quantity) from F "
        "group by partkey, suppkey"
    )
    assert stmt.tables == ["F"]
    assert stmt.plain_columns == (ColumnRef("partkey"), ColumnRef("suppkey"))
    assert stmt.aggregates == (AggCall("sum", ColumnRef("quantity")),)
    assert stmt.group_by == [ColumnRef("partkey"), ColumnRef("suppkey")]


def test_join_statement():
    stmt = parse_select(
        "select part.type, sum(quantity) from F, part "
        "where F.partkey = part.partkey group by part.type"
    )
    assert stmt.tables == ["F", "part"]
    assert stmt.conditions == [
        JoinCondition(ColumnRef("partkey", "F"), ColumnRef("partkey", "part"))
    ]
    assert stmt.group_by == [ColumnRef("type", "part")]


def test_constant_predicate():
    stmt = parse_select(
        "select suppkey, sum(quantity) from F where partkey = 17 "
        "group by suppkey"
    )
    assert stmt.conditions == [
        ConstantCondition(ColumnRef("partkey"), 17.0)
    ]


def test_multiple_predicates_with_and():
    stmt = parse_select(
        "select sum(quantity) from F where partkey = 1 and custkey = 2"
    )
    assert len(stmt.conditions) == 2


def test_count_star():
    stmt = parse_select("select brand, count(*) from F group by brand")
    assert stmt.aggregates == (AggCall("count", None),)


def test_super_aggregate_no_group_by():
    stmt = parse_select("select sum(quantity) from F")
    assert stmt.group_by == []
    assert stmt.plain_columns == ()


def test_multiple_aggregates():
    stmt = parse_select(
        "select partkey, sum(quantity), avg(quantity), min(quantity) "
        "from F group by partkey"
    )
    assert len(stmt.aggregates) == 3


def test_missing_from_raises():
    with pytest.raises(SQLError):
        parse_select("select partkey")


def test_trailing_garbage_raises():
    with pytest.raises(SQLError):
        parse_select("select sum(quantity) from F extra")


def test_group_without_by_raises():
    with pytest.raises(SQLError):
        parse_select("select partkey from F group partkey")


def test_unclosed_paren_raises():
    with pytest.raises(SQLError):
        parse_select("select sum(quantity from F")


def test_between_condition():
    from repro.sql.ast import RangeCondition

    stmt = parse_select(
        "select suppkey, sum(quantity) from F "
        "where partkey between 10 and 20 group by suppkey"
    )
    assert stmt.conditions == [
        RangeCondition(ColumnRef("partkey"), 10.0, 20.0)
    ]


def test_between_mixed_with_equality():
    stmt = parse_select(
        "select sum(quantity) from F "
        "where partkey between 1 and 5 and custkey = 7"
    )
    assert len(stmt.conditions) == 2


def test_between_missing_and_raises():
    with pytest.raises(SQLError):
        parse_select("select sum(quantity) from F where partkey between 1 5")
