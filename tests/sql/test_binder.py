"""Tests for SQL binding against the warehouse schema."""

import pytest

from repro.errors import SQLError
from repro.query.slice import SliceQuery
from repro.relational.executor import AggFunc
from repro.sql.binder import parse_query, parse_view
from repro.warehouse.tpcd import TPCDGenerator


@pytest.fixture(scope="module")
def schema():
    return TPCDGenerator(scale_factor=0.001, seed=1).generate().schema


def test_bind_paper_view_v1(schema):
    """Paper's V1: select partkey, suppkey, sum(quantity) from F ..."""
    view = parse_view(
        "select partkey, suppkey, sum(quantity) from F "
        "group by partkey, suppkey",
        schema, "V1",
    )
    assert view.group_by == ("partkey", "suppkey")
    assert view.aggregates[0].func is AggFunc.SUM
    assert view.aggregates[0].attribute == "quantity"


def test_bind_paper_view_v2_with_join(schema):
    """Paper's V2: grouping by part.type through a join."""
    view = parse_view(
        "select part.type, sum(quantity) from F, part "
        "where F.partkey = part.partkey group by part.type",
        schema, "V2",
    )
    assert view.group_by == ("type",)


def test_bind_super_aggregate(schema):
    view = parse_view("select sum(quantity) from F", schema, "V_none")
    assert view.group_by == ()


def test_bind_count_star(schema):
    view = parse_view(
        "select brand, count(*) from F, part "
        "where F.partkey = part.partkey group by brand",
        schema, "V_brand",
    )
    assert view.aggregates[0].func is AggFunc.COUNT


def test_view_without_fact_table_rejected(schema):
    with pytest.raises(SQLError):
        parse_view("select partkey, sum(quantity) from part "
                   "group by partkey", schema, "V")


def test_view_unknown_table_rejected(schema):
    with pytest.raises(SQLError):
        parse_view("select partkey, sum(quantity) from F, nope "
                   "group by partkey", schema, "V")


def test_view_constant_predicate_rejected(schema):
    with pytest.raises(SQLError):
        parse_view("select partkey, sum(quantity) from F "
                   "where partkey = 5 group by partkey", schema, "V")


def test_view_select_group_mismatch_rejected(schema):
    with pytest.raises(SQLError):
        parse_view("select partkey, sum(quantity) from F group by suppkey",
                   schema, "V")


def test_view_aggregate_on_non_measure_rejected(schema):
    with pytest.raises(SQLError):
        parse_view("select partkey, sum(suppkey) from F group by partkey",
                   schema, "V")


def test_view_without_aggregate_rejected(schema):
    with pytest.raises(SQLError):
        parse_view("select partkey from F group by partkey", schema, "V")


def test_view_bad_join_rejected(schema):
    with pytest.raises(SQLError):
        parse_view(
            "select partkey, sum(quantity) from F, part "
            "where F.quantity = part.partkey group by partkey",
            schema, "V",
        )


def test_bind_query_q1(schema):
    """Paper's Q1: total sales of every part from supplier S."""
    query = parse_query(
        "select partkey, sum(quantity) from F where suppkey = 12 "
        "group by partkey",
        schema,
    )
    assert query == SliceQuery(("partkey",), (("suppkey", 12),))


def test_bind_query_q2(schema):
    """Paper's Q2: total sales per part and supplier to customer C."""
    query = parse_query(
        "select partkey, suppkey, sum(quantity) from F where custkey = 7 "
        "group by partkey, suppkey",
        schema,
    )
    assert query.node == frozenset(("partkey", "suppkey", "custkey"))


def test_bind_query_super_aggregate(schema):
    query = parse_query("select sum(quantity) from F", schema)
    assert query == SliceQuery((), ())


def test_query_with_join_rejected(schema):
    with pytest.raises(SQLError):
        parse_query(
            "select partkey, sum(quantity) from F, part "
            "where F.partkey = part.partkey group by partkey",
            schema,
        )


def test_query_non_integer_constant_rejected(schema):
    with pytest.raises(SQLError):
        parse_query("select sum(quantity) from F where partkey = 1.5",
                    schema)


def test_query_without_aggregate_rejected(schema):
    with pytest.raises(SQLError):
        parse_query("select partkey from F group by partkey", schema)


def test_query_stray_select_column_rejected(schema):
    with pytest.raises(SQLError):
        parse_query("select partkey, sum(quantity) from F", schema)


def test_ambiguous_column_rejected(schema):
    # 'name' exists in part, supplier, and customer dimensions.
    with pytest.raises(SQLError):
        parse_view("select name, sum(quantity) from F, part "
                   "where F.partkey = part.partkey group by name",
                   schema, "V")


def test_end_to_end_sql_to_engine(schema):
    """SQL-defined views and queries drive the Cubetree engine."""
    from repro.core.engine import CubetreeEngine

    gen = TPCDGenerator(scale_factor=0.0005, seed=9)
    data = gen.generate()
    views = [
        parse_view("select partkey, suppkey, sum(quantity) from F "
                   "group by partkey, suppkey", data.schema, "V_ps"),
        parse_view("select sum(quantity) from F", data.schema, "V_none"),
    ]
    engine = CubetreeEngine(data.schema)
    engine.materialize(views, data.facts)
    query = parse_query("select sum(quantity) from F", data.schema)
    expected = float(sum(row[3] for row in data.facts))
    assert engine.query(query).scalar() == expected


def test_bind_query_with_between(schema):
    query = parse_query(
        "select suppkey, sum(quantity) from F "
        "where partkey between 10 and 20 group by suppkey",
        schema,
    )
    assert query.ranges == (("partkey", 10, 20),)
    assert query.bindings == ()


def test_bind_query_between_non_integer_rejected(schema):
    with pytest.raises(SQLError):
        parse_query(
            "select sum(quantity) from F where partkey between 1.5 and 3",
            schema,
        )


def test_bind_view_rejects_between(schema):
    with pytest.raises(SQLError):
        parse_view(
            "select partkey, sum(quantity) from F "
            "where partkey between 1 and 5 group by partkey",
            schema, "V",
        )


# ----------------------------------------------------------------------
# describe() output is itself parseable SQL (round-trip property)
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_query_describe_roundtrip_property(schema, data):
    attrs = ["partkey", "suppkey", "custkey"]
    group = data.draw(st.lists(st.sampled_from(attrs), unique=True,
                               max_size=2))
    rest = [a for a in attrs if a not in group]
    n_eq = data.draw(st.integers(0, len(rest)))
    bindings = tuple(
        (attr, data.draw(st.integers(1, 50))) for attr in rest[:n_eq]
    )
    ranged = []
    for attr in rest[n_eq:]:
        if data.draw(st.booleans()):
            low = data.draw(st.integers(1, 40))
            ranged.append((attr, low, low + data.draw(st.integers(0, 9))))
    query = SliceQuery(tuple(group), bindings, tuple(ranged))
    reparsed = parse_query(query.describe(), schema)
    assert reparsed.group_by == query.group_by
    assert dict(reparsed.bindings) == dict(query.bindings)
    assert reparsed.range_map == query.range_map
