"""Fast integration tests of the experiment modules at a tiny scale.

The benchmark suite runs the experiments at the reporting scale and
asserts the claim shapes; these tests only verify that each module is
runnable, returns the documented structure, and respects configuration.
"""

import pytest

from repro.experiments import (
    ablations,
    fig12_queries,
    fig13_throughput,
    fig14_scalability,
    storage_breakdown,
    table5_mapping,
    table6_loading,
    table7_updates,
)
from repro.experiments.common import (
    ExperimentConfig,
    fmt_bytes,
    fmt_duration,
    node_label,
    paper_indexes,
    paper_replicas,
    paper_views,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        scale_factor=0.0005, queries_per_node=5, buffer_pages=128
    )


def test_common_paper_sets():
    views = paper_views()
    assert len(views) == 6
    assert {v.name for v in views} == {
        "V_psc", "V_ps", "V_c", "V_s", "V_p", "V_none",
    }
    assert set(paper_indexes()) == {"V_psc"}
    assert len(paper_indexes()["V_psc"]) == 3
    assert len(paper_replicas()["V_psc"]) == 2


def test_fmt_helpers():
    assert fmt_duration(5.0) == "5.0 ms"
    assert fmt_duration(5000.0) == "5.00 s"
    assert fmt_duration(200_000.0) == "3m 20.0s"
    assert fmt_duration(8 * 3600 * 1000.0) == "8h 0m"
    assert fmt_bytes(512) == "512.0 B"
    assert fmt_bytes(2048) == "2.0 KB"
    assert node_label(("a", "b")) == "a,b"
    assert node_label(()) == "none"


def test_config_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.123")
    monkeypatch.setenv("REPRO_QUERIES", "7")
    config = ExperimentConfig()
    assert config.scale_factor == 0.123
    assert config.queries_per_node == 7


def test_table5(tiny_config, capsys):
    result = table5_mapping.run(tiny_config)
    out = capsys.readouterr().out
    assert "Table 5" in out
    assert result["num_trees"] == 3


def test_table6(tiny_config):
    result = table6_loading.run(tiny_config, verbose=False)
    assert result["cubetree_total_ms"] > 0
    assert result["conventional_total_ms"] > result["cubetree_total_ms"]
    assert 0 < result["savings"] < 1
    assert result["view_rows"] > 0


def test_fig12(tiny_config):
    result = fig12_queries.run(tiny_config, verbose=False)
    assert len(result["per_node"]) == 7
    assert result["total_cubetrees_ms"] >= 0
    assert result["ratio"] > 0


def test_fig13(tiny_config):
    stats = fig13_throughput.run(tiny_config, verbose=False)
    for name in ("cubetrees", "conventional"):
        assert stats[name]["min"] <= stats[name]["avg"] <= stats[name]["max"]


def test_fig14(tiny_config):
    result = fig14_scalability.run(tiny_config, verbose=False)
    assert set(result["small"]) == set(result["big"])
    assert result["growth"] > 0


def test_table7(tiny_config):
    result = table7_updates.run(tiny_config, verbose=False)
    assert result["merge_pack_ms"] > 0
    assert result["recompute_ms"] > result["merge_pack_ms"]
    assert result["incremental_timed_out"] or (
        result["incremental_ms"] is not None
    )


def test_storage_breakdown(tiny_config):
    result = storage_breakdown.run(tiny_config, verbose=False)
    assert 0 < result["leaf_fraction"] <= 1
    assert result["cubetree_bytes"] < result["conventional_bytes"]


def test_ablation_sort_order():
    result = ablations.run_sort_order(verbose=False)
    assert result["low_transitions"] == 1
    assert result["hilbert_transitions"] > 1


def test_ablation_compression():
    result = ablations.run_compression(verbose=False)
    assert result["compressed_pages"] < result["uncompressed_pages"]


def test_ablation_packing():
    result = ablations.run_packing(verbose=False)
    assert result["packed_fill"] > result["dynamic_fill"]


def test_ablation_replication(tiny_config):
    result = ablations.run_replication(tiny_config, verbose=False)
    assert result["with replicas"]["pages"] > result["no replicas"]["pages"]


def test_runner_smoke(tiny_config, monkeypatch, capsys):
    """The command-line runner executes end to end at a tiny scale."""
    monkeypatch.setenv("REPRO_QUERIES", "3")
    from repro.experiments import runner

    runner.main(["0.0003"])
    out = capsys.readouterr().out
    for marker in ("Table 5", "Table 6", "Figure 12", "Figure 13",
                   "Figure 14", "Table 7", "Ablation"):
        assert marker in out, f"runner output missing {marker}"
