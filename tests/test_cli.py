"""Tests for the command-line interface."""

import csv
import os

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "repro" in out
    assert "page size" in out


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_generate_writes_csvs(tmp_path, capsys):
    out = str(tmp_path / "data")
    assert main(["generate", "--scale", "0.0002", "--out", out,
                 "--increment", "0.1"]) == 0
    for name in ("lineitem.csv", "part.csv", "supplier.csv",
                 "customer.csv", "increment.csv"):
        assert os.path.exists(os.path.join(out, name)), name
    with open(os.path.join(out, "lineitem.csv")) as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["partkey", "suppkey", "custkey", "quantity"]
    assert len(rows) > 10


def test_generate_is_deterministic(tmp_path):
    out_a = str(tmp_path / "a")
    out_b = str(tmp_path / "b")
    main(["generate", "--scale", "0.0002", "--seed", "5", "--out", out_a])
    main(["generate", "--scale", "0.0002", "--seed", "5", "--out", out_b])
    with open(os.path.join(out_a, "lineitem.csv")) as fa, \
            open(os.path.join(out_b, "lineitem.csv")) as fb:
        assert fa.read() == fb.read()


def test_experiment_table5(capsys):
    assert main(["experiment", "table5", "--scale", "0.0005"]) == 0
    assert "Table 5" in capsys.readouterr().out


def test_query_cubetree(capsys):
    assert main([
        "query",
        "select suppkey, sum(quantity) from F where partkey = 1 "
        "group by suppkey",
        "--scale", "0.0005", "--engine", "cubetree",
    ]) == 0
    out = capsys.readouterr().out
    assert "plan:" in out
    assert "simulated I/O" in out


def test_query_conventional(capsys):
    assert main([
        "query", "select sum(quantity) from F",
        "--scale", "0.0005", "--engine", "conventional",
    ]) == 0
    assert "plan:" in capsys.readouterr().out


def test_query_with_between(capsys):
    assert main([
        "query",
        "select suppkey, sum(quantity) from F "
        "where partkey between 1 and 9 group by suppkey",
        "--scale", "0.0005",
    ]) == 0


def test_query_batch(capsys):
    assert main([
        "query",
        "select partkey, sum(quantity) from F group by partkey; "
        "select suppkey, sum(quantity) from F group by suppkey",
        "--scale", "0.0005", "--batch", "--limit", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "[0] plan:" in out
    assert "[1] plan:" in out
    assert "batch: 2 queries" in out


def test_query_batch_requires_cubetree_engine(capsys):
    assert main([
        "query", "select sum(quantity) from F",
        "--scale", "0.0005", "--batch", "--engine", "conventional",
    ]) == 2
    assert "--engine cubetree" in capsys.readouterr().err


def test_check_reports_clean(capsys):
    assert main(["check", "--scale", "0.0005"]) == 0
    out = capsys.readouterr().out
    assert "cubetree fsck" in out
    assert "0 violation(s)" in out


def test_check_flow_is_clean(capsys):
    assert main(["check", "--flow"]) == 0
    out = capsys.readouterr().out
    assert "flow check: 0 new finding(s), 2 baselined" in out
    assert "shared-state inventory" in out


def test_check_flow_without_baseline_reports_accepted_findings(tmp_path, capsys):
    empty = tmp_path / "empty-baseline.json"
    empty.write_text('{"schema_version": 1, "findings": []}')
    assert main(["check", "--flow", "--flow-baseline", str(empty)]) == 1
    out = capsys.readouterr().out
    assert "pin-balance" in out


def test_check_with_increment(capsys):
    assert main(["check", "--scale", "0.0005", "--increment", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "merge-packed" in out
    assert out.count("0 violation(s)") == 2


@pytest.fixture()
def checkpoint_dir(tmp_path):
    from repro.core.engine import CubetreeEngine
    from repro.core.persistence import save_engine
    from repro.relational.view import ViewDefinition
    from repro.warehouse.tpcd import TPCDGenerator

    data = TPCDGenerator(scale_factor=0.0005, seed=41).generate()
    engine = CubetreeEngine(data.schema)
    engine.materialize([ViewDefinition("V_ps", ("partkey", "suppkey")),
                        ViewDefinition("V_none", ())], data.facts)
    directory = str(tmp_path / "db")
    save_engine(engine, directory)
    return directory


def test_check_checkpoint_clean(checkpoint_dir, capsys):
    assert main(["check", "--checkpoint", checkpoint_dir]) == 0
    out = capsys.readouterr().out
    assert "0 problem(s)" in out
    assert "0 violation(s)" in out


def test_check_checkpoint_flags_corruption(checkpoint_dir, capsys):
    gen = sorted(
        entry for entry in os.listdir(checkpoint_dir)
        if entry.startswith("gen-")
    )[-1]
    pages = os.path.join(checkpoint_dir, gen, "pages.bin")
    with open(pages, "r+b") as handle:
        handle.seek(100)
        byte = handle.read(1)
        handle.seek(100)
        handle.write(bytes([byte[0] ^ 0x01]))
    assert main(["check", "--checkpoint", checkpoint_dir]) == 1
    out = capsys.readouterr().out
    assert "checkpoint-corrupt" in out


def test_check_checkpoint_missing_database(tmp_path, capsys):
    assert main(["check", "--checkpoint", str(tmp_path / "empty")]) == 1
    assert "no committed generation" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "nope"])


@pytest.mark.parametrize("command", [
    ["query", "select partkey, sum(quantity) from F group by partkey"],
    ["check"],
    ["serve", "some_db"],
])
@pytest.mark.parametrize("bad", ["0", "-2", "2.5", "two"])
def test_bad_shards_rejected_at_parse_time(command, bad, capsys):
    with pytest.raises(SystemExit) as exc:
        main(command + ["--shards", bad])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "--shards" in err
    assert "positive integer" in err
